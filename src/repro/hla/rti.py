"""The RTI kernel: federation, declaration, object and time services.

This is an in-process reproduction of the HLA 1.3 services the paper's
simulation depends on.  Federates join, publish/subscribe, register object
instances, push attribute updates and interactions, and advance time under
conservative synchronisation.  Timestamp-ordered (TSO) messages are queued
per receiving federate and released in timestamp order when the receiver's
time advances past them — never into its past.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.hla.federate import FederateAmbassador
from repro.hla.object_model import FederationObjectModel
from repro.hla.time_management import TimeManager

__all__ = ["RTIError", "FederateHandle", "ObjectInstanceHandle", "RTIKernel"]

FederateHandle = int
ObjectInstanceHandle = int


class RTIError(RuntimeError):
    """Misuse of an RTI service (unknown handle, FOM violation, ...)."""


@dataclass(order=True)
class _TsoMessage:
    """A timestamp-ordered message queued for one federate."""

    timestamp: float
    seq: int
    deliver: Any = field(compare=False)  # zero-arg callable


@dataclass
class _Federate:
    handle: FederateHandle
    name: str
    ambassador: FederateAmbassador
    published_objects: set[str] = field(default_factory=set)
    subscribed_objects: set[str] = field(default_factory=set)
    #: Per-class attribute filter; a class absent from this map (or mapped
    #: to None) means "all declared attributes".
    attribute_filters: dict[str, frozenset[str] | None] = field(
        default_factory=dict
    )
    published_interactions: set[str] = field(default_factory=set)
    subscribed_interactions: set[str] = field(default_factory=set)
    #: Instances this federate has discovered (delivered discover callback).
    discovered: set[ObjectInstanceHandle] = field(default_factory=set)
    tso_queue: list[_TsoMessage] = field(default_factory=list)


@dataclass
class _Instance:
    handle: ObjectInstanceHandle
    class_name: str
    name: str
    owner: FederateHandle
    #: Last reflected value of each attribute, for late joiners and queries.
    attributes: dict[str, Any] = field(default_factory=dict)


class RTIKernel:
    """A single-federation, in-process run-time infrastructure."""

    def __init__(
        self,
        federation_name: str,
        fom: FederationObjectModel,
        *,
        telemetry: Any = None,
    ) -> None:
        self.federation_name = federation_name
        self.fom = fom
        self._federates: dict[FederateHandle, _Federate] = {}
        self._instances: dict[ObjectInstanceHandle, _Instance] = {}
        self._next_federate = itertools.count(1)
        self._next_instance = itertools.count(1)
        self._tso_seq = itertools.count()
        self._time = TimeManager()
        #: label -> set of federates that have not yet achieved the point.
        self._sync_pending: dict[str, set[FederateHandle]] = {}
        from repro.telemetry import NULL_TELEMETRY

        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_reflections = tm.counter("hla.reflections_routed")
        self._t_interactions = tm.counter("hla.interactions_routed")
        self._t_tso_enqueued = tm.counter("hla.tso_enqueued")
        self._t_tso_depth = tm.gauge("hla.tso_queue_depth")
        self._t_grants = tm.counter("hla.time_advance_grants")
        self._t_min_time = tm.gauge("hla.min_constrained_time")

    # ------------------------------------------------------------------
    # Federation management
    # ------------------------------------------------------------------
    def join(self, name: str, ambassador: FederateAmbassador) -> FederateHandle:
        """Join the federation; returns the new federate's handle."""
        if any(f.name == name for f in self._federates.values()):
            raise RTIError(f"federate name {name!r} already joined")
        handle = next(self._next_federate)
        self._federates[handle] = _Federate(handle, name, ambassador)
        self._time.add_federate(handle)
        return handle

    def resign(self, federate: FederateHandle) -> None:
        """Resign: delete owned instances, drop subscriptions and time status."""
        fed = self._federate(federate)
        owned = [h for h, inst in self._instances.items() if inst.owner == federate]
        for h in owned:
            self.delete_object_instance(federate, h)
        self._time.remove_federate(federate)
        del self._federates[fed.handle]
        # A resigning federate can complete pending synchronization points
        # and unblock time-advance waiters.
        for label in list(self._sync_pending):
            self._sync_achieve(label, federate)
        self._deliver_grants()

    def federate_names(self) -> list[str]:
        """Names of currently joined federates (join order)."""
        return [f.name for f in self._federates.values()]

    def _federate(self, handle: FederateHandle) -> _Federate:
        try:
            return self._federates[handle]
        except KeyError:
            raise RTIError(f"unknown federate handle {handle}") from None

    # ------------------------------------------------------------------
    # Declaration management
    # ------------------------------------------------------------------
    def publish_object_class(self, federate: FederateHandle, class_name: str) -> None:
        """Declare intent to register/update instances of *class_name*."""
        self.fom.object_class(class_name)  # validates
        self._federate(federate).published_objects.add(class_name)

    def subscribe_object_class(
        self,
        federate: FederateHandle,
        class_name: str,
        attributes: tuple[str, ...] | None = None,
    ) -> None:
        """Subscribe to reflections of *class_name*; discovers existing
        instances.

        *attributes* optionally restricts the subscription to a subset of
        the class's declared attributes (HLA attribute-level subscription);
        reflections then carry only the intersection, and updates touching
        none of the subscribed attributes are not delivered at all.
        """
        declared = self.fom.object_class(class_name)
        fed = self._federate(federate)
        if attributes is not None:
            unknown = [a for a in attributes if not declared.has_attribute(a)]
            if unknown:
                raise RTIError(
                    f"attributes {unknown} not declared on {class_name!r}"
                )
            fed.attribute_filters[class_name] = frozenset(attributes)
        else:
            fed.attribute_filters[class_name] = None
        fed.subscribed_objects.add(class_name)
        for inst in self._instances.values():
            if inst.class_name == class_name and inst.owner != federate:
                self._discover(fed, inst)

    def publish_interaction_class(
        self, federate: FederateHandle, class_name: str
    ) -> None:
        """Declare intent to send interactions of *class_name*."""
        self.fom.interaction_class(class_name)
        self._federate(federate).published_interactions.add(class_name)

    def subscribe_interaction_class(
        self, federate: FederateHandle, class_name: str
    ) -> None:
        """Subscribe to interactions of *class_name*."""
        self.fom.interaction_class(class_name)
        self._federate(federate).subscribed_interactions.add(class_name)

    # ------------------------------------------------------------------
    # Object management
    # ------------------------------------------------------------------
    def register_object_instance(
        self, federate: FederateHandle, class_name: str, instance_name: str
    ) -> ObjectInstanceHandle:
        """Create a shared object instance owned by *federate*."""
        fed = self._federate(federate)
        if class_name not in fed.published_objects:
            raise RTIError(
                f"federate {fed.name!r} registers {class_name!r} without publishing it"
            )
        handle = next(self._next_instance)
        inst = _Instance(handle, class_name, instance_name, federate)
        self._instances[handle] = inst
        for other in self._federates.values():
            if other.handle != federate and class_name in other.subscribed_objects:
                self._discover(other, inst)
        return handle

    def delete_object_instance(
        self, federate: FederateHandle, instance: ObjectInstanceHandle
    ) -> None:
        """Delete an owned instance; subscribers get ``remove_object_instance``."""
        inst = self._instance(instance)
        if inst.owner != federate:
            raise RTIError(
                f"federate {federate} cannot delete instance {instance} "
                f"owned by {inst.owner}"
            )
        del self._instances[instance]
        for fed in self._federates.values():
            if instance in fed.discovered:
                fed.discovered.discard(instance)
                fed.ambassador.remove_object_instance(instance)

    def update_attribute_values(
        self,
        federate: FederateHandle,
        instance: ObjectInstanceHandle,
        attributes: dict[str, Any],
        timestamp: float | None = None,
    ) -> None:
        """Push attribute values; subscribers receive reflections.

        With ``timestamp=None`` the update is receive-ordered and reflected
        immediately.  With a timestamp it is TSO: the send time must respect
        the sender's lookahead guarantee, and delivery waits until each
        receiver has been granted a time >= the timestamp.
        """
        inst = self._instance(instance)
        if inst.owner != federate:
            raise RTIError(
                f"federate {federate} cannot update instance {instance} "
                f"owned by {inst.owner}"
            )
        object_class = self.fom.object_class(inst.class_name)
        for name in attributes:
            if not object_class.has_attribute(name):
                raise RTIError(
                    f"attribute {name!r} not declared on class {inst.class_name!r}"
                )
        self._check_send_time(federate, timestamp)
        inst.attributes.update(attributes)
        for fed in self._federates.values():
            if fed.handle == federate:
                continue
            if inst.class_name not in fed.subscribed_objects:
                continue
            subscribed = fed.attribute_filters.get(inst.class_name)
            if subscribed is None:
                payload = dict(attributes)
            else:
                payload = {
                    k: v for k, v in attributes.items() if k in subscribed
                }
                if not payload:
                    continue  # nothing this federate cares about changed
            self._t_reflections.inc()
            self._route(
                fed,
                timestamp,
                lambda f=fed, i=inst.handle, p=payload, t=timestamp: (
                    f.ambassador.reflect_attribute_values(i, dict(p), t)
                ),
            )

    def get_attribute_values(self, instance: ObjectInstanceHandle) -> dict[str, Any]:
        """Snapshot of the last-known attribute values of *instance*."""
        return dict(self._instance(instance).attributes)

    def send_interaction(
        self,
        federate: FederateHandle,
        class_name: str,
        parameters: dict[str, Any],
        timestamp: float | None = None,
    ) -> None:
        """Send an interaction to all subscribers of *class_name*."""
        fed = self._federate(federate)
        if class_name not in fed.published_interactions:
            raise RTIError(
                f"federate {fed.name!r} sends {class_name!r} without publishing it"
            )
        interaction = self.fom.interaction_class(class_name)
        for name in parameters:
            if interaction.parameters and name not in interaction.parameters:
                raise RTIError(
                    f"parameter {name!r} not declared on interaction {class_name!r}"
                )
        self._check_send_time(federate, timestamp)
        payload = dict(parameters)
        for other in self._federates.values():
            if other.handle == federate:
                continue
            if class_name not in other.subscribed_interactions:
                continue
            self._t_interactions.inc()
            self._route(
                other,
                timestamp,
                lambda f=other, p=payload, t=timestamp: (
                    f.ambassador.receive_interaction(class_name, dict(p), t)
                ),
            )

    def _instance(self, handle: ObjectInstanceHandle) -> _Instance:
        try:
            return self._instances[handle]
        except KeyError:
            raise RTIError(f"unknown object instance {handle}") from None

    def _discover(self, fed: _Federate, inst: _Instance) -> None:
        if inst.handle not in fed.discovered:
            fed.discovered.add(inst.handle)
            fed.ambassador.discover_object_instance(
                inst.handle, inst.class_name, inst.name
            )

    # ------------------------------------------------------------------
    # Federation synchronization points
    # ------------------------------------------------------------------
    def register_synchronization_point(
        self, federate: FederateHandle, label: str, tag: Any = None
    ) -> None:
        """Register a federation-wide sync point; announces to everyone.

        Every currently joined federate (the registrant included) must call
        :meth:`synchronization_point_achieved` before the federation is
        declared synchronized on *label*.
        """
        self._federate(federate)
        if label in self._sync_pending:
            raise RTIError(f"synchronization point {label!r} already registered")
        if not label:
            raise RTIError("synchronization point label must be non-empty")
        self._sync_pending[label] = set(self._federates)
        for fed in list(self._federates.values()):
            fed.ambassador.announce_synchronization_point(label, tag)

    def synchronization_point_achieved(
        self, federate: FederateHandle, label: str
    ) -> None:
        """A federate reached *label*; completes the point when all have."""
        self._federate(federate)
        if label not in self._sync_pending:
            raise RTIError(f"unknown synchronization point {label!r}")
        if federate not in self._sync_pending[label]:
            raise RTIError(
                f"federate {federate} already achieved or never owed {label!r}"
            )
        self._sync_achieve(label, federate)

    def pending_synchronization(self, label: str) -> set[FederateHandle]:
        """Federates that have not yet achieved *label* (empty set = done)."""
        return set(self._sync_pending.get(label, set()))

    def _sync_achieve(self, label: str, federate: FederateHandle) -> None:
        waiting = self._sync_pending.get(label)
        if waiting is None:
            return
        waiting.discard(federate)
        if not waiting:
            del self._sync_pending[label]
            for fed in list(self._federates.values()):
                fed.ambassador.federation_synchronized(label)

    # ------------------------------------------------------------------
    # Time management
    # ------------------------------------------------------------------
    def enable_time_regulation(
        self, federate: FederateHandle, lookahead: float
    ) -> None:
        """Make *federate* time-regulating with the given lookahead."""
        self._federate(federate)
        self._time.enable_time_regulation(federate, lookahead)

    def enable_time_constrained(self, federate: FederateHandle) -> None:
        """Make *federate* time-constrained."""
        self._federate(federate)
        self._time.enable_time_constrained(federate)

    def logical_time(self, federate: FederateHandle) -> float:
        """Current logical time of *federate*."""
        return self._time.status(federate).logical_time

    def time_advance_request(self, federate: FederateHandle, time: float) -> None:
        """Request advancement to *time*; grant arrives via the ambassador.

        Granting may cascade: one federate's grant can raise the LBTS and
        unblock others, so we loop until a fixed point.
        """
        self._federate(federate)
        self._time.request_advance(federate, time)
        self._deliver_grants()

    def _deliver_grants(self) -> None:
        while True:
            grants = self._time.grantable()
            if not grants:
                if self._instrumented:
                    floor = self._time.min_constrained_time()
                    if floor != float("inf"):
                        self._t_min_time.set(floor)
                return
            for handle, time in grants:
                if handle not in self._federates:
                    continue
                self._time.grant(handle, time)
                self._t_grants.inc()
                fed = self._federates[handle]
                self._release_tso(fed, time)
                fed.ambassador.time_advance_grant(time)

    def _check_send_time(
        self, federate: FederateHandle, timestamp: float | None
    ) -> None:
        if timestamp is None:
            return
        status = self._time.status(federate)
        if not status.regulating:
            raise RTIError(
                f"federate {federate} sent a TSO message but is not regulating"
            )
        earliest = status.logical_time + status.lookahead
        if timestamp < earliest:
            raise RTIError(
                f"TSO timestamp {timestamp} violates lookahead: earliest "
                f"allowed is {earliest}"
            )

    def _route(self, fed: _Federate, timestamp: float | None, deliver: Any) -> None:
        """Deliver RO immediately; queue TSO until the receiver reaches it."""
        if timestamp is None or not self._time.status(fed.handle).constrained:
            deliver()
            return
        if timestamp <= self._time.status(fed.handle).logical_time:
            # Receiver is already at/past this time (equal is fine: delivery
            # at the receiver's current time is still causally safe).
            deliver()
            return
        heapq.heappush(
            fed.tso_queue,
            _TsoMessage(timestamp=timestamp, seq=next(self._tso_seq), deliver=deliver),
        )
        self._t_tso_enqueued.inc()
        self._t_tso_depth.inc()

    def _release_tso(self, fed: _Federate, up_to: float) -> None:
        while fed.tso_queue and fed.tso_queue[0].timestamp <= up_to:
            message = heapq.heappop(fed.tso_queue)
            self._t_tso_depth.dec()
            message.deliver()

    def pending_tso(self, federate: FederateHandle) -> int:
        """Number of TSO messages queued for *federate* (for tests)."""
        return len(self._federate(federate).tso_queue)
