"""Federation Object Model (FOM) declarations.

An HLA federation agrees up front on the classes of shared objects and
interactions.  Our mobile-grid FOM (built in :mod:`repro.experiments.harness`)
declares a ``MobileNode`` object class with ``position``/``velocity``
attributes and ``LocationUpdate`` interactions, mirroring how the paper's
federates exchange state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AttributeName",
    "ObjectClass",
    "InteractionClass",
    "FederationObjectModel",
]

#: Attributes are referred to by name; a type alias documents intent.
AttributeName = str


@dataclass(frozen=True, slots=True)
class ObjectClass:
    """An object class: a name plus its declared attribute names."""

    name: str
    attributes: tuple[AttributeName, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("object class name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in class {self.name!r}")

    def has_attribute(self, attribute: AttributeName) -> bool:
        """True when *attribute* is declared on this class."""
        return attribute in self.attributes


@dataclass(frozen=True, slots=True)
class InteractionClass:
    """An interaction class: a name plus its parameter names."""

    name: str
    parameters: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("interaction class name must be non-empty")
        if len(set(self.parameters)) != len(self.parameters):
            raise ValueError(f"duplicate parameters in interaction {self.name!r}")


@dataclass
class FederationObjectModel:
    """The agreed set of object and interaction classes for a federation."""

    object_classes: dict[str, ObjectClass] = field(default_factory=dict)
    interaction_classes: dict[str, InteractionClass] = field(default_factory=dict)

    def add_object_class(self, name: str, attributes: tuple[str, ...]) -> ObjectClass:
        """Declare an object class; names must be unique within the FOM."""
        if name in self.object_classes:
            raise ValueError(f"object class {name!r} already declared")
        cls = ObjectClass(name, tuple(attributes))
        self.object_classes[name] = cls
        return cls

    def add_interaction_class(
        self, name: str, parameters: tuple[str, ...] = ()
    ) -> InteractionClass:
        """Declare an interaction class; names must be unique within the FOM."""
        if name in self.interaction_classes:
            raise ValueError(f"interaction class {name!r} already declared")
        cls = InteractionClass(name, tuple(parameters))
        self.interaction_classes[name] = cls
        return cls

    def object_class(self, name: str) -> ObjectClass:
        """Look up an object class by name (KeyError if undeclared)."""
        try:
            return self.object_classes[name]
        except KeyError:
            raise KeyError(f"object class {name!r} is not in the FOM") from None

    def interaction_class(self, name: str) -> InteractionClass:
        """Look up an interaction class by name (KeyError if undeclared)."""
        try:
            return self.interaction_classes[name]
        except KeyError:
            raise KeyError(f"interaction class {name!r} is not in the FOM") from None
