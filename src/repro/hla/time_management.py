"""Conservative HLA time management.

Each time-regulating federate ``f`` promises not to send timestamp-ordered
messages earlier than ``logical_time(f) + lookahead(f)``.  The federation's
LBTS (lower bound on time stamp) as seen by a constrained federate is the
minimum of that bound over all *other* regulating federates.  A constrained
federate's time-advance request (TAR) to time ``t`` is granted once
``LBTS >= t``, guaranteeing no TSO message can still arrive in its past.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimeStatus", "TimeManager"]

_INFINITY = float("inf")


@dataclass
class TimeStatus:
    """Per-federate time-management state."""

    handle: int
    regulating: bool = False
    constrained: bool = False
    lookahead: float = 0.0
    logical_time: float = 0.0
    #: Pending TAR target, or None when no request is outstanding.
    pending_request: float | None = None

    def guarantee(self) -> float:
        """Earliest TSO timestamp this federate could still send.

        Only meaningful for regulating federates.  While a TAR to time ``t``
        is outstanding the federate has implicitly promised not to send
        messages before ``t + lookahead``.
        """
        if not self.regulating:
            return _INFINITY
        base = (
            self.pending_request
            if self.pending_request is not None
            else self.logical_time
        )
        return base + self.lookahead


class TimeManager:
    """Tracks federate time status and computes grants.

    The manager is purely computational: the RTI kernel asks it which pending
    requests are now grantable and performs the actual callback delivery.
    """

    def __init__(self) -> None:
        self._status: dict[int, TimeStatus] = {}

    # -- membership -----------------------------------------------------------
    def add_federate(self, handle: int) -> TimeStatus:
        """Register a newly joined federate (neither regulating nor constrained)."""
        if handle in self._status:
            raise ValueError(f"federate {handle} already registered")
        status = TimeStatus(handle=handle)
        self._status[handle] = status
        return status

    def remove_federate(self, handle: int) -> None:
        """Remove a resigned federate; its guarantee no longer binds LBTS."""
        self._status.pop(handle, None)

    def status(self, handle: int) -> TimeStatus:
        """The :class:`TimeStatus` for *handle* (KeyError when unknown)."""
        return self._status[handle]

    # -- mode switches ----------------------------------------------------------
    def enable_time_regulation(self, handle: int, lookahead: float) -> None:
        """Make *handle* time-regulating with the given *lookahead* (> 0)."""
        if lookahead <= 0:
            raise ValueError(f"lookahead must be > 0, got {lookahead}")
        status = self._status[handle]
        status.regulating = True
        status.lookahead = lookahead

    def enable_time_constrained(self, handle: int) -> None:
        """Make *handle* time-constrained (subject to LBTS gating)."""
        self._status[handle].constrained = True

    # -- queries -----------------------------------------------------------------
    def lbts_for(self, handle: int) -> float:
        """LBTS from the perspective of federate *handle*.

        The minimum guarantee over all *other* regulating federates; infinity
        when there are none (then any advance is immediately grantable).
        """
        guarantees = [
            s.guarantee()
            for h, s in self._status.items()
            if h != handle and s.regulating
        ]
        return min(guarantees, default=_INFINITY)

    # -- the TAR/TAG protocol -------------------------------------------------------
    def request_advance(self, handle: int, time: float) -> None:
        """Record a time-advance request to *time* (must move forward)."""
        status = self._status[handle]
        if status.pending_request is not None:
            raise ValueError(f"federate {handle} already has a pending TAR")
        if time < status.logical_time:
            raise ValueError(
                f"TAR to {time} is before federate {handle}'s logical time "
                f"{status.logical_time}"
            )
        status.pending_request = time

    def grantable(self) -> list[tuple[int, float]]:
        """Pending requests that can be granted right now.

        A constrained federate is granted when its LBTS has reached the
        requested time; an unconstrained federate is granted immediately.
        Returns ``(handle, time)`` pairs; the caller performs the grants via
        :meth:`grant`.
        """
        out: list[tuple[int, float]] = []
        for handle, status in self._status.items():
            t = status.pending_request
            if t is None:
                continue
            if not status.constrained or self.lbts_for(handle) >= t:
                out.append((handle, t))
        return out

    def grant(self, handle: int, time: float) -> None:
        """Complete a grant: advance logical time, clear the pending request."""
        status = self._status[handle]
        if status.pending_request != time:
            raise ValueError(
                f"grant({handle}, {time}) does not match pending request "
                f"{status.pending_request}"
            )
        status.logical_time = time
        status.pending_request = None

    def min_constrained_time(self) -> float:
        """Smallest logical time over constrained federates (inf if none)."""
        times = [s.logical_time for s in self._status.values() if s.constrained]
        return min(times, default=_INFINITY)
