"""The federate ambassador: RTI -> federate callback interface.

Mirrors the HLA 1.3 ``FederateAmbassador``.  Model code subclasses this and
overrides the callbacks it cares about; the defaults are no-ops so simple
federates stay simple.
"""

from __future__ import annotations

from typing import Any

__all__ = ["FederateAmbassador"]


class FederateAmbassador:
    """Callbacks delivered by the RTI to a joined federate."""

    def discover_object_instance(
        self, instance: int, class_name: str, instance_name: str
    ) -> None:
        """A remote federate registered an instance of a subscribed class."""

    def remove_object_instance(self, instance: int) -> None:
        """A discovered instance was deleted by its owner."""

    def reflect_attribute_values(
        self,
        instance: int,
        attributes: dict[str, Any],
        timestamp: float | None,
    ) -> None:
        """Attribute updates arrived for a discovered instance.

        *timestamp* is ``None`` for receive-order (RO) updates and the send
        timestamp for timestamp-order (TSO) updates.
        """

    def receive_interaction(
        self,
        class_name: str,
        parameters: dict[str, Any],
        timestamp: float | None,
    ) -> None:
        """A subscribed interaction was delivered."""

    def time_advance_grant(self, time: float) -> None:
        """The RTI granted this federate's pending time-advance request."""

    def announce_synchronization_point(self, label: str, tag: Any) -> None:
        """A federation-wide synchronization point was registered."""

    def federation_synchronized(self, label: str) -> None:
        """Every federate achieved the synchronization point *label*."""
