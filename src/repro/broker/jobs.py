"""Grid jobs and tasks.

A :class:`Job` is a bag of independent :class:`Task` units (the classic
master/worker grid workload).  Tasks are sized in mega-instructions so the
scheduler can estimate completion time from a device's MIPS rating.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.util.validation import check_positive

__all__ = ["TaskState", "Task", "JobState", "Job"]

_task_ids = itertools.count(1)
_job_ids = itertools.count(1)


class TaskState(enum.Enum):
    """Lifecycle of one task."""

    PENDING = "pending"
    ASSIGNED = "assigned"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Task:
    """One schedulable unit of work."""

    mega_instructions: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    state: TaskState = TaskState.PENDING
    assigned_to: str | None = None
    assigned_at: float | None = None
    completed_at: float | None = None

    def __post_init__(self) -> None:
        check_positive(self.mega_instructions, "mega_instructions")

    def duration_on(self, mips: float) -> float:
        """Seconds the task takes on a device rated *mips*."""
        check_positive(mips, "mips")
        return self.mega_instructions / mips

    def assign(self, node_id: str, now: float) -> None:
        """Transition PENDING -> ASSIGNED."""
        if self.state is not TaskState.PENDING:
            raise ValueError(f"task {self.task_id} is {self.state.value}, not pending")
        self.state = TaskState.ASSIGNED
        self.assigned_to = node_id
        self.assigned_at = now

    def complete(self, now: float) -> None:
        """Transition ASSIGNED -> COMPLETED."""
        if self.state is not TaskState.ASSIGNED:
            raise ValueError(
                f"task {self.task_id} is {self.state.value}, not assigned"
            )
        self.state = TaskState.COMPLETED
        self.completed_at = now

    def fail(self) -> None:
        """Transition ASSIGNED -> FAILED (node lost, battery dead...)."""
        if self.state is not TaskState.ASSIGNED:
            raise ValueError(
                f"task {self.task_id} is {self.state.value}, not assigned"
            )
        self.state = TaskState.FAILED
        self.assigned_to = None

    def reset(self) -> None:
        """Requeue a FAILED task."""
        if self.state is not TaskState.FAILED:
            raise ValueError(f"task {self.task_id} is {self.state.value}, not failed")
        self.state = TaskState.PENDING
        self.assigned_at = None
        self.completed_at = None


class JobState(enum.Enum):
    """Lifecycle of a job."""

    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class Job:
    """A collection of independent tasks submitted together."""

    tasks: list[Task]
    job_id: int = field(default_factory=lambda: next(_job_ids))
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a job needs at least one task")

    @staticmethod
    def uniform(n_tasks: int, mega_instructions: float, *, submitted_at: float = 0.0) -> "Job":
        """A job of *n_tasks* equally sized tasks."""
        if n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
        return Job(
            tasks=[Task(mega_instructions) for _ in range(n_tasks)],
            submitted_at=submitted_at,
        )

    @property
    def state(self) -> JobState:
        """COMPLETED once every task is completed."""
        done = all(t.state is TaskState.COMPLETED for t in self.tasks)
        return JobState.COMPLETED if done else JobState.RUNNING

    def pending_tasks(self) -> list[Task]:
        """Tasks still waiting for assignment."""
        return [t for t in self.tasks if t.state is TaskState.PENDING]

    def assigned_tasks(self) -> list[Task]:
        """Tasks currently running on some node."""
        return [t for t in self.tasks if t.state is TaskState.ASSIGNED]

    def completion_fraction(self) -> float:
        """Fraction of tasks completed."""
        done = sum(1 for t in self.tasks if t.state is TaskState.COMPLETED)
        return done / len(self.tasks)

    def makespan(self) -> float | None:
        """Submission-to-last-completion time, once the job is done."""
        if self.state is not JobState.COMPLETED:
            return None
        last = max(t.completed_at for t in self.tasks if t.completed_at is not None)
        return last - self.submitted_at
