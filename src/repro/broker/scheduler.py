"""Location-aware grid scheduling.

This module closes the loop the paper motivates but does not evaluate: the
broker *needs* MN locations to use MNs as grid resources.  The scheduler
assigns tasks to available nodes, preferring nodes that are (believed to
be) near a gateway-rich region and have battery to spare.  Because it reads
positions from the broker's location DB, scheduling quality degrades with
location error — which is measurable in the examples and ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.broker.broker import GridBroker
from repro.broker.jobs import Job, Task
from repro.broker.resources import ResourceRegistry
from repro.geometry import Vec2

__all__ = ["SchedulingPolicy", "GridScheduler"]


class SchedulingPolicy(enum.Enum):
    """How candidate nodes are ranked."""

    #: First available node wins (baseline).
    FIFO = "fifo"
    #: Prefer nodes believed closest to the job's anchor point.
    PROXIMITY = "proximity"
    #: Prefer high-battery, high-MIPS nodes regardless of position.
    CAPABILITY = "capability"
    #: Proximity, but discounting nodes whose location belief is stale —
    #: each second since the last received LU inflates the effective
    #: distance, so the scheduler prefers a fresh fix slightly farther
    #: away over an old fix that may no longer be true.
    STALENESS_AWARE = "staleness_aware"


@dataclass
class _Assignment:
    task: Task
    node_id: str
    finish_time: float


class GridScheduler:
    """Assigns job tasks to mobile nodes using broker state."""

    def __init__(
        self,
        broker: GridBroker,
        registry: ResourceRegistry,
        *,
        policy: SchedulingPolicy = SchedulingPolicy.PROXIMITY,
        min_battery: float = 0.1,
        staleness_penalty: float = 2.0,
    ) -> None:
        if staleness_penalty < 0:
            raise ValueError(
                f"staleness_penalty must be >= 0, got {staleness_penalty}"
            )
        self._broker = broker
        self._registry = registry
        self.policy = policy
        self.min_battery = min_battery
        #: Effective metres added per second of fix age (STALENESS_AWARE).
        self.staleness_penalty = staleness_penalty
        self._active: list[_Assignment] = []
        self.assignments_made = 0
        self.tasks_completed = 0

    # -- candidate ranking ------------------------------------------------------
    def _rank_key(self, node_id: str, anchor: Vec2 | None, now: float):
        if self.policy is SchedulingPolicy.PROXIMITY and anchor is not None:
            believed = self._broker.believed_position(node_id, now)
            distance = believed.distance_to(anchor) if believed else float("inf")
            return (distance, node_id)
        if self.policy is SchedulingPolicy.STALENESS_AWARE and anchor is not None:
            believed = self._broker.believed_position(node_id, now)
            distance = believed.distance_to(anchor) if believed else float("inf")
            age = self._broker.fix_age(node_id, now)
            penalty = self.staleness_penalty * age if age is not None else 0.0
            return (distance + penalty, node_id)
        if self.policy is SchedulingPolicy.CAPABILITY:
            profile = self._registry.profile(node_id)
            battery = self._registry.battery(node_id)
            return (-profile.compute_mips * battery, node_id)
        return (0.0, node_id)  # FIFO: stable order by node id

    def available_nodes(self, now: float) -> list[str]:
        """Registered nodes currently able to accept work."""
        return [
            node_id
            for node_id in self._registry.node_ids()
            if self._registry.is_available(node_id, now, min_battery=self.min_battery)
        ]

    # -- scheduling ----------------------------------------------------------------
    def schedule(self, job: Job, now: float, *, anchor: Vec2 | None = None) -> int:
        """Assign as many pending tasks of *job* as nodes allow.

        Returns the number of tasks assigned.  Each assignment reserves the
        node until the task's estimated completion; call :meth:`advance`
        with the current time to retire finished tasks.
        """
        candidates = sorted(
            self.available_nodes(now),
            key=lambda nid: self._rank_key(nid, anchor, now),
        )
        assigned = 0
        for task, node_id in zip(job.pending_tasks(), candidates):
            profile = self._registry.profile(node_id)
            duration = task.duration_on(profile.compute_mips)
            task.assign(node_id, now)
            self._registry.mark_busy(node_id, now + duration)
            self._active.append(_Assignment(task, node_id, now + duration))
            assigned += 1
        self.assignments_made += assigned
        return assigned

    def advance(self, now: float) -> int:
        """Complete every assignment whose finish time has passed.

        Completion drains a small battery cost proportional to run time.
        Returns the number of tasks completed this call.
        """
        finished = [a for a in self._active if a.finish_time <= now]
        self._active = [a for a in self._active if a.finish_time > now]
        for assignment in finished:
            assignment.task.complete(assignment.finish_time)
            runtime = assignment.finish_time - (assignment.task.assigned_at or 0.0)
            profile = self._registry.profile(assignment.node_id)
            # Rough compute draw: 1 W while crunching.
            self._registry.drain(assignment.node_id, runtime / 3600.0)
            del profile  # capability only matters at assignment time
            self._registry.mark_completed(assignment.node_id)
            self.tasks_completed += 1
        return len(finished)

    def fail_node(self, node_id: str) -> int:
        """A node vanished: fail and requeue its in-flight tasks.

        Returns how many tasks were requeued.
        """
        lost = [a for a in self._active if a.node_id == node_id]
        self._active = [a for a in self._active if a.node_id != node_id]
        for assignment in lost:
            assignment.task.fail()
            assignment.task.reset()
        return len(lost)

    def run_job(
        self,
        job: Job,
        *,
        start: float = 0.0,
        step: float = 1.0,
        anchor: Vec2 | None = None,
        max_time: float = 1e6,
    ) -> float:
        """Drive a job to completion in fixed steps; returns the makespan."""
        now = start
        while job.completion_fraction() < 1.0:
            if now - start > max_time:
                raise RuntimeError(f"job {job.job_id} exceeded max_time {max_time}")
            self.schedule(job, now, anchor=anchor)
            now += step
            self.advance(now)
        return (job.makespan() or 0.0)
