"""The broker's location database.

Stores, per MN, the latest location record plus bounded history.  Every
record is tagged with its provenance: ``RECEIVED`` (an actual LU arrived)
or ``ESTIMATED`` (the Location Estimator filled a gap while LUs were being
filtered) — the distinction the paper's Fig. 7 analysis rests on.
"""

from __future__ import annotations

import enum
import types
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.geometry import Vec2
from repro.telemetry import NULL_TELEMETRY

__all__ = ["RecordSource", "LocationRecord", "LocationDB"]


class RecordSource(enum.Enum):
    """Where a location record came from."""

    RECEIVED = "received"
    ESTIMATED = "estimated"


@dataclass(frozen=True, slots=True)
class LocationRecord:
    """One entry of the location DB."""

    node_id: str
    time: float
    position: Vec2
    source: RecordSource

    @property
    def is_estimate(self) -> bool:
        """True when this record was produced by the Location Estimator."""
        return self.source is RecordSource.ESTIMATED


class LocationDB:
    """Latest-record store with bounded per-node history."""

    def __init__(
        self,
        history_length: int = 128,
        *,
        telemetry: Any = None,
        name: str = "db",
    ) -> None:
        if history_length < 1:
            raise ValueError(f"history_length must be >= 1, got {history_length}")
        self._latest: dict[str, LocationRecord] = {}
        self._latest_view = types.MappingProxyType(self._latest)
        self._history: dict[str, deque[LocationRecord]] = {}
        self._history_length = history_length
        self.stored_received = 0
        self.stored_estimated = 0
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_received = tm.counter("broker.db.stored_received", db=name)
        self._t_estimated = tm.counter("broker.db.stored_estimated", db=name)
        self._t_nodes = tm.gauge("broker.db.nodes", db=name)

    def store(self, record: LocationRecord) -> None:
        """Insert a record; it becomes the node's latest."""
        node_id = record.node_id
        previous = self._latest.get(node_id)
        if previous is not None and record.time < previous.time:
            raise ValueError(
                f"record for {node_id} at {record.time} is older than "
                f"latest ({previous.time})"
            )
        self._latest[node_id] = record
        # dict.setdefault would construct a throwaway deque on every call;
        # this path runs once per stored record across the whole simulation.
        history = self._history.get(node_id)
        if history is None:
            history = self._history[node_id] = deque(
                maxlen=self._history_length
            )
        history.append(record)
        if record.source is RecordSource.RECEIVED:
            self.stored_received += 1
        else:
            self.stored_estimated += 1
        if self._instrumented:
            if record.source is RecordSource.RECEIVED:
                self._t_received.inc()
            else:
                self._t_estimated.inc()
            self._t_nodes.set(len(self._latest))

    def state_dict(self) -> dict:
        """Durable DB state as JSON-safe values.

        Only latest records and counters are durable; per-node history is a
        bounded diagnostic ring and is reseeded with the latest record on
        restore.
        """
        return {
            "history_length": self._history_length,
            "latest": {
                node_id: [
                    record.time,
                    record.position.x,
                    record.position.y,
                    record.source.value,
                ]
                for node_id, record in sorted(self._latest.items())
            },
            "stored_estimated": self.stored_estimated,
            "stored_received": self.stored_received,
        }

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`.

        Latest records and counters round-trip exactly; each node's history
        restarts with just its latest record.
        """
        self._latest.clear()
        self._history.clear()
        self._history_length = int(state["history_length"])
        for node_id, row in state["latest"].items():
            record = LocationRecord(
                node_id=node_id,
                time=float(row[0]),
                position=Vec2(float(row[1]), float(row[2])),
                source=RecordSource(row[3]),
            )
            self._latest[node_id] = record
            history: deque[LocationRecord] = deque(maxlen=self._history_length)
            history.append(record)
            self._history[node_id] = history
        self.stored_estimated = int(state["stored_estimated"])
        self.stored_received = int(state["stored_received"])
        if self._instrumented:
            self._t_nodes.set(len(self._latest))

    def latest(self, node_id: str) -> LocationRecord | None:
        """The node's most recent record, if any."""
        return self._latest.get(node_id)

    def position_of(self, node_id: str) -> Vec2 | None:
        """Convenience: the node's latest stored position."""
        record = self._latest.get(node_id)
        return record.position if record else None

    @property
    def latest_map(self) -> Mapping[str, LocationRecord]:
        """Zero-copy read-only view of every node's latest record.

        Bulk consumers (the harness's per-step error measurement) read
        thousands of latest records per simulated second; this view spares
        them a method call and ``None`` dance per node.
        """
        return self._latest_view

    def history(self, node_id: str) -> list[LocationRecord]:
        """The node's retained history, oldest first."""
        return list(self._history.get(node_id, ()))

    def node_ids(self) -> list[str]:
        """Ids of every node with at least one record."""
        return list(self._latest)

    def __len__(self) -> int:
        return len(self._latest)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._latest

    @property
    def estimate_fraction(self) -> float:
        """Fraction of stored records that were estimates."""
        total = self.stored_received + self.stored_estimated
        return self.stored_estimated / total if total else 0.0
