"""The grid broker: location bookkeeping, estimation and job scheduling.

Per the paper's architecture the broker holds a **location DB** and a
**location estimator**: received LUs are stored as ground truth; when a
node's LUs are filtered, the broker stores an *estimated* location instead.
On top of that sits the mobile-grid workload that motivates the whole
exercise — a resource registry of MN capabilities and a proximity/battery
aware job scheduler that consumes the broker's location view.
"""

from repro.broker.location_db import LocationDB, LocationRecord, RecordSource
from repro.broker.broker import BrokerConfig, GridBroker
from repro.broker.resources import DeviceProfile, ResourceRegistry, device_profile
from repro.broker.jobs import Job, JobState, Task, TaskState
from repro.broker.scheduler import GridScheduler, SchedulingPolicy

__all__ = [
    "LocationDB",
    "LocationRecord",
    "RecordSource",
    "BrokerConfig",
    "GridBroker",
    "DeviceProfile",
    "ResourceRegistry",
    "device_profile",
    "Job",
    "JobState",
    "Task",
    "TaskState",
    "GridScheduler",
    "SchedulingPolicy",
]
