"""The grid broker (paper §3.4, "Grid Broker" component).

Behaviour, straight from the paper: "If the LUs of the MN are received, then
the grid broker stores this information to the location DB.  On the other
hand, if the LUs are filtered, the grid broker uses the location estimator
to predict the location of the MN and the grid broker stores an estimated
location of the MN to the location DB."

The broker is driven two ways:

* :meth:`receive_update` — an LU survived the ADF and arrived;
* :meth:`tick` — once per reporting interval the broker sweeps its known
  nodes; any node silent this interval gets an estimated record.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.broker.location_db import LocationDB, LocationRecord, RecordSource
from repro.estimation.arima_tracker import ArimaTracker
from repro.estimation.kalman import KalmanTracker
from repro.estimation.map_matched import MapMatchedTracker
from repro.estimation.tracker import (
    BrownTracker,
    HoltTracker,
    LastKnownTracker,
    LocationTracker,
    SimpleSmoothingTracker,
    VelocityComponentTracker,
    tracker_from_state,
)
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.telemetry import NULL_TELEMETRY, Severity
from repro.util.validation import check_positive

__all__ = ["BrokerConfig", "GridBroker"]

TrackerFactory = Callable[[], LocationTracker]

#: Named estimator families selectable via :class:`BrokerConfig`.
_ESTIMATORS: dict[str, Callable[[float], LocationTracker]] = {
    "brown": lambda alpha: BrownTracker(alpha),
    "simple": lambda alpha: SimpleSmoothingTracker(alpha),
    "holt": lambda alpha: HoltTracker(alpha),
    "velocity": lambda alpha: VelocityComponentTracker(alpha),
    "kalman": lambda alpha: KalmanTracker(),
    "arima": lambda alpha: ArimaTracker(),
}


@dataclass(frozen=True)
class BrokerConfig:
    """Broker tunables.

    ``use_location_estimator`` toggles the paper's LE on/off (the with/
    without-LE comparison of Figs. 7-9).  ``estimator`` names the tracker
    family used when the LE is on — ``"brown"`` (the paper's choice),
    ``"simple"``, ``"holt"``, ``"velocity"``, ``"kalman"`` or
    ``"arima"`` — see ablation A3 for the measured comparison.
    ``smoothing_alpha`` is the smoothing constant where applicable.
    """

    use_location_estimator: bool = True
    estimator: str = "brown"
    smoothing_alpha: float = 0.4
    report_interval: float = 1.0
    #: Graceful degradation under silence (both default off, preserving the
    #: paper's unbounded-extrapolation behaviour bit for bit):
    #: ``max_extrapolation_age`` — once a node's last *received* fix is
    #: older than this, estimates decay to the last-known position instead
    #: of extrapolating further (a stale velocity belief diverges without
    #: bound; a stale position is at least anchored to reality).
    max_extrapolation_age: float | None = None
    #: ``quarantine_age`` — nodes silent longer than this are quarantined:
    #: excluded from ``believed_position`` and the estimation sweep (with a
    #: WARNING event) until an LU resyncs them.
    quarantine_age: float | None = None

    def __post_init__(self) -> None:
        check_positive(self.report_interval, "report_interval")
        if self.estimator not in _ESTIMATORS:
            raise ValueError(
                f"unknown estimator {self.estimator!r}; "
                f"choose from {sorted(_ESTIMATORS)}"
            )
        if self.max_extrapolation_age is not None:
            check_positive(self.max_extrapolation_age, "max_extrapolation_age")
        if self.quarantine_age is not None:
            check_positive(self.quarantine_age, "quarantine_age")
        if (
            self.max_extrapolation_age is not None
            and self.quarantine_age is not None
            and self.quarantine_age < self.max_extrapolation_age
        ):
            raise ValueError(
                "quarantine_age must be >= max_extrapolation_age "
                f"({self.quarantine_age} < {self.max_extrapolation_age})"
            )


class GridBroker:
    """Location consumer and estimator of the mobile grid."""

    def __init__(
        self,
        config: BrokerConfig | None = None,
        *,
        tracker_factory: TrackerFactory | None = None,
        telemetry: Any = None,
        name: str = "broker",
    ) -> None:
        self.config = config or BrokerConfig()
        # Only a caller-supplied factory can produce MapMatchedTrackers;
        # the named estimator families never do, so the per-LU isinstance
        # check is skipped entirely for standard brokers.
        self._maybe_map_matched = tracker_factory is not None
        if tracker_factory is not None:
            self._tracker_factory: TrackerFactory = tracker_factory
        elif self.config.use_location_estimator:
            alpha = self.config.smoothing_alpha
            make = _ESTIMATORS[self.config.estimator]
            self._tracker_factory = lambda: make(alpha)
        else:
            self._tracker_factory = LastKnownTracker
        # No-LE brokers create nothing but LastKnownTrackers, whose update
        # is a plain field refresh — receive_update inlines it.  Brokers on
        # the default "brown" estimator likewise hold only BrownTrackers,
        # whose update receive_update also inlines.
        self._last_known_only = (
            tracker_factory is None and not self.config.use_location_estimator
        )
        self._brown_only = (
            tracker_factory is None
            and self.config.use_location_estimator
            and self.config.estimator == "brown"
        )
        self.name = name
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry = tm
        self._instrumented = tm.enabled
        self._t_received = tm.counter("broker.lu_received", broker=name)
        self._t_estimates = tm.counter("broker.estimates_made", broker=name)
        self._t_invocations = tm.counter("broker.estimator_invocations", broker=name)
        self._t_staleness = tm.gauge("broker.staleness_max", broker=name)
        self.location_db = LocationDB(telemetry=telemetry, name=name)
        self._trackers: dict[str, LocationTracker] = {}
        self._updated_since_tick: set[str] = set()
        self.updates_received = 0
        self.estimates_made = 0
        # Graceful-degradation state (all dormant — and the per-LU hot path
        # untouched — unless an age bound is configured).
        self._max_extrapolation_age = self.config.max_extrapolation_age
        self._quarantine_age = self.config.quarantine_age
        self._degraded_mode = (
            self._max_extrapolation_age is not None
            or self._quarantine_age is not None
        )
        self._quarantined: set[str] = set()
        self.quarantines = 0
        self.resyncs = 0
        self.stale_lus_dropped = 0
        self._t_quarantined = tm.counter("broker.quarantined", broker=name)
        self._t_resyncs = tm.counter("broker.resyncs", broker=name)
        self._t_stale_dropped = tm.counter("broker.stale_lus_dropped", broker=name)

    # -- LU ingestion --------------------------------------------------------
    def receive_update(
        self, update: LocationUpdate, record: LocationRecord | None = None
    ) -> None:
        """Store a received LU and feed the node's tracker.

        *record*, when given, is a prebuilt RECEIVED record for this LU —
        callers fanning one LU out to several brokers (the harness feeds
        each lane's with-LE and without-LE broker the same update) build
        it once and share it; records are frozen, so sharing is safe.
        """
        self.updates_received += 1
        if self._instrumented:
            self._t_received.inc()
        node_id = update.node_id
        tracker = self._trackers.get(node_id)
        skip_db = False
        if self._degraded_mode:
            # Reconnect resync: a post-outage LU burst may arrive late,
            # reordered, or for a quarantined node.  Absorb it instead of
            # letting the strict monotonic-time checks blow up the broker.
            timestamp = update.timestamp
            if (
                tracker is not None
                and tracker._last_time is not None
                and timestamp < tracker._last_time
            ):
                # Older than what we already know — a retransmit that lost
                # the race.  It carries no new information; drop it.
                self.stale_lus_dropped += 1
                if self._instrumented:
                    self._t_stale_dropped.inc()
                return
            if node_id in self._quarantined:
                self._quarantined.discard(node_id)
                self.resyncs += 1
                if self._instrumented:
                    self._t_resyncs.inc()
                self._telemetry.event(
                    Severity.INFO,
                    "node resynced",
                    source=self.name,
                    node=node_id,
                )
                # Fresh tracker: smoothing state from before a long outage
                # describes a trajectory the node abandoned long ago.
                tracker = None
            previous = self.location_db._latest.get(node_id)
            if previous is not None and timestamp < previous.time:
                # The DB already holds a newer (estimated) record; feed the
                # tracker — a real fix always beats an estimate — but keep
                # the DB's time ordering intact.
                skip_db = True
        if tracker is None:
            tracker = self._trackers[node_id] = self._tracker_factory()
        cap = update.dth if update.dth > 0 else None
        timestamp = update.timestamp
        if self._last_known_only:
            # Inlined LastKnownTracker.update (cap is already None-or-
            # positive, matching its displacement_cap normalisation).
            if tracker._last_time is not None and timestamp < tracker._last_time:
                raise ValueError(
                    f"update times must be non-decreasing: "
                    f"{timestamp} < {tracker._last_time}"
                )
            tracker._last_time = timestamp
            tracker._last_position = update.position
            tracker._displacement_cap = cap
            tracker._updates += 1
        elif self._brown_only:
            # Inlined BrownTracker.update, smoothers included — identical
            # arithmetic, one frame instead of two per LU.
            if tracker._last_time is not None and timestamp < tracker._last_time:
                raise ValueError(
                    f"update times must be non-decreasing: "
                    f"{timestamp} < {tracker._last_time}"
                )
            velocity = update.velocity
            vx, vy = velocity.x, velocity.y
            speed = math.hypot(vx, vy)
            sp = tracker._speed
            if sp._n == 0:
                sp._s1 = speed
                sp._s2 = speed
            else:
                a = sp._alpha
                sp._s1 = a * speed + (1.0 - a) * sp._s1
                sp._s2 = a * sp._s1 + (1.0 - a) * sp._s2
            sp._n += 1
            if speed > 1e-9:
                c = vx / speed
                dc = tracker._dir_cos
                if dc._n == 0:
                    dc._s1 = c
                    dc._s2 = c
                else:
                    a = dc._alpha
                    dc._s1 = a * c + (1.0 - a) * dc._s1
                    dc._s2 = a * dc._s1 + (1.0 - a) * dc._s2
                dc._n += 1
                s = vy / speed
                ds = tracker._dir_sin
                if ds._n == 0:
                    ds._s1 = s
                    ds._s2 = s
                else:
                    a = ds._alpha
                    ds._s1 = a * s + (1.0 - a) * ds._s1
                    ds._s2 = a * ds._s1 + (1.0 - a) * ds._s2
                ds._n += 1
            tracker._last_time = timestamp
            tracker._last_position = update.position
            tracker._displacement_cap = cap
            tracker._updates += 1
        # Map-matched trackers additionally consume the LU's region tag.
        elif self._maybe_map_matched and isinstance(tracker, MapMatchedTracker):
            tracker.update(
                update.timestamp,
                update.position,
                update.velocity,
                displacement_cap=cap,
                region_id=update.region_id or None,
            )
        else:
            tracker.update(
                update.timestamp,
                update.position,
                update.velocity,
                displacement_cap=cap,
            )
        if not skip_db:
            if record is None:
                record = LocationRecord(
                    node_id=node_id,
                    time=timestamp,
                    position=update.position,
                    source=RecordSource.RECEIVED,
                )
            # Inlined LocationDB.store (same checks, counters and history
            # bookkeeping): this path runs once per LU per broker, and the
            # store frame was a measurable slice of the whole simulation.
            db = self.location_db
            latest = db._latest
            previous = latest.get(node_id)
            if previous is not None and timestamp < previous.time:
                raise ValueError(
                    f"record for {node_id} at {timestamp} is older than "
                    f"latest ({previous.time})"
                )
            latest[node_id] = record
            history = db._history.get(node_id)
            if history is None:
                history = db._history[node_id] = deque(maxlen=db._history_length)
            history.append(record)
            db.stored_received += 1
            if db._instrumented:
                db._t_received.inc()
                db._t_nodes.set(len(latest))
        self._updated_since_tick.add(node_id)

    # -- the estimation sweep ------------------------------------------------
    def tick(self, now: float) -> int:
        """Estimate positions for nodes silent since the last tick.

        Returns how many estimates were stored.  The paper's broker "waits
        for the LU from the ADF; ... if the grid broker does not receive
        the LU, then the grid broker estimates the location of the MN".
        """
        estimated = 0
        staleness_max = 0.0
        instrumented = self._instrumented
        updated = self._updated_since_tick
        if not instrumented and len(updated) == len(self._trackers):
            # Every known node reported this interval (the ideal lane's
            # steady state): nothing to estimate and no staleness gauge to
            # feed, so the sweep is a no-op.
            updated.clear()
            return 0
        store = self.location_db.store
        degraded = self._degraded_mode
        max_age = self._max_extrapolation_age
        quarantine_age = self._quarantine_age
        for node_id, tracker in self._trackers.items():
            if instrumented and tracker.last_fix is not None:
                t_fix, _ = tracker.last_fix
                age = now - t_fix
                if age > staleness_max:
                    staleness_max = age
            if node_id in updated:
                continue
            if tracker._last_position is None:  # inlined tracker.has_fix
                continue
            if degraded:
                age = now - tracker._last_time
                if quarantine_age is not None and age > quarantine_age:
                    if node_id not in self._quarantined:
                        self._quarantined.add(node_id)
                        self.quarantines += 1
                        if instrumented:
                            self._t_quarantined.inc()
                        self._telemetry.event(
                            Severity.WARNING,
                            "node quarantined",
                            source=self.name,
                            node=node_id,
                            age=age,
                        )
                    # A quarantined node gets no estimates: fabricating
                    # records for a node we have effectively lost would
                    # poison every consumer of the location DB.
                    continue
                if max_age is not None and age > max_age:
                    # Decay: past the extrapolation budget the velocity
                    # belief is stale; anchor to the last received fix.
                    position = tracker._last_position
                else:
                    position = tracker.predict(now)
            else:
                position = tracker.predict(now)
            if instrumented:
                self._t_invocations.inc()
            store(
                LocationRecord(
                    node_id=node_id,
                    time=now,
                    position=position,
                    source=RecordSource.ESTIMATED,
                )
            )
            estimated += 1
        self.estimates_made += estimated
        if instrumented:
            self._t_estimates.inc(estimated)
            self._t_staleness.set(staleness_max)
        self._updated_since_tick.clear()
        return estimated

    # -- state snapshots -----------------------------------------------------
    def state_dict(self) -> dict:
        """Complete broker state as JSON-safe values.

        Covers the location DB (latest records + counters), every tracker's
        smoothing state, the quarantine/updated-since-tick sets and the
        broker counters.  :meth:`load_state` on a freshly-constructed broker
        with the same config reproduces ``receive_update``/``tick``/
        ``believed_position`` behaviour bit-exactly — the contract the
        serving layer's shard snapshots (``repro.serving.durability``) rely
        on.  Raises :class:`TypeError` when a tracker family has no state
        codec (kalman/arima/map-matched).
        """
        return {
            "db": self.location_db.state_dict(),
            "estimates_made": self.estimates_made,
            "quarantined": sorted(self._quarantined),
            "quarantines": self.quarantines,
            "resyncs": self.resyncs,
            "stale_lus_dropped": self.stale_lus_dropped,
            "trackers": {
                node_id: tracker.state_dict()
                for node_id, tracker in sorted(self._trackers.items())
            },
            "updated_since_tick": sorted(self._updated_since_tick),
            "updates_received": self.updates_received,
        }

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` bit-exactly.

        The broker must have been constructed with the same config as the
        one that produced *state* (config itself is not serialized — it is
        the restoring owner's responsibility, mirroring how the serving
        store rebuilds shards from its own ``ServingConfig``).
        """
        self.location_db.load_state(state["db"])
        self._trackers.clear()
        for node_id, tracker_state in state["trackers"].items():
            self._trackers[node_id] = tracker_from_state(tracker_state)
        self._updated_since_tick.clear()
        self._updated_since_tick.update(state["updated_since_tick"])
        self._quarantined.clear()
        self._quarantined.update(state["quarantined"])
        self.estimates_made = int(state["estimates_made"])
        self.quarantines = int(state["quarantines"])
        self.resyncs = int(state["resyncs"])
        self.stale_lus_dropped = int(state["stale_lus_dropped"])
        self.updates_received = int(state["updates_received"])

    # -- queries ------------------------------------------------------------------
    def believed_position(self, node_id: str, now: float | None = None) -> Vec2 | None:
        """The broker's best current belief of a node's position.

        Prefers a live tracker prediction at *now* when available (fresher
        than the last stored record); otherwise the latest DB record.
        Under graceful degradation, quarantined (or quarantine-aged) nodes
        yield ``None`` and predictions past the extrapolation budget decay
        to the last received fix.
        """
        tracker = self._trackers.get(node_id)
        if self._degraded_mode:
            if node_id in self._quarantined:
                return None
            if tracker is not None and tracker.has_fix and now is not None:
                age = now - tracker._last_time
                if self._quarantine_age is not None and age > self._quarantine_age:
                    return None
                if (
                    self._max_extrapolation_age is not None
                    and age > self._max_extrapolation_age
                ):
                    return tracker._last_position
        if tracker is not None and tracker.has_fix and now is not None:
            return tracker.predict(now)
        return self.location_db.position_of(node_id)

    def known_nodes(self) -> list[str]:
        """Every node the broker has ever heard from."""
        return list(self._trackers)

    def fix_age(self, node_id: str, now: float) -> float | None:
        """Seconds since the node's last *received* LU (None if never).

        Estimated records do not refresh the age — staleness measures how
        long the broker has been extrapolating, which a scheduler may use
        to discount unreliable placements.
        """
        tracker = self._trackers.get(node_id)
        if tracker is None or tracker.last_fix is None:
            return None
        t_fix, _ = tracker.last_fix
        return max(now - t_fix, 0.0)

    def quarantined_nodes(self) -> list[str]:
        """Nodes currently quarantined (sorted; graceful degradation only)."""
        return sorted(self._quarantined)

    def is_quarantined(self, node_id: str) -> bool:
        """True while *node_id* is quarantined."""
        return node_id in self._quarantined

    def stale_nodes(self, now: float, *, max_age: float) -> list[str]:
        """Nodes whose last received LU is older than *max_age* seconds."""
        out = []
        for node_id in self._trackers:
            age = self.fix_age(node_id, now)
            if age is not None and age > max_age:
                out.append(node_id)
        return out

    def tracker(self, node_id: str) -> LocationTracker | None:
        """The node's tracker (tests and diagnostics)."""
        return self._trackers.get(node_id)

    def _tracker_for(self, node_id: str) -> LocationTracker:
        tracker = self._trackers.get(node_id)
        if tracker is None:
            tracker = self._tracker_factory()
            self._trackers[node_id] = tracker
        return tracker
