"""MN resource profiles: what each device can contribute to the grid.

The mobile grid's raison d'etre is harvesting MN compute.  The paper lists
the constraints — low processing power, low battery, low bandwidth — so a
registry tracks per-node capability plus a simple battery model that drains
with work and with transmitted LUs (communication is the dominant cost the
ADF is designed to cut).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.states import DeviceType
from repro.util.validation import check_in_range, check_positive

__all__ = ["DeviceProfile", "device_profile", "ResourceRegistry"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static capability of a device class."""

    device: DeviceType
    compute_mips: float
    bandwidth_kbps: float
    battery_wh: float
    #: Battery cost of transmitting one LU, in watt-hours.
    tx_cost_wh: float

    def __post_init__(self) -> None:
        check_positive(self.compute_mips, "compute_mips")
        check_positive(self.bandwidth_kbps, "bandwidth_kbps")
        check_positive(self.battery_wh, "battery_wh")
        check_positive(self.tx_cost_wh, "tx_cost_wh")


_PROFILES: dict[DeviceType, DeviceProfile] = {
    DeviceType.LAPTOP: DeviceProfile(
        DeviceType.LAPTOP,
        compute_mips=2000.0,
        bandwidth_kbps=1024.0,
        battery_wh=60.0,
        tx_cost_wh=2e-4,
    ),
    DeviceType.PDA: DeviceProfile(
        DeviceType.PDA,
        compute_mips=400.0,
        bandwidth_kbps=256.0,
        battery_wh=12.0,
        tx_cost_wh=1.2e-4,
    ),
    DeviceType.CELL_PHONE: DeviceProfile(
        DeviceType.CELL_PHONE,
        compute_mips=200.0,
        bandwidth_kbps=128.0,
        battery_wh=5.0,
        tx_cost_wh=1e-4,
    ),
}


def device_profile(device: DeviceType) -> DeviceProfile:
    """The static capability profile for a device class."""
    return _PROFILES[device]


@dataclass
class _NodeResources:
    profile: DeviceProfile
    battery_fraction: float = 1.0
    busy_until: float = 0.0
    tasks_completed: int = 0


class ResourceRegistry:
    """Per-node dynamic resource state at the broker."""

    def __init__(self) -> None:
        self._nodes: dict[str, _NodeResources] = {}

    def register(self, node_id: str, device: DeviceType) -> None:
        """Register a node with its device class (idempotent)."""
        if node_id not in self._nodes:
            self._nodes[node_id] = _NodeResources(device_profile(device))

    def is_registered(self, node_id: str) -> bool:
        """True when the node is known to the registry."""
        return node_id in self._nodes

    def node_ids(self) -> list[str]:
        """All registered nodes."""
        return list(self._nodes)

    def profile(self, node_id: str) -> DeviceProfile:
        """A node's static profile."""
        return self._entry(node_id).profile

    def battery(self, node_id: str) -> float:
        """Remaining battery fraction in [0, 1]."""
        return self._entry(node_id).battery_fraction

    def drain(self, node_id: str, wh: float) -> float:
        """Consume *wh* watt-hours; returns the new battery fraction."""
        entry = self._entry(node_id)
        fraction_cost = wh / entry.profile.battery_wh
        entry.battery_fraction = max(entry.battery_fraction - fraction_cost, 0.0)
        return entry.battery_fraction

    def drain_for_transmission(self, node_id: str, messages: int = 1) -> float:
        """Battery cost of transmitting *messages* LUs."""
        entry = self._entry(node_id)
        return self.drain(node_id, entry.profile.tx_cost_wh * messages)

    def set_battery(self, node_id: str, fraction: float) -> None:
        """Force a battery level (tests, scenarios)."""
        check_in_range(fraction, "fraction", 0.0, 1.0)
        self._entry(node_id).battery_fraction = fraction

    # -- availability for scheduling ------------------------------------------
    def is_available(self, node_id: str, now: float, *, min_battery: float = 0.1) -> bool:
        """Can the node accept a task right now?"""
        entry = self._entry(node_id)
        return entry.battery_fraction >= min_battery and entry.busy_until <= now

    def mark_busy(self, node_id: str, until: float) -> None:
        """Reserve the node until simulated time *until*."""
        self._entry(node_id).busy_until = until

    def mark_completed(self, node_id: str) -> None:
        """Record one finished task."""
        entry = self._entry(node_id)
        entry.tasks_completed += 1
        entry.busy_until = 0.0

    def tasks_completed(self, node_id: str) -> int:
        """How many tasks the node has finished."""
        return self._entry(node_id).tasks_completed

    def _entry(self, node_id: str) -> _NodeResources:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not registered") from None
