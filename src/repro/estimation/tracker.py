"""2-D location trackers: the broker's view of one mobile node.

A tracker absorbs the (possibly filtered) stream of location updates for one
MN and answers ``predict(t)``: where is the node now?  The paper's Location
Estimator (:class:`BrownTracker`) smooths the node's *velocity and
direction* with Brown's double exponential smoothing and projects the next
coordinates "by using trigonometric function" (§3.3).  The no-LE baseline
(:class:`LastKnownTracker`) just returns the last received fix.
"""

from __future__ import annotations

import abc
import math

from repro.estimation.smoothing import (
    BrownDoubleExponentialSmoothing,
    HoltLinearSmoothing,
    SimpleExponentialSmoothing,
    _Smoother,
)
from repro.geometry import Vec2

__all__ = [
    "LocationTracker",
    "LastKnownTracker",
    "BrownTracker",
    "VelocityComponentTracker",
    "SimpleSmoothingTracker",
    "HoltTracker",
    "tracker_from_state",
]


class LocationTracker(abc.ABC):
    """Base tracker: one per (broker, MN) pair."""

    #: Stable identifier used by :meth:`state_dict` / :func:`tracker_from_state`.
    #: ``None`` means the tracker family has no snapshot codec.
    _state_kind: str | None = None

    def __init__(self) -> None:
        self._last_time: float | None = None
        self._last_position: Vec2 | None = None
        self._displacement_cap: float | None = None
        self._updates = 0

    def state_dict(self) -> dict:
        """Full tracker state as JSON-safe values.

        Restoring via :func:`tracker_from_state` (or :meth:`load_state` on a
        fresh instance of the same class) reproduces ``predict`` bit-exactly.
        Raises :class:`TypeError` for tracker families without a codec.
        """
        if self._state_kind is None:
            raise TypeError(
                f"{type(self).__name__} does not support state snapshots; "
                "durable serving shards require a snapshot-capable tracker"
            )
        state = {
            "displacement_cap": self._displacement_cap,
            "kind": self._state_kind,
            "last_position": (
                None
                if self._last_position is None
                else [self._last_position.x, self._last_position.y]
            ),
            "last_time": self._last_time,
            "updates": self._updates,
        }
        state.update(self._extra_state())
        return state

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` bit-exactly."""
        if state.get("kind") != self._state_kind:
            raise ValueError(
                f"tracker state kind {state.get('kind')!r} does not match "
                f"{type(self).__name__} ({self._state_kind!r})"
            )
        self._last_time = None if state["last_time"] is None else float(state["last_time"])
        pos = state["last_position"]
        self._last_position = None if pos is None else Vec2(float(pos[0]), float(pos[1]))
        cap = state["displacement_cap"]
        self._displacement_cap = None if cap is None else float(cap)
        self._updates = int(state["updates"])
        self._load_extra_state(state)

    def _extra_state(self) -> dict:
        return {}

    def _load_extra_state(self, state: dict) -> None:
        pass

    @property
    def updates_received(self) -> int:
        """How many LUs have been absorbed."""
        return self._updates

    @property
    def has_fix(self) -> bool:
        """True once at least one LU has been absorbed."""
        return self._last_position is not None

    @property
    def last_fix(self) -> tuple[float, Vec2] | None:
        """The most recent received ``(time, position)``, if any."""
        if self._last_position is None or self._last_time is None:
            return None
        return self._last_time, self._last_position

    def update(
        self,
        time: float,
        position: Vec2,
        velocity: Vec2,
        *,
        displacement_cap: float | None = None,
    ) -> None:
        """Absorb a received LU.

        *displacement_cap*, when given and positive, is the distance filter's
        DTH in force for this node: until the next LU arrives, the node is
        guaranteed to be within that distance of *position*, so predictions
        are clamped onto that disc.
        """
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"update times must be non-decreasing: {time} < {self._last_time}"
            )
        self._observe(time, position, velocity)
        self._last_time = time
        self._last_position = position
        self._displacement_cap = (
            displacement_cap if displacement_cap and displacement_cap > 0 else None
        )
        self._updates += 1

    def _clamp_to_cap(self, predicted: Vec2) -> Vec2:
        """Pull *predicted* back onto the silence-implied disc, if any."""
        if self._displacement_cap is None or self._last_position is None:
            return predicted
        offset = predicted - self._last_position
        distance = offset.norm()
        if distance <= self._displacement_cap:
            return predicted
        return self._last_position + offset * (self._displacement_cap / distance)

    @abc.abstractmethod
    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None: ...

    @abc.abstractmethod
    def predict(self, time: float) -> Vec2:
        """Best estimate of the node's position at *time* (>= last update)."""

    def _require_fix(self) -> tuple[float, Vec2]:
        if self._last_position is None or self._last_time is None:
            raise RuntimeError("tracker has no fix yet; cannot predict")
        return self._last_time, self._last_position


class LastKnownTracker(LocationTracker):
    """No estimation: the node is assumed frozen at its last reported fix.

    This is the "without LE" configuration of Figs. 7 and 8.
    """

    _state_kind = "last_known"

    def update(
        self,
        time: float,
        position: Vec2,
        velocity: Vec2,
        *,
        displacement_cap: float | None = None,
    ) -> None:
        # Concrete override: no observation to absorb, so skip the abstract
        # _observe dispatch — this runs once per LU for every no-LE broker.
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"update times must be non-decreasing: {time} < {self._last_time}"
            )
        self._last_time = time
        self._last_position = position
        self._displacement_cap = (
            displacement_cap if displacement_cap and displacement_cap > 0 else None
        )
        self._updates += 1

    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        pass

    def predict(self, time: float) -> Vec2:
        _, position = self._require_fix()
        return position


class BrownTracker(LocationTracker):
    """The paper's Location Estimator.

    Speed and direction are each smoothed with Brown's double exponential
    smoothing over the received LUs.  Direction is smoothed on its unit
    vector (one Brown smoother per cos/sin component), which keeps the
    estimate wrap-safe: smoothing a raw or unwrapped angle turns periodic
    headings — e.g. a node patrolling a road back and forth — into a ramp
    whose trend permanently rotates the estimate off-heading.  The
    prediction projects from the last fix:

        position(t) = last_fix + v_hat * (t - t_fix) * (cos θ_hat, sin θ_hat)
    """

    _state_kind = "brown"

    def __init__(self, alpha: float = 0.4) -> None:
        super().__init__()
        self._speed = BrownDoubleExponentialSmoothing(alpha)
        self._dir_cos = BrownDoubleExponentialSmoothing(alpha)
        self._dir_sin = BrownDoubleExponentialSmoothing(alpha)

    def _extra_state(self) -> dict:
        return {
            "dir_cos": self._dir_cos.state_dict(),
            "dir_sin": self._dir_sin.state_dict(),
            "speed": self._speed.state_dict(),
        }

    def _load_extra_state(self, state: dict) -> None:
        self._dir_cos.load_state(state["dir_cos"])
        self._dir_sin.load_state(state["dir_sin"])
        self._speed.load_state(state["speed"])

    def update(
        self,
        time: float,
        position: Vec2,
        velocity: Vec2,
        *,
        displacement_cap: float | None = None,
    ) -> None:
        # Concrete override flattening base.update -> _observe -> the three
        # smoother updates into one frame; the arithmetic matches
        # BrownDoubleExponentialSmoothing.update exactly (and vx / speed
        # matches (velocity / speed).x).
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"update times must be non-decreasing: {time} < {self._last_time}"
            )
        vx, vy = velocity.x, velocity.y
        speed = math.hypot(vx, vy)
        sp = self._speed
        if sp._n == 0:
            sp._s1 = speed
            sp._s2 = speed
        else:
            a = sp._alpha
            sp._s1 = a * speed + (1.0 - a) * sp._s1
            sp._s2 = a * sp._s1 + (1.0 - a) * sp._s2
        sp._n += 1
        if speed > 1e-9:
            c = vx / speed
            dc = self._dir_cos
            if dc._n == 0:
                dc._s1 = c
                dc._s2 = c
            else:
                a = dc._alpha
                dc._s1 = a * c + (1.0 - a) * dc._s1
                dc._s2 = a * dc._s1 + (1.0 - a) * dc._s2
            dc._n += 1
            s = vy / speed
            ds = self._dir_sin
            if ds._n == 0:
                ds._s1 = s
                ds._s2 = s
            else:
                a = ds._alpha
                ds._s1 = a * s + (1.0 - a) * ds._s1
                ds._s2 = a * ds._s1 + (1.0 - a) * ds._s2
            ds._n += 1
        self._last_time = time
        self._last_position = position
        self._displacement_cap = (
            displacement_cap if displacement_cap and displacement_cap > 0 else None
        )
        self._updates += 1

    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        vx, vy = velocity.x, velocity.y
        speed = math.hypot(vx, vy)
        self._speed.update(speed)
        if speed > 1e-9:
            self._dir_cos.update(vx / speed)
            self._dir_sin.update(vy / speed)

    def _heading_vector(self) -> Vec2 | None:
        """Smoothed heading as a vector whose norm encodes confidence.

        The forecast of the cos/sin components is the (trend-extrapolated)
        mean resultant vector of recent headings: length ~1 for steady
        headings, ~0 for erratic ones.  Scaling the dead-reckoned
        displacement by that length makes the estimator conservative exactly
        when direction is unpredictable (RMS nodes, reversals).
        """
        if not self._dir_cos.ready:
            return None
        c = self._dir_cos.forecast(1.0)
        s = self._dir_sin.forecast(1.0)
        norm = math.hypot(c, s)
        if norm <= 1e-9:
            return None
        if norm > 1.0:
            c, s = c / norm, s / norm
        return Vec2(c, s)

    def predict(self, time: float) -> Vec2:
        # Flattened: forecast/level/trend, _heading_vector and _clamp_to_cap
        # inlined with identical arithmetic — the broker estimates every
        # silent node once per tick through this method.
        position = self._last_position
        t_fix = self._last_time
        if position is None or t_fix is None:
            raise RuntimeError("tracker has no fix yet; cannot predict")
        dt = max(time - t_fix, 0.0)
        sp = self._speed
        if dt == 0.0 or sp._n == 0:
            return position
        a = sp._alpha
        s1, s2 = sp._s1, sp._s2
        speed = max(2.0 * s1 - s2 + 1.0 * (a / (1.0 - a) * (s1 - s2)), 0.0)
        dc = self._dir_cos
        if speed <= 1e-9 or dc._n == 0:
            return position
        a = dc._alpha
        s1, s2 = dc._s1, dc._s2
        c = 2.0 * s1 - s2 + 1.0 * (a / (1.0 - a) * (s1 - s2))
        ds = self._dir_sin
        a = ds._alpha
        s1, s2 = ds._s1, ds._s2
        s = 2.0 * s1 - s2 + 1.0 * (a / (1.0 - a) * (s1 - s2))
        norm = math.hypot(c, s)
        if norm <= 1e-9:
            return position
        if norm > 1.0:
            c, s = c / norm, s / norm
        k = speed * dt
        px = position.x + c * k
        py = position.y + s * k
        cap = self._displacement_cap
        if cap is None:
            return Vec2(px, py)
        ox = px - position.x
        oy = py - position.y
        distance = math.hypot(ox, oy)
        if distance <= cap:
            return Vec2(px, py)
        scale = cap / distance
        return Vec2(position.x + ox * scale, position.y + oy * scale)


class VelocityComponentTracker(LocationTracker):
    """Smooths the velocity's x/y components instead of speed/direction.

    Mathematically close to :class:`BrownTracker` but free of angle
    unwrapping; included as an estimator-design ablation.
    """

    _state_kind = "velocity"

    def __init__(self, alpha: float = 0.4) -> None:
        super().__init__()
        self._vx = BrownDoubleExponentialSmoothing(alpha)
        self._vy = BrownDoubleExponentialSmoothing(alpha)

    def _extra_state(self) -> dict:
        return {"vx": self._vx.state_dict(), "vy": self._vy.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._vx.load_state(state["vx"])
        self._vy.load_state(state["vy"])

    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        self._vx.update(velocity.x)
        self._vy.update(velocity.y)

    def predict(self, time: float) -> Vec2:
        t_fix, position = self._require_fix()
        dt = max(time - t_fix, 0.0)
        if dt == 0.0 or not self._vx.ready:
            return position
        return self._clamp_to_cap(
            position + Vec2(self._vx.forecast(1.0), self._vy.forecast(1.0)) * dt
        )


class _ScalarPairTracker(LocationTracker):
    """Shared machinery for trackers that smooth speed + direction.

    Direction is smoothed on its unit vector components, as in
    :class:`BrownTracker`.
    """

    def __init__(
        self, speed: _Smoother, dir_cos: _Smoother, dir_sin: _Smoother
    ) -> None:
        super().__init__()
        self._speed = speed
        self._dir_cos = dir_cos
        self._dir_sin = dir_sin

    def _extra_state(self) -> dict:
        return {
            "dir_cos": self._dir_cos.state_dict(),
            "dir_sin": self._dir_sin.state_dict(),
            "speed": self._speed.state_dict(),
        }

    def _load_extra_state(self, state: dict) -> None:
        self._dir_cos.load_state(state["dir_cos"])
        self._dir_sin.load_state(state["dir_sin"])
        self._speed.load_state(state["speed"])

    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        speed = velocity.norm()
        self._speed.update(speed)
        if speed > 1e-9:
            unit = velocity / speed
            self._dir_cos.update(unit.x)
            self._dir_sin.update(unit.y)

    def predict(self, time: float) -> Vec2:
        t_fix, position = self._require_fix()
        dt = max(time - t_fix, 0.0)
        if dt == 0.0 or not self._speed.ready or not self._dir_cos.ready:
            return position
        speed = max(self._speed.forecast(1.0), 0.0)
        c = self._dir_cos.forecast(1.0)
        s = self._dir_sin.forecast(1.0)
        norm = math.hypot(c, s)
        if speed <= 1e-9 or norm <= 1e-9:
            return position
        if norm > 1.0:
            c, s = c / norm, s / norm
        return self._clamp_to_cap(position + Vec2(c, s) * (speed * dt))


class SimpleSmoothingTracker(_ScalarPairTracker):
    """Single exponential smoothing on speed/direction (no trend)."""

    _state_kind = "simple"

    def __init__(self, alpha: float = 0.4) -> None:
        super().__init__(
            SimpleExponentialSmoothing(alpha),
            SimpleExponentialSmoothing(alpha),
            SimpleExponentialSmoothing(alpha),
        )


class HoltTracker(_ScalarPairTracker):
    """Holt's linear method on speed/direction."""

    _state_kind = "holt"

    def __init__(self, alpha: float = 0.4, beta: float = 0.2) -> None:
        super().__init__(
            HoltLinearSmoothing(alpha, beta),
            HoltLinearSmoothing(alpha, beta),
            HoltLinearSmoothing(alpha, beta),
        )


_TRACKER_CLASSES: dict[str, type[LocationTracker]] = {
    "last_known": LastKnownTracker,
    "brown": BrownTracker,
    "velocity": VelocityComponentTracker,
    "simple": SimpleSmoothingTracker,
    "holt": HoltTracker,
}


def tracker_from_state(state: dict) -> LocationTracker:
    """Rebuild a tracker from a :meth:`LocationTracker.state_dict` dict."""
    kind = state.get("kind")
    cls = _TRACKER_CLASSES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(f"unknown tracker state kind: {kind!r}")
    tracker = cls()
    tracker.load_state(state)
    return tracker
