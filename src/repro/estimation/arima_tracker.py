"""An ARIMA-based location tracker — the estimator the paper rejects.

The paper (§3.3): "ARIMA can estimate precisely, but it needs a massive
dataset to estimate and it is hard to update parameters."  This tracker
makes that concrete: it keeps a window of position fixes per coordinate
and refits ARIMA(p, d, 0) whenever a prediction is requested.  Accuracy is
comparable to Brown's smoothing on linear movement; the per-prediction
cost is orders of magnitude higher (see ``bench_ablation_estimator``).
"""

from __future__ import annotations

import numpy as np

from repro.estimation.arima import ArimaModel
from repro.estimation.tracker import LocationTracker
from repro.geometry import Vec2

__all__ = ["ArimaTracker"]


class ArimaTracker(LocationTracker):
    """Refit-per-prediction ARIMA(p, d, 0) on each coordinate."""

    def __init__(self, p: int = 1, d: int = 1, window: int = 64) -> None:
        super().__init__()
        if window < ArimaModel(p=p, d=d).min_observations():
            raise ValueError(
                f"window {window} too small for ARIMA({p},{d},0)"
            )
        self._p = p
        self._d = d
        self._window = window
        self._xs: list[float] = []
        self._ys: list[float] = []

    @property
    def observations_buffered(self) -> int:
        """Fixes currently in the refit window."""
        return len(self._xs)

    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        self._xs.append(position.x)
        self._ys.append(position.y)
        if len(self._xs) > self._window:
            self._xs.pop(0)
            self._ys.pop(0)

    def predict(self, time: float) -> Vec2:
        t_fix, position = self._require_fix()
        if len(self._xs) < ArimaModel(p=self._p, d=self._d).min_observations():
            return position
        horizon = max(int(round(time - t_fix)), 1)
        try:
            x = (
                ArimaModel(p=self._p, d=self._d)
                .fit(np.asarray(self._xs))
                .forecast(horizon)[-1]
            )
            y = (
                ArimaModel(p=self._p, d=self._d)
                .fit(np.asarray(self._ys))
                .forecast(horizon)[-1]
            )
        except (ValueError, np.linalg.LinAlgError):
            return position
        if not (np.isfinite(x) and np.isfinite(y)):
            return position
        return self._clamp_to_cap(Vec2(float(x), float(y)))
