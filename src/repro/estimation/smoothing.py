"""Exponential smoothing estimators.

The paper's Location Estimator uses **Brown's double exponential smoothing**
(McClave, Benson & Sincich, "Statistics for Business and Economics"),
chosen over ARIMA because it is cheap to update online and needs no training
dataset.  We also provide simple (single) smoothing and Holt's linear method
for the estimator ablation.

Every smoother exposes ``state_dict()`` / ``load_state()``: the complete
internal state as plain JSON scalars, restored bit-exactly (floats
round-trip through Python's shortest-repr ``json`` encoding).  The
serving layer's shard snapshots (``repro.serving.durability``) lean on
this to make broker estimator state reconstructible after a crash.
"""

from __future__ import annotations

import abc

from repro.util.validation import check_in_range

__all__ = [
    "SimpleExponentialSmoothing",
    "BrownDoubleExponentialSmoothing",
    "HoltLinearSmoothing",
]


class _Smoother(abc.ABC):
    """Common interface: feed observations, forecast h steps ahead."""

    def __init__(self) -> None:
        self._n = 0

    def state_dict(self) -> dict:
        """Full internal state as JSON-safe scalars."""
        raise NotImplementedError

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` bit-exactly."""
        raise NotImplementedError

    @property
    def n_observations(self) -> int:
        """How many observations have been absorbed."""
        return self._n

    @property
    def ready(self) -> bool:
        """True once at least one observation has been absorbed."""
        return self._n > 0

    def update(self, value: float) -> float:
        """Absorb one observation; returns the current smoothed level."""
        self._absorb(float(value))
        self._n += 1
        return self.level

    @abc.abstractmethod
    def _absorb(self, value: float) -> None: ...

    @property
    @abc.abstractmethod
    def level(self) -> float:
        """Current smoothed level estimate."""

    @abc.abstractmethod
    def forecast(self, horizon: float = 1.0) -> float:
        """Forecast the series *horizon* steps ahead."""


class SimpleExponentialSmoothing(_Smoother):
    """Single exponential smoothing: ``S_t = a*x_t + (1-a)*S_{t-1}``.

    Forecasts are flat (no trend); suitable for nearly-stationary series.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        self._alpha = check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
        self._s = 0.0

    @property
    def alpha(self) -> float:
        """The smoothing constant."""
        return self._alpha

    def state_dict(self) -> dict:
        """Full internal state as JSON-safe scalars."""
        return {"alpha": self._alpha, "n": self._n, "s": self._s}

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` bit-exactly."""
        self._alpha = float(state["alpha"])
        self._n = int(state["n"])
        self._s = float(state["s"])

    def _absorb(self, value: float) -> None:
        if self._n == 0:
            self._s = value
        else:
            self._s = self._alpha * value + (1.0 - self._alpha) * self._s

    @property
    def level(self) -> float:
        return self._s

    def forecast(self, horizon: float = 1.0) -> float:
        return self._s


class BrownDoubleExponentialSmoothing(_Smoother):
    """Brown's double exponential smoothing (linear trend, one constant).

    Maintains the singly- and doubly-smoothed statistics ``S'`` and ``S''``::

        S'_t  = a*x_t  + (1-a)*S'_{t-1}
        S''_t = a*S'_t + (1-a)*S''_{t-1}

    from which level ``a_t = 2S' - S''`` and trend
    ``b_t = a/(1-a) * (S' - S'')``; the h-step forecast is ``a_t + h*b_t``.
    This is the estimator the paper's Location Estimator uses for velocity
    and direction.
    """

    def __init__(self, alpha: float = 0.4) -> None:
        super().__init__()
        self._alpha = check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
        self._s1 = 0.0
        self._s2 = 0.0

    @property
    def alpha(self) -> float:
        """The smoothing constant."""
        return self._alpha

    def state_dict(self) -> dict:
        """Full internal state as JSON-safe scalars."""
        return {"alpha": self._alpha, "n": self._n, "s1": self._s1, "s2": self._s2}

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` bit-exactly."""
        self._alpha = float(state["alpha"])
        self._n = int(state["n"])
        self._s1 = float(state["s1"])
        self._s2 = float(state["s2"])

    def update(self, value: float) -> float:
        # Concrete override of _Smoother.update: Brown smoothers absorb one
        # observation per LU per component, so the extra _absorb dispatch and
        # level property hop are measurable.  Arithmetic matches _absorb.
        value = float(value)
        if self._n == 0:
            self._s1 = value
            self._s2 = value
        else:
            a = self._alpha
            self._s1 = a * value + (1.0 - a) * self._s1
            self._s2 = a * self._s1 + (1.0 - a) * self._s2
        self._n += 1
        return 2.0 * self._s1 - self._s2

    def _absorb(self, value: float) -> None:
        if self._n == 0:
            self._s1 = value
            self._s2 = value
        else:
            a = self._alpha
            self._s1 = a * value + (1.0 - a) * self._s1
            self._s2 = a * self._s1 + (1.0 - a) * self._s2

    @property
    def level(self) -> float:
        return 2.0 * self._s1 - self._s2

    @property
    def trend(self) -> float:
        """Estimated per-step slope of the series."""
        if self._n == 0:
            return 0.0
        a = self._alpha
        return a / (1.0 - a) * (self._s1 - self._s2)

    def forecast(self, horizon: float = 1.0) -> float:
        return self.level + horizon * self.trend


class HoltLinearSmoothing(_Smoother):
    """Holt's linear method: separate level/trend smoothing constants."""

    def __init__(self, alpha: float = 0.4, beta: float = 0.2) -> None:
        super().__init__()
        self._alpha = check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
        self._beta = check_in_range(beta, "beta", 0.0, 1.0, inclusive=False)
        self._level = 0.0
        self._trend = 0.0

    def state_dict(self) -> dict:
        """Full internal state as JSON-safe scalars."""
        return {
            "alpha": self._alpha,
            "beta": self._beta,
            "level": self._level,
            "n": self._n,
            "trend": self._trend,
        }

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` bit-exactly."""
        self._alpha = float(state["alpha"])
        self._beta = float(state["beta"])
        self._level = float(state["level"])
        self._n = int(state["n"])
        self._trend = float(state["trend"])

    def _absorb(self, value: float) -> None:
        if self._n == 0:
            self._level = value
            self._trend = 0.0
        else:
            prev_level = self._level
            self._level = self._alpha * value + (1.0 - self._alpha) * (
                self._level + self._trend
            )
            self._trend = self._beta * (self._level - prev_level) + (
                1.0 - self._beta
            ) * self._trend

    @property
    def level(self) -> float:
        return self._level

    @property
    def trend(self) -> float:
        """Estimated per-step slope of the series."""
        return self._trend

    def forecast(self, horizon: float = 1.0) -> float:
        return self._level + horizon * self._trend
