"""A constant-velocity Kalman filter tracker.

The canonical dead-reckoning estimator for moving targets, included as the
strongest reasonable alternative to the paper's Brown smoothing (ablation
A3).  State is ``[x, y, vx, vy]`` with a white-acceleration process model;
measurements are the LU's position and velocity.
"""

from __future__ import annotations

import numpy as np

from repro.estimation.tracker import LocationTracker
from repro.geometry import Vec2
from repro.util.validation import check_positive

__all__ = ["KalmanTracker"]


class KalmanTracker(LocationTracker):
    """Linear Kalman filter over position + velocity.

    ``process_noise`` (sigma_a, m/s^2) sets how quickly the filter expects
    velocity to wander; ``position_noise`` / ``velocity_noise`` are the
    measurement standard deviations of the LU's fix.
    """

    def __init__(
        self,
        *,
        process_noise: float = 0.8,
        position_noise: float = 0.5,
        velocity_noise: float = 0.5,
    ) -> None:
        super().__init__()
        check_positive(process_noise, "process_noise")
        check_positive(position_noise, "position_noise")
        check_positive(velocity_noise, "velocity_noise")
        self._sigma_a = process_noise
        self._r = np.diag(
            [
                position_noise**2,
                position_noise**2,
                velocity_noise**2,
                velocity_noise**2,
            ]
        )
        self._state = np.zeros(4)
        self._cov = np.eye(4) * 1e3
        self._initialised = False

    # -- model matrices --------------------------------------------------------
    @staticmethod
    def _transition(dt: float) -> np.ndarray:
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        return f

    def _process_cov(self, dt: float) -> np.ndarray:
        """White-acceleration Q for a 2-D constant-velocity model."""
        q11 = dt**4 / 4.0
        q13 = dt**3 / 2.0
        q33 = dt**2
        q = np.array(
            [
                [q11, 0.0, q13, 0.0],
                [0.0, q11, 0.0, q13],
                [q13, 0.0, q33, 0.0],
                [0.0, q13, 0.0, q33],
            ]
        )
        return q * self._sigma_a**2

    def _predict_state(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        f = self._transition(dt)
        return f @ self._state, f @ self._cov @ f.T + self._process_cov(dt)

    # -- tracker interface --------------------------------------------------------
    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        z = np.array([position.x, position.y, velocity.x, velocity.y])
        if not self._initialised:
            self._state = z.copy()
            self._cov = self._r.copy()
            self._initialised = True
            return
        dt = max(time - (self._last_time if self._last_time is not None else time), 0.0)
        state, cov = self._predict_state(dt) if dt > 0 else (self._state, self._cov)
        # Measurement model H = I (we observe the full state).
        innovation = z - state
        s = cov + self._r
        gain = cov @ np.linalg.inv(s)
        self._state = state + gain @ innovation
        self._cov = (np.eye(4) - gain) @ cov

    def predict(self, time: float) -> Vec2:
        t_fix, position = self._require_fix()
        if not self._initialised:
            return position
        dt = max(time - t_fix, 0.0)
        if dt == 0.0:
            # At the fix time the answer is the *filtered* state — the
            # whole point of the filter is that it beats the raw fix.
            state = self._state
        else:
            state, _ = self._predict_state(dt)
        return self._clamp_to_cap(Vec2(float(state[0]), float(state[1])))

    @property
    def velocity_estimate(self) -> Vec2:
        """The filter's current velocity estimate."""
        return Vec2(float(self._state[2]), float(self._state[3]))
