"""Error metrics.

The paper measures location error with RMSE (Ghilani & Wolf):
``sqrt(sum((RL_i - EL_i)^2) / n)`` where RL is the real and EL the
estimated location over the n mobile nodes.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["rmse", "mae", "max_error"]


def _as_errors(errors: Iterable[float]) -> np.ndarray:
    if isinstance(errors, np.ndarray):
        arr = np.asarray(errors, dtype=float)
    else:
        arr = np.asarray(list(errors), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute a metric over zero errors")
    if np.any(arr < 0):
        raise ValueError("errors must be non-negative distances")
    return arr


def rmse(errors: Iterable[float]) -> float:
    """Root mean square of per-node distance errors."""
    arr = _as_errors(errors)
    return float(np.sqrt(np.mean(arr**2)))


def mae(errors: Iterable[float]) -> float:
    """Mean absolute error of per-node distance errors."""
    return float(np.mean(_as_errors(errors)))


def max_error(errors: Iterable[float]) -> float:
    """Worst-case per-node distance error."""
    return float(np.max(_as_errors(errors)))
