"""Map-matched estimation: snap predictions onto the road network.

The broker knows the campus map and each LU's region; a node last seen on
a road is overwhelmingly likely still on it.  Wrapping any base tracker
with a map-matching step projects off-road predictions onto the serving
road's centerline, cutting the cross-track component of the error.  (For
nodes last seen in a building the prediction is clamped into the
building's bounds instead.)

This is a beyond-paper extension demonstrating how the broker could exploit
world knowledge the ADF already transmits for free (the LU's region tag).
"""

from __future__ import annotations

from repro.campus import Campus, RegionKind
from repro.estimation.tracker import LocationTracker
from repro.geometry import Vec2

__all__ = ["MapMatchedTracker"]


class MapMatchedTracker(LocationTracker):
    """Decorates a base tracker with region-aware prediction projection."""

    def __init__(self, base: LocationTracker, campus: Campus) -> None:
        super().__init__()
        self._base = base
        self._campus = campus
        self._last_region: str | None = None

    def set_region(self, region_id: str | None) -> None:
        """Record the region tag of the most recent LU."""
        self._last_region = region_id if region_id else None

    def update(
        self,
        time: float,
        position: Vec2,
        velocity: Vec2,
        *,
        displacement_cap: float | None = None,
        region_id: str | None = None,
    ) -> None:
        """Absorb an LU; *region_id* enables the map-matching step."""
        super().update(
            time, position, velocity, displacement_cap=displacement_cap
        )
        self._base.update(
            time, position, velocity, displacement_cap=displacement_cap
        )
        if region_id is not None:
            self.set_region(region_id)

    def _observe(self, time: float, position: Vec2, velocity: Vec2) -> None:
        pass  # the base tracker holds the estimation state

    def predict(self, time: float) -> Vec2:
        self._require_fix()
        raw = self._base.predict(time)
        if self._last_region is None:
            return raw
        try:
            region = self._campus.region(self._last_region)
        except KeyError:
            return raw
        if region.kind is RegionKind.ROAD and region.centerline is not None:
            # Project onto the road's centerline polyline.
            best = raw
            best_d = float("inf")
            waypoints = list(region.centerline.waypoints)
            from repro.geometry.shapes import Segment

            for a, b in zip(waypoints, waypoints[1:]):
                _, closest = Segment(a, b).project(raw)
                d = closest.distance_to(raw)
                if d < best_d:
                    best, best_d = closest, d
            return best
        # Buildings: clamp into the region's bounds.
        return region.bounds.clamp(raw)
