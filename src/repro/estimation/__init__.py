"""Location estimation: the broker-side answer to filtered LUs (paper §3.3).

When the ADF suppresses a node's location updates, the grid broker predicts
the node's position from the updates it did receive.  The paper uses Brown's
double exponential smoothing on velocity and direction plus trigonometric
projection; ARIMA is discussed and rejected for its data requirements, so we
implement both (the ARIMA comparison is ablation A3).
"""

from repro.estimation.smoothing import (
    BrownDoubleExponentialSmoothing,
    HoltLinearSmoothing,
    SimpleExponentialSmoothing,
)
from repro.estimation.arima import ArimaModel, fit_ar_coefficients
from repro.estimation.arima_tracker import ArimaTracker
from repro.estimation.kalman import KalmanTracker
from repro.estimation.map_matched import MapMatchedTracker
from repro.estimation.tracker import (
    BrownTracker,
    HoltTracker,
    LastKnownTracker,
    LocationTracker,
    SimpleSmoothingTracker,
    VelocityComponentTracker,
    tracker_from_state,
)
from repro.estimation.metrics import mae, max_error, rmse

__all__ = [
    "SimpleExponentialSmoothing",
    "BrownDoubleExponentialSmoothing",
    "HoltLinearSmoothing",
    "ArimaModel",
    "ArimaTracker",
    "KalmanTracker",
    "MapMatchedTracker",
    "fit_ar_coefficients",
    "LocationTracker",
    "LastKnownTracker",
    "BrownTracker",
    "VelocityComponentTracker",
    "SimpleSmoothingTracker",
    "HoltTracker",
    "tracker_from_state",
    "rmse",
    "mae",
    "max_error",
]
