"""A small ARIMA(p, d, q) implementation.

The paper cites ARIMA (Bowerman & O'Connell) as the precise-but-heavy
alternative to exponential smoothing: "it needs a massive dataset to
estimate and it is hard to update parameters".  We implement enough of it to
run that comparison honestly (ablation A3): differencing, AR fitting via
Yule-Walker, optional MA terms via conditional-sum-of-squares with scipy,
and recursive forecasting with integration back to the original scale.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["fit_ar_coefficients", "ArimaModel"]


def fit_ar_coefficients(series: np.ndarray, order: int) -> np.ndarray:
    """Fit AR(*order*) coefficients with the Yule-Walker equations.

    Returns the ``phi`` vector such that
    ``x_t ≈ phi_1 x_{t-1} + ... + phi_p x_{t-p}``.
    """
    x = np.asarray(series, dtype=float)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if x.size <= order:
        raise ValueError(
            f"need more than {order} observations to fit AR({order}), got {x.size}"
        )
    x = x - x.mean()
    n = x.size
    # Biased autocovariance estimates gamma(0..order).
    gamma = np.array(
        [float(np.dot(x[: n - k], x[k:])) / n for k in range(order + 1)]
    )
    if gamma[0] <= 0:
        return np.zeros(order)
    r_matrix = np.array(
        [[gamma[abs(i - j)] for j in range(order)] for i in range(order)]
    )
    rhs = gamma[1 : order + 1]
    try:
        phi = np.linalg.solve(r_matrix, rhs)
    except np.linalg.LinAlgError:
        phi, *_ = np.linalg.lstsq(r_matrix, rhs, rcond=None)
    return phi


def _css_residuals(
    params: np.ndarray, x: np.ndarray, p: int, q: int
) -> np.ndarray:
    """Conditional-sum-of-squares residuals for ARMA(p, q) on centred data."""
    phi, theta = params[:p], params[p : p + q]
    n = x.size
    eps = np.zeros(n)
    for t in range(n):
        ar = sum(phi[i] * x[t - 1 - i] for i in range(p) if t - 1 - i >= 0)
        ma = sum(theta[j] * eps[t - 1 - j] for j in range(q) if t - 1 - j >= 0)
        eps[t] = x[t] - ar - ma
    return eps


class ArimaModel:
    """ARIMA(p, d, q) fit on a fixed training window.

    The model must be (re)fit whenever new data arrives — exactly the
    operational cost the paper holds against ARIMA.  :meth:`forecast`
    extrapolates ``h`` steps from the end of the training data.
    """

    def __init__(self, p: int = 2, d: int = 1, q: int = 0) -> None:
        if p < 0 or d < 0 or q < 0:
            raise ValueError(f"orders must be >= 0, got ({p}, {d}, {q})")
        if p == 0 and q == 0:
            raise ValueError("need at least one AR or MA term")
        self.p, self.d, self.q = p, d, q
        self._phi = np.zeros(p)
        self._theta = np.zeros(q)
        self._mean = 0.0
        self._train: np.ndarray | None = None
        self._diffed: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has been called successfully."""
        return self._train is not None

    def min_observations(self) -> int:
        """Fewest observations :meth:`fit` will accept."""
        return self.d + max(self.p, self.q) + 4

    def fit(self, series: np.ndarray) -> "ArimaModel":
        """Estimate parameters from *series*; returns ``self``."""
        x = np.asarray(series, dtype=float)
        if x.size < self.min_observations():
            raise ValueError(
                f"need >= {self.min_observations()} observations, got {x.size}"
            )
        diffed = np.diff(x, n=self.d) if self.d else x.copy()
        self._mean = float(diffed.mean())
        centred = diffed - self._mean
        if self.q == 0:
            self._phi = (
                fit_ar_coefficients(centred + self._mean, self.p)
                if self.p
                else np.zeros(0)
            )
        else:
            start = np.zeros(self.p + self.q)
            if self.p:
                start[: self.p] = fit_ar_coefficients(centred + self._mean, self.p)
            result = optimize.least_squares(
                _css_residuals,
                start,
                args=(centred, self.p, self.q),
                method="lm",
                max_nfev=200,
            )
            self._phi = result.x[: self.p]
            self._theta = result.x[self.p : self.p + self.q]
        self._train = x
        self._diffed = centred
        return self

    def forecast(self, horizon: int = 1) -> np.ndarray:
        """Forecast *horizon* future values on the original scale."""
        if not self.fitted:
            raise RuntimeError("fit() the model before forecasting")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        assert self._diffed is not None and self._train is not None
        history = list(self._diffed)
        eps = _css_residuals(
            np.concatenate([self._phi, self._theta]), self._diffed, self.p, self.q
        )
        eps_hist = list(eps)
        diffed_forecasts = []
        for _ in range(horizon):
            ar = sum(
                self._phi[i] * history[-1 - i]
                for i in range(self.p)
                if len(history) > i
            )
            ma = sum(
                self._theta[j] * eps_hist[-1 - j]
                for j in range(self.q)
                if len(eps_hist) > j
            )
            value = ar + ma
            history.append(value)
            eps_hist.append(0.0)  # future shocks have zero expectation
            diffed_forecasts.append(value + self._mean)
        return self._integrate(np.asarray(diffed_forecasts))

    def _integrate(self, diffed_forecasts: np.ndarray) -> np.ndarray:
        """Undo d rounds of differencing against the training tail."""
        assert self._train is not None
        if self.d == 0:
            return diffed_forecasts
        # Rebuild the chain of last values of each differencing level.
        levels = [self._train]
        for _ in range(self.d - 1):
            levels.append(np.diff(levels[-1]))
        out = diffed_forecasts
        for level in reversed(levels):
            out = np.cumsum(out) + level[-1]
        return out
