"""Tests for unit conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import HOUR, MINUTE, kmh_to_ms, ms_to_kmh


def test_kmh_to_ms_known_value():
    assert kmh_to_ms(36.0) == pytest.approx(10.0)


def test_ms_to_kmh_known_value():
    assert ms_to_kmh(10.0) == pytest.approx(36.0)


def test_vehicle_limit_from_paper():
    # The paper caps vehicles at 40 km/h ~ 11.1 m/s.
    assert kmh_to_ms(40.0) == pytest.approx(11.11, abs=0.01)


def test_constants():
    assert MINUTE == 60.0
    assert HOUR == 3600.0


@given(st.floats(min_value=-1e6, max_value=1e6))
def test_roundtrip(value):
    assert ms_to_kmh(kmh_to_ms(value)) == pytest.approx(value, abs=1e-6)
