"""Tests for deterministic named RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngRegistry, child_rng, spawn_seed


class TestChildRng:
    def test_same_seed_and_name_reproduce(self):
        a = child_rng(42, "mobility/mn-1")
        b = child_rng(42, "mobility/mn-1")
        assert np.allclose(a.random(10), b.random(10))

    def test_different_names_differ(self):
        a = child_rng(42, "stream-a")
        b = child_rng(42, "stream-b")
        assert not np.allclose(a.random(10), b.random(10))

    def test_different_seeds_differ(self):
        a = child_rng(1, "stream")
        b = child_rng(2, "stream")
        assert not np.allclose(a.random(10), b.random(10))

    def test_unicode_names_are_stable(self):
        a = child_rng(7, "ノード/一")
        b = child_rng(7, "ノード/一")
        assert a.random() == b.random()


class TestRngRegistry:
    def test_stream_is_cached(self):
        reg = RngRegistry(5)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_independent(self):
        reg = RngRegistry(5)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_seed_property(self):
        assert RngRegistry(99).seed == 99

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("42")  # type: ignore[arg-type]

    def test_two_registries_same_seed_agree(self):
        r1 = RngRegistry(3)
        r2 = RngRegistry(3)
        assert r1.stream("n").random() == r2.stream("n").random()

    def test_fork_namespaces_streams(self):
        reg = RngRegistry(11)
        forked = reg.fork("mobility")
        direct = reg.stream("mobility/walker")
        via_fork = forked.stream("walker")
        # Forked stream resolves to the same underlying named stream.
        assert direct is via_fork

    def test_nested_fork(self):
        reg = RngRegistry(11)
        deep = reg.fork("a").fork("b")
        assert deep.stream("c") is reg.stream("a/b/c")

    def test_fork_preserves_seed(self):
        reg = RngRegistry(21)
        assert reg.fork("sub").seed == 21


class TestSpawnSeed:
    def test_same_key_reproduces(self):
        assert spawn_seed(42, "sweep/a#rep0") == spawn_seed(42, "sweep/a#rep0")

    def test_distinct_keys_differ(self):
        seeds = {spawn_seed(42, f"sweep/cell#rep{i}") for i in range(50)}
        assert len(seeds) == 50

    def test_distinct_base_seeds_differ(self):
        assert spawn_seed(1, "k") != spawn_seed(2, "k")

    def test_spawned_seed_is_valid_registry_seed(self):
        RngRegistry(spawn_seed(42, "child"))

    def test_registry_method_matches_function(self):
        reg = RngRegistry(42)
        assert reg.spawn_seed("x") == spawn_seed(42, "x")

    def test_forked_registry_namespaces_spawn(self):
        reg = RngRegistry(42)
        sub = reg.fork("sub")
        assert sub.spawn_seed("x") == spawn_seed(42, "sub/x")
        assert sub.spawn_seed("x") != reg.spawn_seed("x")
