"""Tests for the append-only time series."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.timeseries import TimeSeries


class TestAppend:
    def test_append_and_len(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_times_must_be_non_decreasing(self):
        ts = TimeSeries()
        ts.append(5.0, 1.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            ts.append(4.0, 1.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_constructor_points(self):
        ts = TimeSeries([(0.0, 1.0), (1.0, 3.0)])
        assert ts.total() == 4.0

    def test_iteration_and_indexing(self):
        ts = TimeSeries([(0.0, 1.0), (2.0, 5.0)])
        assert list(ts) == [(0.0, 1.0), (2.0, 5.0)]
        assert ts[1] == (2.0, 5.0)


class TestStats:
    def test_total_and_mean(self):
        ts = TimeSeries([(0, 2.0), (1, 4.0)])
        assert ts.total() == 6.0
        assert ts.mean() == 3.0

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().mean()

    def test_total_of_empty_is_zero(self):
        assert TimeSeries().total() == 0.0

    def test_last(self):
        ts = TimeSeries([(0, 1.0), (3, 9.0)])
        assert ts.last() == (3.0, 9.0)

    def test_last_of_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()

    def test_is_empty(self):
        assert TimeSeries().is_empty()
        assert not TimeSeries([(0, 0)]).is_empty()


class TestTransforms:
    def test_cumulative(self):
        ts = TimeSeries([(0, 1.0), (1, 2.0), (2, 3.0)])
        assert list(ts.cumulative().values) == [1.0, 3.0, 6.0]

    def test_cumulative_preserves_times(self):
        ts = TimeSeries([(0, 1.0), (5, 2.0)])
        assert list(ts.cumulative().times) == [0.0, 5.0]

    def test_window(self):
        ts = TimeSeries([(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)])
        w = ts.window(1.0, 3.0)
        assert list(w.values) == [2.0, 3.0]

    def test_window_end_exclusive(self):
        ts = TimeSeries([(1, 2.0)])
        assert len(ts.window(0.0, 1.0)) == 0

    def test_window_invalid(self):
        with pytest.raises(ValueError):
            TimeSeries().window(2.0, 1.0)

    def test_bin_sum(self):
        ts = TimeSeries([(0.1, 1.0), (0.9, 1.0), (1.5, 2.0)])
        binned = ts.bin_sum(1.0, 3.0)
        assert list(binned.values) == [2.0, 2.0, 0.0]
        assert list(binned.times) == [0.0, 1.0, 2.0]

    def test_bin_sum_ignores_out_of_range(self):
        ts = TimeSeries([(5.0, 100.0)])
        assert TimeSeries(ts).bin_sum(1.0, 3.0).total() == 0.0

    def test_bin_sum_invalid_width(self):
        with pytest.raises(ValueError):
            TimeSeries().bin_sum(0.0, 10.0)


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_cumulative_last_equals_total(self, values):
        ts = TimeSeries()
        for i, v in enumerate(values):
            ts.append(float(i), v)
        _, last = ts.cumulative().last()
        assert np.isclose(last, ts.total())

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=99),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_bin_sum_conserves_mass(self, points):
        points.sort(key=lambda p: p[0])
        ts = TimeSeries(points)
        binned = ts.bin_sum(7.0, 100.0)
        assert np.isclose(binned.total(), ts.total())
