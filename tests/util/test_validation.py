"""Tests for the validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)


class TestCheckFinite:
    def test_passes_through(self):
        assert check_finite(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            check_finite(bad, "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="> 0"):
            check_positive(bad, "x")

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="lookahead"):
            check_positive(-1, "lookahead")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative(-0.01, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)
        assert check_in_range(0.5, "x", 0.0, 1.0, inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0.*1"):
            check_in_range(2.0, "x", 0.0, 1.0)
