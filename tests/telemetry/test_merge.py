"""Tests for cross-run telemetry snapshot merging."""

import pytest

from repro.telemetry import merge_snapshots


def snapshot(counter=1.0, gauge=2.0, hist=(3, 6.0, 1.0, 3.0)):
    count, total, lo, hi = hist
    return {
        "metrics": {
            "lu.sent": {"kind": "counter", "value": counter},
            "clusters.live": {"kind": "gauge", "value": gauge},
            "latency": {
                "kind": "histogram",
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
                "min": lo,
                "max": hi,
                "quantiles": {"0.5": 2.0},
                "buckets": [[1.0, 1]],
            },
        },
        "samples": {"clusters.live": {"times": [0.0], "values": [gauge]}},
        "spans": {"step": {"count": 2, "wall_total": 0.5, "sim_total": 4.0}},
        "events": {"counts": {"info": 3, "warn": 1}},
    }


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = merge_snapshots([snapshot(counter=1.0), snapshot(counter=4.0)])
        assert merged["metrics"]["lu.sent"]["value"] == 5.0
        assert merged["runs"] == 2

    def test_gauges_average(self):
        merged = merge_snapshots([snapshot(gauge=2.0), snapshot(gauge=4.0)])
        assert merged["metrics"]["clusters.live"]["value"] == 3.0

    def test_histograms_fold_count_sum_min_max(self):
        merged = merge_snapshots(
            [snapshot(hist=(3, 6.0, 1.0, 3.0)), snapshot(hist=(1, 10.0, 0.5, 10.0))]
        )
        latency = merged["metrics"]["latency"]
        assert latency["count"] == 4
        assert latency["sum"] == 16.0
        assert latency["mean"] == 4.0
        assert latency["min"] == 0.5
        assert latency["max"] == 10.0
        # Per-run quantile markers cannot be merged exactly; they're dropped.
        assert "quantiles" not in latency

    def test_spans_and_events_sum(self):
        merged = merge_snapshots([snapshot(), snapshot()])
        assert merged["spans"]["step"]["count"] == 4
        assert merged["spans"]["step"]["wall_total"] == 1.0
        assert merged["events"]["counts"] == {"info": 6, "warn": 2}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_snapshots([])

    def test_single_snapshot_passthrough_totals(self):
        merged = merge_snapshots([snapshot()])
        assert merged["runs"] == 1
        assert merged["metrics"]["lu.sent"]["value"] == 1.0

    def test_real_run_snapshots_merge(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.telemetry import TelemetryConfig

        config = ExperimentConfig(
            duration=3.0,
            dth_factors=(1.0,),
            telemetry=TelemetryConfig(enabled=True),
        )
        snaps = [run_experiment(config).telemetry for _ in range(2)]
        merged = merge_snapshots(snaps)
        assert merged["runs"] == 2
        assert merged["metrics"]
