"""Tests for counters, gauges, histograms and the registry."""

import json
import math

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    TelemetryError,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero(self, registry):
        assert registry.counter("c").value == 0.0

    def test_inc_default_one(self, registry):
        c = registry.counter("c")
        c.inc()
        c.inc()
        assert c.value == 2.0

    def test_inc_amount(self, registry):
        c = registry.counter("c")
        c.inc(5)
        assert c.value == 5.0

    def test_negative_inc_raises(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("c").inc(-1)

    def test_full_name_without_labels(self, registry):
        assert registry.counter("sim.events").full_name == "sim.events"

    def test_full_name_sorts_labels(self, registry):
        c = registry.counter("net.sent", zone="a", channel="x")
        assert c.full_name == "net.sent{channel=x,zone=a}"


class TestGauge:
    def test_set(self, registry):
        g = registry.gauge("g")
        g.set(7.5)
        assert g.value == 7.5

    def test_inc_dec(self, registry):
        g = registry.gauge("g")
        g.inc(3)
        g.dec(1)
        assert g.value == 2.0


class TestHistogram:
    def test_count_sum_min_max(self, registry):
        h = registry.histogram("h")
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(4.5)
        assert h.min == 0.5
        assert h.max == 2.5
        assert h.mean == pytest.approx(1.5)

    def test_bucket_counts_cumulative(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        counts = dict(h.bucket_counts())
        assert counts[1.0] == 1
        assert counts[2.0] == 2
        assert counts[math.inf] == 3

    def test_exact_quantiles_for_few_samples(self, registry):
        h = registry.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_p2_tracks_uniform_median(self, registry):
        h = registry.histogram("h")
        for i in range(1, 1001):
            h.observe(i / 1000.0)
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        assert h.quantile(0.9) == pytest.approx(0.9, abs=0.02)

    def test_snapshot_is_json_safe(self, registry):
        h = registry.histogram("h")
        h.observe(1.0)
        json.dumps(h.snapshot())


class TestP2Quantile:
    def test_deterministic(self):
        def run():
            q = P2Quantile(0.5)
            value = 0.0
            for i in range(500):
                value = (value * 1103515245 + 12345) % 1000
                q.observe(value / 1000.0)
            return q.value

        assert run() == run()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("c", a="1") is registry.counter("c", a="1")

    def test_different_labels_different_instruments(self, registry):
        assert registry.counter("c", a="1") is not registry.counter("c", a="2")

    def test_label_order_is_irrelevant(self, registry):
        assert registry.counter("c", a="1", b="2") is registry.counter(
            "c", b="2", a="1"
        )

    def test_kind_conflict_raises(self, registry):
        registry.counter("m")
        with pytest.raises(TelemetryError):
            registry.gauge("m")

    def test_value_map_scalars(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        h = registry.histogram("h")
        h.observe(9.0)
        values = registry.value_map()
        assert values["c"] == 2.0
        assert values["g"] == 1.5
        assert values["h"] == 1.0  # histograms sample their count

    def test_snapshot_sorted_and_json_safe(self, registry):
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)

    def test_instrument_types(self, registry):
        assert isinstance(registry.counter("c2"), Counter)
        assert isinstance(registry.gauge("g2"), Gauge)
        assert isinstance(registry.histogram("h2"), Histogram)
