"""Tests for the periodic metric sampler."""

import pytest

from repro.simkernel import Simulator
from repro.telemetry import MetricsRegistry, Sampler


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSampling:
    def test_samples_on_the_sim_grid(self, registry):
        sim = Simulator()
        counter = registry.counter("c")
        sampler = Sampler(registry, interval=2.0)
        sampler.install(sim, end=10.0)
        sim.schedule_every(1.0, counter.inc, end=10.0)
        sim.run()
        series = sampler.series_for("c")
        assert [t for t, _ in series] == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_histograms_sample_their_count(self, registry):
        h = registry.histogram("lat")
        h.observe(0.5)
        h.observe(1.5)
        sampler = Sampler(registry, interval=1.0)
        sampler.sample(3.0)
        assert sampler.series_for("lat")[0] == (3.0, 2.0)

    def test_bounded_schedule_lets_run_terminate(self, registry):
        # An unbounded periodic schedule would keep Simulator.run() alive
        # forever; install() bounds it by `end`, so run() must return.
        sim = Simulator()
        sampler = Sampler(registry, interval=1.0)
        sampler.install(sim, end=5.0)
        sim.run()
        assert sim.now == 5.0

    def test_double_install_raises(self, registry):
        sim = Simulator()
        sampler = Sampler(registry, interval=1.0)
        sampler.install(sim, end=5.0)
        with pytest.raises(RuntimeError):
            sampler.install(sim, end=5.0)

    def test_interval_must_be_positive(self, registry):
        with pytest.raises(ValueError):
            Sampler(registry, interval=0.0)


class TestDeterminism:
    def test_identical_runs_identical_samples(self):
        def run():
            registry = MetricsRegistry()
            sim = Simulator()
            gauge = registry.gauge("depth")
            state = {"v": 0.0}

            def work():
                state["v"] = (state["v"] * 7 + 3) % 11
                gauge.set(state["v"])

            sampler = Sampler(registry, interval=2.0)
            sampler.install(sim, end=20.0)
            sim.schedule_every(1.0, work, end=20.0)
            sim.run()
            return sampler.snapshot()

        assert run() == run()
