"""Tests for the bounded structured event log."""

import json

import pytest

from repro.telemetry import EventLog, Severity


class TestLogging:
    def test_record_fields(self):
        log = EventLog()
        record = log.warning("queue full", time=12.5, source="uplink", depth=256)
        assert record.time == 12.5
        assert record.severity is Severity.WARNING
        assert record.source == "uplink"
        assert record.fields == {"depth": 256}

    def test_helpers_map_to_severities(self):
        log = EventLog()
        assert log.debug("d").severity is Severity.DEBUG
        assert log.info("i").severity is Severity.INFO
        assert log.warning("w").severity is Severity.WARNING
        assert log.error("e").severity is Severity.ERROR

    def test_below_threshold_is_dropped(self):
        log = EventLog(min_severity=Severity.WARNING)
        assert log.info("chatty") is None
        assert log.warning("real") is not None
        assert log.total_logged == 1

    def test_counts_by_severity(self):
        log = EventLog()
        log.info("a")
        log.info("b")
        log.error("c")
        counts = log.counts_by_severity()
        assert counts["INFO"] == 2
        assert counts["ERROR"] == 1
        assert counts["DEBUG"] == 0


class TestRingBounds:
    def test_capacity_evicts_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.info(f"event {i}", time=float(i))
        assert len(log) == 3
        assert [r.message for r in log.records()] == [
            "event 2",
            "event 3",
            "event 4",
        ]
        assert log.total_logged == 5
        assert log.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_records_filtered_by_severity(self):
        log = EventLog()
        log.debug("fine")
        log.error("bad")
        assert [r.message for r in log.records(Severity.WARNING)] == ["bad"]


class TestSnapshot:
    def test_json_safe(self):
        log = EventLog(capacity=2)
        log.info("hello", time=1.0, source="x", extra="y")
        snap = log.snapshot()
        json.dumps(snap)
        assert snap["capacity"] == 2
        assert snap["records"][0]["severity"] == "INFO"
        assert snap["records"][0]["fields"] == {"extra": "y"}
