"""End-to-end: telemetry wired through a real experiment run."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment, run_experiment
from repro.experiments.io import result_to_dict
from repro.telemetry import TelemetryConfig


def small_config(**overrides):
    defaults = dict(
        duration=20.0,
        dth_factors=(1.0,),
        telemetry=TelemetryConfig(enabled=True, sample_interval=5.0),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def instrumented_result():
    return run_experiment(small_config())


class TestWiring:
    def test_disabled_run_has_no_snapshot(self):
        result = run_experiment(
            ExperimentConfig(duration=10.0, dth_factors=(1.0,))
        )
        assert result.telemetry is None

    def test_snapshot_sections(self, instrumented_result):
        snap = instrumented_result.telemetry
        assert set(snap) == {"metrics", "samples", "spans", "events"}

    def test_every_layer_reports(self, instrumented_result):
        layers = {
            name.split(".", 1)[0]
            for name in instrumented_result.telemetry["metrics"]
        }
        assert {"sim", "net", "broker", "adf"} <= layers

    def test_sim_step_spans_recorded(self, instrumented_result):
        spans = instrumented_result.telemetry["spans"]
        assert spans["sim.activity:experiment:step"]["count"] == 20

    def test_counts_match_lane_results(self, instrumented_result):
        metrics = instrumented_result.telemetry["metrics"]
        lane = instrumented_result.lanes["adf-1"]
        transmitted = metrics["adf.lu_transmitted{filter=adf(1av)}"]["value"]
        assert transmitted == lane.filter_summary["transmitted"]
        received = metrics["broker.lu_received{broker=adf-1/le-on}"]["value"]
        assert received == lane.total_lus

    def test_samples_ride_the_sim_grid(self, instrumented_result):
        samples = instrumented_result.telemetry["samples"]
        series = samples["sim.events_executed"]
        assert series["times"] == [5.0, 10.0, 15.0, 20.0]

    def test_snapshot_in_result_dict(self, instrumented_result):
        out = result_to_dict(instrumented_result)
        assert "telemetry" in out
        json.dumps(out["telemetry"])


class TestDeterminism:
    def test_same_seed_same_metrics_and_samples(self):
        def deterministic_sections():
            snap = run_experiment(small_config(duration=15.0)).telemetry
            return json.dumps(
                {"metrics": snap["metrics"], "samples": snap["samples"]},
                sort_keys=True,
            )

        assert deterministic_sections() == deterministic_sections()

    def test_different_seed_differs(self):
        a = run_experiment(small_config(duration=15.0, seed=1)).telemetry
        b = run_experiment(small_config(duration=15.0, seed=2)).telemetry
        assert a["metrics"] != b["metrics"]


class TestLaneAccessor:
    def test_lane_by_name(self):
        experiment = MobileGridExperiment(
            ExperimentConfig(duration=10.0, dth_factors=(1.0,))
        )
        assert experiment.lane("ideal") is experiment.lanes[0]
        assert experiment.lane("adf-1").name == "adf-1"

    def test_unknown_lane_raises_with_names(self):
        experiment = MobileGridExperiment(
            ExperimentConfig(duration=10.0, dth_factors=(1.0,))
        )
        with pytest.raises(KeyError, match="adf-1"):
            experiment.lane("nope")
