"""Disabled telemetry must be an inert no-op everywhere."""

import pytest

from repro.simkernel import Simulator
from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Severity,
    Telemetry,
    TelemetryConfig,
)


class TestFromConfig:
    def test_disabled_config_yields_the_shared_null(self):
        assert Telemetry.from_config(TelemetryConfig(enabled=False)) is NULL_TELEMETRY

    def test_none_yields_the_shared_null(self):
        assert Telemetry.from_config(None) is NULL_TELEMETRY

    def test_enabled_config_yields_live_telemetry(self):
        telemetry = Telemetry.from_config(TelemetryConfig(enabled=True))
        assert isinstance(telemetry, Telemetry)
        assert telemetry.enabled


class TestNullBehaviour:
    def test_enabled_flag(self):
        assert NullTelemetry().enabled is False

    def test_instruments_are_shared_noops(self):
        null = NULL_TELEMETRY
        c = null.counter("x", label="y")
        assert c is null.counter("z")
        assert c is null.gauge("g")
        c.inc()
        c.inc(100)
        c.dec()
        c.set(5)
        c.observe(1.0)
        assert c.value == 0.0

    def test_span_is_reusable_noop(self):
        null = NULL_TELEMETRY
        with null.span("a") as s:
            with null.span("b"):
                pass
        assert s is null.span("c")

    def test_event_and_snapshot(self):
        null = NULL_TELEMETRY
        null.event(Severity.ERROR, "ignored", source="test")
        assert null.snapshot() is None
        assert "disabled" in null.summary()

    def test_bind_is_inert(self):
        sim = Simulator()
        NULL_TELEMETRY.bind(sim, end=10.0)
        sim.run()  # nothing scheduled
        assert sim.now == 0.0


class TestConfigValidation:
    def test_defaults_disabled(self):
        assert TelemetryConfig().enabled is False

    def test_bad_interval_raises(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval=0.0)

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError):
            TelemetryConfig(event_log_capacity=0)


class TestSimulatorIntegration:
    def test_simulator_without_telemetry_runs_plain(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(1.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [1.0]

    def test_simulator_with_null_telemetry_runs_plain(self):
        sim = Simulator(telemetry=NULL_TELEMETRY)
        hits = []
        sim.schedule_at(1.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [1.0]
