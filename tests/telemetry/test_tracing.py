"""Tests for spans and the tracer."""

import json

import pytest

from repro.telemetry import Tracer


@pytest.fixture
def tracer():
    return Tracer()


class TestNesting:
    def test_depth_assigned_on_entry(self, tracer):
        with tracer.span("outer") as outer:
            assert outer.depth == 0
            with tracer.span("inner") as inner:
                assert inner.depth == 1
                assert tracer.active_depth == 2
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.active_depth == 0
        assert tracer.current() is None

    def test_exception_unwinds_stack(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.active_depth == 0
        assert tracer.stats_for("outer").count == 1
        assert tracer.stats_for("inner").count == 1


class TestTiming:
    def test_wall_clock_accumulates(self, tracer):
        for _ in range(3):
            with tracer.span("work"):
                sum(range(1000))
        stats = tracer.stats_for("work")
        assert stats.count == 3
        assert stats.wall_total > 0.0
        assert stats.wall_min <= stats.wall_mean <= stats.wall_max
        assert stats.wall_total == pytest.approx(stats.wall_mean * 3)

    def test_sim_clock_durations(self, tracer):
        clock = {"now": 10.0}
        tracer.set_sim_clock(lambda: clock["now"])
        with tracer.span("step"):
            clock["now"] = 14.0
        assert tracer.stats_for("step").sim_total == pytest.approx(4.0)

    def test_no_sim_clock_means_zero_sim_time(self, tracer):
        with tracer.span("step"):
            pass
        assert tracer.stats_for("step").sim_total == 0.0


class TestAggregation:
    def test_same_name_folds_together(self, tracer):
        for _ in range(5):
            with tracer.span("repeat"):
                pass
        assert tracer.stats_for("repeat").count == 5
        assert len(tracer.stats()) == 1

    def test_snapshot_sorted_and_json_safe(self, tracer):
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        snap = tracer.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"]["count"] == 1
        json.dumps(snap)
