"""benchmarks/compare.py: the regression gate CI and local runs share.

Loaded by path (benchmarks/ is not a package); exercises the ``main``
entry point the same way the CI step invokes it, with synthetic
pytest-benchmark JSON pairs.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", _REPO_ROOT / "benchmarks" / "compare.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare = _load_compare()


def _bench_json(path: Path, *, min_s: float, extra: dict) -> Path:
    payload = {
        "benchmarks": [
            {
                "name": "test_columnar_step_throughput_100k",
                "stats": {"min": min_s},
                "extra_info": extra,
            }
        ]
    }
    path.write_text(json.dumps(payload, sort_keys=True))
    return path


@pytest.fixture
def pair(tmp_path):
    def build(*, cand_min: float, cand_extra: dict) -> list[str]:
        base = _bench_json(
            tmp_path / "base.json",
            min_s=0.1,
            extra={"columnar_vs_object_speedup": 100.0, "nodes": 100_000},
        )
        cand = _bench_json(
            tmp_path / "cand.json", min_s=cand_min, extra=cand_extra
        )
        return [str(base), str(cand)]

    return build


class TestGateKeys:
    def test_clean_candidate_passes(self, pair):
        argv = pair(
            cand_min=0.1,
            cand_extra={"columnar_vs_object_speedup": 100.0, "nodes": 100_000},
        )
        assert compare.main(argv + ["--fail-on-regress", "1.25"]) == 0

    def test_speedup_drop_fails_even_with_gate_keys(self, pair, capsys):
        # The speedup is a rate: 100x -> 50x is a 2.0x regression.
        argv = pair(
            cand_min=0.1,
            cand_extra={"columnar_vs_object_speedup": 50.0, "nodes": 100_000},
        )
        args = ["--fail-on-regress", "1.25", "--gate-keys", "*_speedup"]
        assert compare.main(argv + args) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_gate_keys_ignores_timing_regression(self, pair):
        # 3x slower wall clock: fails the plain gate, passes the narrowed
        # one — CI hardware differs from the baseline recorder's.
        argv = pair(
            cand_min=0.3,
            cand_extra={"columnar_vs_object_speedup": 100.0, "nodes": 100_000},
        )
        assert compare.main(argv + ["--fail-on-regress", "1.25"]) == 1
        assert (
            compare.main(
                argv
                + ["--fail-on-regress", "1.25", "--gate-keys", "*_speedup"]
            )
            == 0
        )

    def test_gate_keys_ignores_other_extra_info(self, pair):
        # A nodes-count growth is a >1 "cost" ratio but not a *_speedup
        # key; narrowed gate stays green, the full extra_info gate trips.
        argv = pair(
            cand_min=0.1,
            cand_extra={"columnar_vs_object_speedup": 100.0, "nodes": 200_000},
        )
        assert compare.main(argv + ["--fail-on-regress", "1.25"]) == 1
        assert (
            compare.main(
                argv
                + ["--fail-on-regress", "1.25", "--gate-keys", "*_speedup"]
            )
            == 0
        )

    def test_report_only_without_threshold(self, pair, capsys):
        argv = pair(
            cand_min=0.5,
            cand_extra={"columnar_vs_object_speedup": 10.0, "nodes": 100_000},
        )
        assert compare.main(argv) == 0
        out = capsys.readouterr().out
        assert "columnar_vs_object_speedup" in out


class TestRecoveryKeys:
    def test_recovery_s_is_a_cost_key(self):
        assert not compare.is_rate_key("wal_recovery_s")
        assert not compare.is_rate_key("crash_recovery_s")
        assert compare.is_rate_key("msgs_per_s")
        assert compare.is_rate_key("columnar_vs_object_speedup")

    def test_slower_recovery_regresses_upward(self, tmp_path, capsys):
        # 2ms -> 6ms recovery is a 3.0x regression even though the raw
        # number is "small"; the polarity must not flip.
        base = _bench_json(
            tmp_path / "base.json",
            min_s=0.1,
            extra={"wal_recovery_s": 0.002},
        )
        cand = _bench_json(
            tmp_path / "cand.json",
            min_s=0.1,
            extra={"wal_recovery_s": 0.006},
        )
        argv = [str(base), str(cand), "--fail-on-regress", "1.25"]
        assert compare.main(argv) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_faster_recovery_passes(self, tmp_path):
        base = _bench_json(
            tmp_path / "base.json",
            min_s=0.1,
            extra={"wal_recovery_s": 0.006},
        )
        cand = _bench_json(
            tmp_path / "cand.json",
            min_s=0.1,
            extra={"wal_recovery_s": 0.002},
        )
        argv = [str(base), str(cand), "--fail-on-regress", "1.25"]
        assert compare.main(argv) == 0


class TestCommittedBaseline:
    def test_committed_baseline_has_the_gated_key(self):
        """CI's --gate-keys '*_speedup' must have something to gate."""
        data = json.loads((_REPO_ROOT / "BENCH_simulation.json").read_text())
        keys = {
            key
            for bench in data["benchmarks"]
            for key in bench.get("extra_info", {})
        }
        assert "columnar_vs_object_speedup" in keys
