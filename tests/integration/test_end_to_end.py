"""End-to-end integration: the complete stack, off the beaten path."""

import pytest

from repro import (
    AdaptiveDistanceFilter,
    AdfConfig,
    BrokerConfig,
    GridBroker,
    default_campus,
)
from repro.core.distance_filter import FilterDecision
from repro.geometry import Vec2
from repro.mobility import ItineraryModel, MobileNode, tom_itinerary
from repro.mobility.population import build_population, table1_spec
from repro.network.messages import LocationUpdate
from repro.util.rng import RngRegistry


class TestTomThroughFullStack:
    """Tom's itinerary driving ADF + broker directly (no harness)."""

    @pytest.fixture(scope="class")
    def run(self):
        campus = default_campus()
        rng = RngRegistry(3)
        model = ItineraryModel(campus, tom_itinerary(compressed=True), rng.stream("tom"))
        tom = MobileNode("tom", model)
        adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=1.0))
        broker = GridBroker(BrokerConfig(use_location_estimator=True))
        errors = []
        sent = 0
        t = 0.0
        while not model.finished and t < 36000:
            t += 1.0
            sample = tom.advance(1.0)
            update = LocationUpdate(
                sender="tom",
                timestamp=t,
                node_id="tom",
                position=sample.position,
                velocity=sample.velocity,
                region_id="",
            )
            if adf.process(update) is FilterDecision.TRANSMIT:
                from dataclasses import replace

                broker.receive_update(
                    replace(update, dth=adf.dth_of("tom"))
                )
                sent += 1
            adf.tick(t)
            broker.tick(t)
            believed = broker.location_db.position_of("tom")
            if believed is not None:
                errors.append(tom.position.distance_to(believed))
        return model, sent, t, errors

    def test_itinerary_completes(self, run):
        model, *_ = run
        assert model.finished

    def test_traffic_reduced(self, run):
        _, sent, t, _ = run
        assert sent < 0.8 * t

    def test_error_stays_bounded(self, run):
        *_, errors = run
        assert max(errors) < 25.0

    def test_mean_error_small(self, run):
        *_, errors = run
        assert sum(errors) / len(errors) < 3.0


class TestPopulationCoverage:
    def test_all_nodes_stay_on_campus(self):
        campus = default_campus()
        nodes = build_population(campus, table1_spec(), RngRegistry(5))
        bounds_min, bounds_max = Vec2(-50, -50), Vec2(700, 600)
        for _ in range(60):
            for node in nodes:
                p = node.advance(1.0).position
                assert bounds_min.x <= p.x <= bounds_max.x
                assert bounds_min.y <= p.y <= bounds_max.y

    def test_building_nodes_stay_in_their_building(self):
        campus = default_campus()
        nodes = build_population(campus, table1_spec(), RngRegistry(5))
        indoor = [n for n in nodes if n.home_region.startswith("B")]
        for _ in range(40):
            for node in indoor:
                node.advance(1.0)
        for node in indoor:
            region = campus.region(node.home_region)
            assert region.contains(node.position, tol=1.0)

    def test_speeds_respect_table1_bands(self):
        campus = default_campus()
        nodes = build_population(campus, table1_spec(), RngRegistry(5))
        for _ in range(30):
            for node in nodes:
                node.advance(1.0)
                if node.home_region.startswith("R"):
                    assert node.speed <= 10.0 + 1e-6
                else:
                    assert node.speed <= 1.5 + 1e-6
