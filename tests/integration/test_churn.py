"""Node churn: MNs leaving and rejoining the grid (paper: disconnectivity)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AdaptiveDistanceFilter, AdfConfig, FilterDecision
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate


def lu(node, t, x, vx=2.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(vx, 0.0),
        region_id="R1",
    )


class TestForget:
    def test_forget_clears_all_state(self):
        adf = AdaptiveDistanceFilter(AdfConfig())
        for t in range(10):
            adf.process(lu("n", float(t), 2.0 * t))
        assert adf.label_of("n") is not None
        adf.forget("n")
        assert adf.label_of("n") is None
        assert adf.cluster_manager.cluster_of("n") is None
        assert adf.distance_filter.last_transmitted("n") is None

    def test_returning_node_transmits_first_lu(self):
        adf = AdaptiveDistanceFilter(AdfConfig())
        for t in range(10):
            adf.process(lu("n", float(t), 2.0 * t))
        adf.forget("n")
        decision = adf.process(lu("n", 100.0, 20.0, vx=0.0))
        assert decision is FilterDecision.TRANSMIT

    def test_forget_unknown_is_noop(self):
        AdaptiveDistanceFilter(AdfConfig()).forget("ghost")

    def test_forget_does_not_disturb_others(self):
        adf = AdaptiveDistanceFilter(AdfConfig())
        for t in range(10):
            adf.process(lu("a", float(t), 2.0 * t))
            adf.process(lu("b", float(t), 2.0 * t + 100))
        adf.forget("a")
        assert adf.label_of("b") is not None
        assert adf.cluster_manager.cluster_of("b") is not None

    def test_cluster_shrinks_on_forget(self):
        adf = AdaptiveDistanceFilter(AdfConfig())
        for t in range(10):
            adf.process(lu("a", float(t), 2.0 * t))
            adf.process(lu("b", float(t), 2.0 * t + 100))
        cluster = adf.cluster_manager.cluster_of("b")
        before = len(cluster)
        adf.forget("a")
        assert len(adf.cluster_manager.cluster_of("b")) == before - 1


class TestChurnCycle:
    def test_many_leave_join_cycles_do_not_leak(self):
        adf = AdaptiveDistanceFilter(AdfConfig())
        for cycle in range(20):
            base = cycle * 100.0
            for t in range(5):
                adf.process(lu("churner", base + t, 2.0 * t))
            adf.forget("churner")
        assert adf.label_of("churner") is None
        assert len(adf.classifier.node_ids()) == 0
        assert adf.cluster_manager.clusterer.cluster_count() == 0

    def test_reconstruct_after_churn(self):
        adf = AdaptiveDistanceFilter(AdfConfig())
        for t in range(10):
            adf.process(lu("stayer", float(t), 2.0 * t))
            adf.process(lu("leaver", float(t), 3.0 * t))
        adf.forget("leaver")
        count = adf.cluster_manager.reconstruct()
        assert count >= 1
        assert adf.cluster_manager.cluster_of("stayer") is not None
        assert adf.cluster_manager.cluster_of("leaver") is None


class TestBoundedStalenessInvariant:
    """The ADF's core correctness property, checked adversarially."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-500, max_value=500),
            min_size=2,
            max_size=80,
        )
    )
    def test_broker_view_always_within_current_dth(self, xs):
        """At any instant, the true position is within the decision-time
        DTH of the last transmitted fix (or a transmit happens right now).

        The filter classifies and re-clusters on the incoming update before
        gating it, so the binding threshold is the one in force *after*
        processing (``dth_of`` queried immediately, with no intervening
        recluster tick).
        """
        adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=1.0))
        last_tx: Vec2 | None = None
        prev_x = xs[0]
        for t, x in enumerate(xs):
            vx = x - prev_x
            prev_x = x
            update = lu("n", float(t), x, vx=vx)
            decision = adf.process(update)
            dth_used = adf.dth_of("n")
            if decision is FilterDecision.TRANSMIT:
                last_tx = update.position
            else:
                assert last_tx is not None
                assert update.position.distance_to(last_tx) <= dth_used + 1e-9
