"""Failure injection across the stack: loss, outages, reordering."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.harness import MobileGridExperiment


class TestChannelLoss:
    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for loss in (0.0, 0.3):
            out[loss] = run_experiment(
                ExperimentConfig(
                    duration=40.0, dth_factors=(1.0,), channel_loss=loss
                )
            )
        return out

    def test_loss_reduces_delivered_traffic(self, runs):
        assert runs[0.3].ideal.total_lus < runs[0.0].ideal.total_lus

    def test_loss_rate_approximately_applied(self, runs):
        delivered = runs[0.3].ideal.total_lus
        expected = runs[0.0].ideal.total_lus * 0.7
        assert delivered == pytest.approx(expected, rel=0.1)

    def test_error_grows_under_loss_but_stays_bounded(self, runs):
        clean = runs[0.0].lanes["adf-1"].mean_rmse(with_le=True)
        lossy = runs[0.3].lanes["adf-1"].mean_rmse(with_le=True)
        assert lossy > clean
        assert lossy < 15.0

    def test_le_still_helps_under_loss(self, runs):
        lane = runs[0.3].lanes["adf-1"]
        assert lane.mean_rmse(with_le=True) < lane.mean_rmse(with_le=False)

    def test_broker_keeps_estimating_through_loss(self, runs):
        lane = runs[0.3].lanes["adf-1"]
        # More silence means more estimated records than in a clean run.
        clean_est = runs[0.0].lanes["adf-1"]
        del clean_est  # comparison via rmse above; here check counts exist
        assert lane.total_lus > 0


class TestGatewayOutage:
    @pytest.fixture(scope="class")
    def outage_run(self):
        config = ExperimentConfig(duration=60.0, dth_factors=(1.0,))
        experiment = MobileGridExperiment(config)
        lane = experiment.lanes[1]
        for region_id in ("B4", "B6"):
            experiment.sim.schedule_at(20.0, lane.gateways[region_id].fail)
            experiment.sim.schedule_at(40.0, lane.gateways[region_id].restore)
        result = experiment.run()
        return experiment, result

    def test_outage_window_discards(self, outage_run):
        experiment, _ = outage_run
        lane = experiment.lanes[1]
        assert lane.gateways["B4"].discarded > 0
        assert lane.gateways["B6"].discarded > 0

    def test_gateways_recover(self, outage_run):
        experiment, _ = outage_run
        lane = experiment.lanes[1]
        assert lane.gateways["B4"].operational

    def test_other_regions_unaffected(self, outage_run):
        experiment, _ = outage_run
        lane = experiment.lanes[1]
        assert lane.gateways["B1"].discarded == 0

    def test_traffic_resumes_after_restore(self, outage_run):
        _, result = outage_run
        meter = result.lanes["adf-1"].meter
        after = meter.per_second(60.0).window(45.0, 60.0).total()
        assert after > 0

    def test_error_bounded_through_outage(self, outage_run):
        _, result = outage_run
        lane = result.lanes["adf-1"]
        # Estimates carry the B4/B6 nodes through the dark window; the
        # fleet RMSE may rise but must stay campus-sane.
        _, worst = max(
            ((t, v) for t, v in lane.rmse_with_le), key=lambda tv: tv[1]
        )
        assert worst < 30.0


class TestLatencyReordering:
    def test_jittered_channel_run_completes(self):
        result = run_experiment(
            ExperimentConfig(duration=30.0, dth_factors=(1.0,), channel_latency=0.2)
        )
        assert result.lanes["adf-1"].total_lus > 0

    def test_latency_barely_changes_filtering(self):
        """Latency delays when LUs reach the filter relative to the
        periodic recluster, which can flip a handful of borderline
        decisions — but the traffic statistics must be essentially equal,
        and no LU may be lost."""
        base = run_experiment(
            ExperimentConfig(duration=30.0, dth_factors=(1.0,))
        )
        delayed = run_experiment(
            ExperimentConfig(duration=30.0, dth_factors=(1.0,), channel_latency=0.2)
        )
        assert delayed.ideal.total_lus == base.ideal.total_lus
        assert delayed.lanes["adf-1"].total_lus == pytest.approx(
            base.lanes["adf-1"].total_lus, rel=0.01
        )