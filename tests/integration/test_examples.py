"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; a broken example is a broken
promise.  Each is run in-process (``runpy``) with the shortest duration
its CLI accepts, and its stdout is checked for the landmark line that
proves it reached its conclusion.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["30"], capsys)
        assert "Headline:" in out

    def test_tom_campus_day(self, capsys):
        out = run_example("tom_campus_day.py", [], capsys)
        assert "Day finished" in out

    def test_traffic_sweep(self, capsys):
        out = run_example("traffic_sweep.py", ["30"], capsys)
        assert "Reading:" in out
        assert "gdf-1.25" in out

    def test_grid_scheduling(self, capsys):
        out = run_example("grid_scheduling.py", [], capsys)
        assert "Job completed" in out

    def test_hla_federation(self, capsys):
        out = run_example("hla_federation.py", ["20"], capsys)
        assert "Traffic reduction vs ideal" in out

    def test_failure_injection(self, capsys):
        out = run_example("failure_injection.py", [], capsys)
        assert "Gateway outage" in out

    def test_analysis_report(self, capsys):
        out = run_example("analysis_report.py", ["25"], capsys)
        assert "95% CI" in out
        assert "accuracy" in out

    def test_synthetic_city(self, capsys):
        out = run_example("synthetic_city.py", [], capsys)
        assert "property of the algorithm" in out

    def test_battery_saver(self, capsys):
        out = run_example("battery_saver.py", [], capsys)
        assert "transmitted" in out

    def test_telemetry_tour(self, capsys):
        out = run_example("telemetry_tour.py", ["20"], capsys)
        assert "metrics per layer" in out
        assert "=== metrics ===" in out

    def test_serving_replay(self, capsys):
        out = run_example("serving_replay.py", [], capsys)
        assert "drain ceiling" in out
        assert "shed column" in out

    def test_every_example_file_is_covered(self):
        tested = {
            "quickstart.py",
            "tom_campus_day.py",
            "traffic_sweep.py",
            "grid_scheduling.py",
            "hla_federation.py",
            "failure_injection.py",
            "analysis_report.py",
            "synthetic_city.py",
            "battery_saver.py",
            "telemetry_tour.py",
            "serving_replay.py",
        }
        on_disk = {p.name for p in EXAMPLES.glob("*.py")}
        assert on_disk == tested
