"""Tests for the bandwidth-limited queueing channel."""

import pytest

from repro.network.messages import Message
from repro.network.queueing import QueueingChannel
from repro.simkernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def msg():
    return Message(sender="x", timestamp=0.0)  # 32 bytes -> 256 bits


class TestValidation:
    def test_bandwidth_positive(self, sim):
        with pytest.raises(ValueError):
            QueueingChannel(sim, bandwidth_bps=0.0)

    def test_queue_limit(self, sim):
        with pytest.raises(ValueError):
            QueueingChannel(sim, bandwidth_bps=100.0, queue_limit=0)


class TestServiceTime:
    def test_service_time(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        assert channel.service_time(msg()) == pytest.approx(1.0)

    def test_single_message_delay(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        got = []
        channel.send(msg(), lambda m: got.append(sim.now))
        sim.run()
        assert got == [pytest.approx(1.0)]
        assert channel.stats.mean_delay == pytest.approx(1.0)


class TestQueueing:
    def test_fifo_order(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        got = []
        messages = [msg() for _ in range(5)]
        for m in messages:
            channel.send(m, lambda mm: got.append(mm.seq))
        sim.run()
        assert got == [m.seq for m in messages]

    def test_delay_grows_with_queue_depth(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        delays = []
        for _ in range(4):
            enqueued = sim.now
            channel.send(msg(), lambda m, t=enqueued: delays.append(sim.now - t))
        sim.run()
        assert delays == [
            pytest.approx(1.0),
            pytest.approx(2.0),
            pytest.approx(3.0),
            pytest.approx(4.0),
        ]

    def test_queue_length_visible(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        for _ in range(4):
            channel.send(msg(), lambda m: None)
        assert channel.queue_length == 3  # one in service

    def test_overflow_drops(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0, queue_limit=2)
        results = [channel.send(msg(), lambda m: None) for _ in range(5)]
        # First enters service immediately; two queue; rest rejected.
        assert results == [True, True, True, False, False]
        assert channel.stats.dropped_queue_full == 2
        assert channel.stats.drop_rate == pytest.approx(2 / 5)

    def test_work_conserving_after_idle(self, sim):
        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        got = []
        channel.send(msg(), lambda m: got.append(sim.now))
        sim.run()
        sim.schedule_in(5.0, lambda: channel.send(msg(), lambda m: got.append(sim.now)))
        sim.run()
        assert got[1] == pytest.approx(sim.now)
        assert channel.stats.delivered == 2

    def test_underload_keeps_delay_flat(self, sim):
        """Arrivals slower than service never queue."""
        channel = QueueingChannel(sim, bandwidth_bps=2560.0)  # 0.1 s service
        for i in range(20):
            sim.schedule_at(
                i * 1.0, lambda: channel.send(msg(), lambda m: None)
            )
        sim.run()
        assert channel.stats.max_delay == pytest.approx(0.1)

    def test_overload_delay_explodes(self, sim):
        """Arrivals faster than service stack up linearly."""
        channel = QueueingChannel(
            sim, bandwidth_bps=256.0, queue_limit=10_000
        )  # 1 s service
        for i in range(30):
            sim.schedule_at(
                i * 0.5, lambda: channel.send(msg(), lambda m: None)
            )
        sim.run()
        assert channel.stats.max_delay > 10.0


class TestMessageSizes:
    def test_location_update_service_time(self, sim):
        """An LU (96 bytes) over 60 kbit/s takes 12.8 ms."""
        from repro.geometry import Vec2
        from repro.network.messages import LocationUpdate

        channel = QueueingChannel(sim, bandwidth_bps=60_000.0)
        update = LocationUpdate(
            sender="n", timestamp=0.0, node_id="n", position=Vec2(0, 0)
        )
        assert channel.service_time(update) == pytest.approx(
            update.size_bytes * 8 / 60_000.0
        )

    def test_mixed_sizes_fifo(self, sim):
        from repro.geometry import Vec2
        from repro.network.messages import LocationUpdate

        channel = QueueingChannel(sim, bandwidth_bps=256.0)
        got = []
        small = msg()
        big = LocationUpdate(
            sender="n", timestamp=0.0, node_id="n", position=Vec2(0, 0)
        )
        channel.send(big, lambda m: got.append(("big", sim.now)))
        channel.send(small, lambda m: got.append(("small", sim.now)))
        sim.run()
        assert got[0][0] == "big"
        assert got[1][1] > got[0][1]


class TestConservation:
    """Flow conservation, checked over random arrival patterns."""

    def test_offered_equals_delivered_plus_dropped(self, rng):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=30, deadline=None)
        @given(
            st.lists(
                st.floats(min_value=0.0, max_value=30.0),
                min_size=1,
                max_size=50,
            ),
            st.integers(min_value=1, max_value=8),
        )
        def run(arrival_times, queue_limit):
            sim = Simulator()
            channel = QueueingChannel(
                sim, bandwidth_bps=256.0, queue_limit=queue_limit
            )
            for t in sorted(arrival_times):
                sim.schedule_at(t, lambda: channel.send(msg(), lambda m: None))
            sim.run()
            stats = channel.stats
            assert stats.accepted + stats.dropped_queue_full == len(
                arrival_times
            )
            assert stats.delivered == stats.accepted
            assert channel.queue_length == 0
            # Delays are each at least one service time.
            assert all(d >= 1.0 - 1e-9 for d in stats.delays)

        run()
