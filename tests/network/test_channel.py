"""Tests for the wireless channel."""

import pytest

from repro.network import Message, WirelessChannel
from repro.simkernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def msg(t=0.0):
    return Message(sender="x", timestamp=t)


class TestValidation:
    def test_negative_latency_rejected(self, sim, rng):
        with pytest.raises(ValueError):
            WirelessChannel(sim, rng, base_latency=-1.0)

    def test_bad_loss_probability(self, sim, rng):
        with pytest.raises(ValueError):
            WirelessChannel(sim, rng, loss_probability=1.5)


class TestDelivery:
    def test_zero_latency_is_synchronous(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        got = []
        assert channel.send(msg(), got.append)
        assert len(got) == 1

    def test_latency_delays_delivery(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=2.0)
        got = []
        channel.send(msg(), lambda m: got.append(sim.now))
        assert got == []
        sim.run()
        assert got == [2.0]

    def test_jitter_adds_to_base(self, sim, rng):
        channel = WirelessChannel(
            sim, rng, base_latency=1.0, latency_jitter=0.5
        )
        samples = [channel.latency_sample() for _ in range(200)]
        assert all(s >= 1.0 for s in samples)
        assert any(s > 1.0 for s in samples)

    def test_stats_counted(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        channel.send(msg(), lambda m: None)
        assert channel.stats.sent == 1
        assert channel.stats.delivered == 1
        assert channel.stats.bytes_sent == 32


class TestLoss:
    def test_total_loss(self, sim, rng):
        channel = WirelessChannel(sim, rng, loss_probability=1.0)
        got = []
        assert not channel.send(msg(), got.append)
        sim.run()
        assert got == []
        assert channel.stats.dropped == 1

    def test_partial_loss_rate(self, sim, rng):
        channel = WirelessChannel(sim, rng, loss_probability=0.3)
        for _ in range(1000):
            channel.send(msg(), lambda m: None)
        assert channel.stats.loss_rate == pytest.approx(0.3, abs=0.06)

    def test_loss_rate_empty(self, sim, rng):
        assert WirelessChannel(sim, rng).stats.loss_rate == 0.0

    def test_no_loss_by_default(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        for _ in range(100):
            channel.send(msg(), lambda m: None)
        assert channel.stats.dropped == 0


class TestOrdering:
    def test_fixed_latency_preserves_order(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=1.0)
        got = []
        a, b = msg(), msg()
        channel.send(a, lambda m: got.append(m.seq))
        channel.send(b, lambda m: got.append(m.seq))
        sim.run()
        assert got == [a.seq, b.seq]

    def test_jittered_latency_can_reorder(self, sim, rng):
        channel = WirelessChannel(sim, rng, latency_jitter=5.0)
        got = []
        messages = [msg() for _ in range(50)]
        for m in messages:
            channel.send(m, lambda mm: got.append(mm.seq))
        sim.run()
        assert sorted(got) == [m.seq for m in messages]
        assert got != sorted(got)  # with 50 exponential draws, ~certain
