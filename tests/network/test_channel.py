"""Tests for the wireless channel."""

import pytest

from repro.network import GilbertElliottLoss, Message, WirelessChannel
from repro.simkernel import Simulator
from repro.util.rng import RngRegistry


@pytest.fixture
def sim():
    return Simulator()


def msg(t=0.0):
    return Message(sender="x", timestamp=t)


class TestValidation:
    def test_negative_latency_rejected(self, sim, rng):
        with pytest.raises(ValueError):
            WirelessChannel(sim, rng, base_latency=-1.0)

    def test_bad_loss_probability(self, sim, rng):
        with pytest.raises(ValueError):
            WirelessChannel(sim, rng, loss_probability=1.5)


class TestDelivery:
    def test_zero_latency_is_synchronous(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        got = []
        assert channel.send(msg(), got.append)
        assert len(got) == 1

    def test_latency_delays_delivery(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=2.0)
        got = []
        channel.send(msg(), lambda m: got.append(sim.now))
        assert got == []
        sim.run()
        assert got == [2.0]

    def test_jitter_adds_to_base(self, sim, rng):
        channel = WirelessChannel(
            sim, rng, base_latency=1.0, latency_jitter=0.5
        )
        samples = [channel.latency_sample() for _ in range(200)]
        assert all(s >= 1.0 for s in samples)
        assert any(s > 1.0 for s in samples)

    def test_stats_counted(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        channel.send(msg(), lambda m: None)
        assert channel.stats.sent == 1
        assert channel.stats.delivered == 1
        assert channel.stats.bytes_sent == 32


class TestLoss:
    def test_total_loss(self, sim, rng):
        channel = WirelessChannel(sim, rng, loss_probability=1.0)
        got = []
        assert not channel.send(msg(), got.append)
        sim.run()
        assert got == []
        assert channel.stats.dropped == 1

    def test_partial_loss_rate(self, sim, rng):
        channel = WirelessChannel(sim, rng, loss_probability=0.3)
        for _ in range(1000):
            channel.send(msg(), lambda m: None)
        assert channel.stats.loss_rate == pytest.approx(0.3, abs=0.06)

    def test_loss_rate_empty(self, sim, rng):
        assert WirelessChannel(sim, rng).stats.loss_rate == 0.0

    def test_no_loss_by_default(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        for _ in range(100):
            channel.send(msg(), lambda m: None)
        assert channel.stats.dropped == 0


class TestReconfigure:
    def test_configure_recomputes_transparent_flag(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        assert channel._transparent
        channel.configure(base_latency=1.0)
        assert not channel._transparent
        channel.configure(base_latency=0.0)
        assert channel._transparent

    def test_configure_validates(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        with pytest.raises(ValueError):
            channel.configure(loss_probability=2.0)
        with pytest.raises(TypeError):
            channel.configure(burst_loss="bursty")

    def test_configure_leaves_unnamed_params_alone(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=1.0, latency_jitter=0.5)
        channel.configure(loss_probability=0.2)
        assert channel.base_latency == 1.0
        assert channel.latency_jitter == 0.5
        assert channel.loss_probability == 0.2

    def test_degrade_restore_round_trip(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=0.1)
        channel.degrade(base_latency=2.0, loss_probability=0.5)
        assert channel.degraded
        # Nested degradation keeps the original save point.
        channel.degrade(loss_probability=0.9)
        channel.restore()
        assert not channel.degraded
        assert channel.base_latency == 0.1
        assert channel.loss_probability == 0.0
        assert channel._transparent is False  # latency 0.1 is back

    def test_restore_without_degrade_is_noop(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        channel.restore()
        assert not channel.degraded

    def test_listeners_notified_on_every_change(self, sim, rng):
        channel = WirelessChannel(sim, rng)
        calls = []
        channel.add_reconfigure_listener(lambda: calls.append(True))
        channel.configure(base_latency=1.0)
        channel.degrade(loss_probability=0.5)
        channel.restore()
        assert len(calls) == 3


class TestBurstLoss:
    def test_burst_clusters_losses(self, sim):
        model = GilbertElliottLoss(
            p_good_bad=0.05, p_bad_good=0.2, loss_good=0.0, loss_bad=1.0
        )
        channel = WirelessChannel(
            sim, RngRegistry(7).stream("burst"), burst_loss=model
        )
        outcomes = [
            channel.send(msg(), lambda m: None) for _ in range(2000)
        ]
        losses = outcomes.count(False)
        assert losses > 0
        # Loss rate tracks the model's steady state, not loss_bad.
        assert channel.stats.loss_rate == pytest.approx(
            model.steady_state_loss, abs=0.07
        )
        # Bursts: a drop is far more likely right after a drop than the
        # marginal rate would suggest (the whole point of the model).
        after_drop = [
            b for a, b in zip(outcomes, outcomes[1:]) if not a
        ]
        conditional = after_drop.count(False) / len(after_drop)
        assert conditional > channel.stats.loss_rate + 0.2

    def test_same_seed_same_drop_pattern(self, sim):
        model = GilbertElliottLoss()

        def pattern(seed):
            channel = WirelessChannel(
                sim, RngRegistry(seed).stream("burst"), burst_loss=model
            )
            return [channel.send(msg(), lambda m: None) for _ in range(500)]

        assert pattern(11) == pattern(11)
        assert pattern(11) != pattern(12)

    def test_clearing_burst_resets_state(self, sim, rng):
        channel = WirelessChannel(
            sim,
            rng,
            burst_loss=GilbertElliottLoss(
                p_good_bad=1.0, p_bad_good=0.0, loss_good=0.0, loss_bad=1.0
            ),
        )
        assert not channel.send(msg(), lambda m: None)  # forced into bad
        channel.configure(burst_loss=None)
        assert channel.burst_loss is None
        assert not channel._burst_bad
        assert channel.send(msg(), lambda m: None)


class TestOrdering:
    def test_fixed_latency_preserves_order(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=1.0)
        got = []
        a, b = msg(), msg()
        channel.send(a, lambda m: got.append(m.seq))
        channel.send(b, lambda m: got.append(m.seq))
        sim.run()
        assert got == [a.seq, b.seq]

    def test_jittered_latency_can_reorder(self, sim, rng):
        channel = WirelessChannel(sim, rng, latency_jitter=5.0)
        got = []
        messages = [msg() for _ in range(50)]
        for m in messages:
            channel.send(m, lambda mm: got.append(mm.seq))
        sim.run()
        assert sorted(got) == [m.seq for m in messages]
        assert got != sorted(got)  # with 50 exponential draws, ~certain
