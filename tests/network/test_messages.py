"""Tests for wireless message types."""

import math

import pytest

from repro.geometry import Vec2
from repro.network import Ack, LocationUpdate, Message, SequenceSource


class TestMessage:
    def test_sequence_monotone(self):
        a = Message(sender="x", timestamp=0.0)
        b = Message(sender="x", timestamp=0.0)
        assert b.seq > a.seq

    def test_base_size(self):
        assert Message(sender="x", timestamp=0.0).size_bytes == 32


class TestSequenceSource:
    def test_monotone_from_start(self):
        source = SequenceSource()
        assert [source.take() for _ in range(3)] == [0, 1, 2]
        assert source.issued == 3

    def test_custom_start(self):
        source = SequenceSource(start=100)
        assert source.take() == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SequenceSource(start=-1)

    def test_sources_are_independent(self):
        """Per-run sources restart at 0 — unlike the process-global
        default counter, whose value depends on every Message ever built
        in the process (a determinism hazard across sweep workers)."""
        a, b = SequenceSource(), SequenceSource()
        a.take(), a.take()
        assert b.take() == 0

    def test_explicit_seq_bypasses_global_counter(self):
        source = SequenceSource()
        m = Message(sender="x", timestamp=0.0, seq=source.take())
        assert m.seq == 0


class TestLocationUpdate:
    def make(self, vx=3.0, vy=4.0):
        return LocationUpdate(
            sender="mn-1",
            timestamp=5.0,
            node_id="mn-1",
            position=Vec2(10, 20),
            velocity=Vec2(vx, vy),
            region_id="R1",
        )

    def test_speed_and_direction(self):
        lu = self.make()
        assert lu.speed == 5.0
        assert lu.direction == math.atan2(4, 3)

    def test_size_larger_than_base(self):
        assert self.make().size_bytes > 32

    def test_defaults(self):
        lu = LocationUpdate(sender="x", timestamp=0.0)
        assert lu.position == Vec2.zero()
        assert lu.speed == 0.0
        assert lu.dth == 0.0

    def test_dth_metadata(self):
        lu = LocationUpdate(sender="x", timestamp=0.0, dth=2.5)
        assert lu.dth == 2.5

    def test_immutable(self):
        import pytest

        with pytest.raises(Exception):
            self.make().node_id = "other"  # type: ignore[misc]


class TestAck:
    def test_acked_seq(self):
        lu = LocationUpdate(sender="x", timestamp=0.0)
        ack = Ack(sender="gw", timestamp=1.0, acked_seq=lu.seq)
        assert ack.acked_seq == lu.seq
        assert ack.size_bytes == 40
