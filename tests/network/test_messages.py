"""Tests for wireless message types."""

import math

from repro.geometry import Vec2
from repro.network import Ack, LocationUpdate, Message


class TestMessage:
    def test_sequence_monotone(self):
        a = Message(sender="x", timestamp=0.0)
        b = Message(sender="x", timestamp=0.0)
        assert b.seq > a.seq

    def test_base_size(self):
        assert Message(sender="x", timestamp=0.0).size_bytes == 32


class TestLocationUpdate:
    def make(self, vx=3.0, vy=4.0):
        return LocationUpdate(
            sender="mn-1",
            timestamp=5.0,
            node_id="mn-1",
            position=Vec2(10, 20),
            velocity=Vec2(vx, vy),
            region_id="R1",
        )

    def test_speed_and_direction(self):
        lu = self.make()
        assert lu.speed == 5.0
        assert lu.direction == math.atan2(4, 3)

    def test_size_larger_than_base(self):
        assert self.make().size_bytes > 32

    def test_defaults(self):
        lu = LocationUpdate(sender="x", timestamp=0.0)
        assert lu.position == Vec2.zero()
        assert lu.speed == 0.0
        assert lu.dth == 0.0

    def test_dth_metadata(self):
        lu = LocationUpdate(sender="x", timestamp=0.0, dth=2.5)
        assert lu.dth == 2.5

    def test_immutable(self):
        import pytest

        with pytest.raises(Exception):
            self.make().node_id = "other"  # type: ignore[misc]


class TestAck:
    def test_acked_seq(self):
        lu = LocationUpdate(sender="x", timestamp=0.0)
        ack = Ack(sender="gw", timestamp=1.0, acked_seq=lu.seq)
        assert ack.acked_seq == lu.seq
        assert ack.size_bytes == 40
