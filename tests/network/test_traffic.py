"""Tests for traffic meters."""

import pytest

from repro.network import TrafficMeter


@pytest.fixture
def meter():
    m = TrafficMeter("t")
    # 3 LUs in second 0, 1 in second 1, none in second 2
    m.count(0.1, "R1", size_bytes=10)
    m.count(0.5, "R1", size_bytes=10)
    m.count(0.9, "B1", size_bytes=10)
    m.count(1.5, "B1", size_bytes=10)
    return m


class TestCounting:
    def test_total(self, meter):
        assert meter.total == 4

    def test_total_bytes(self, meter):
        assert meter.total_bytes == 40

    def test_per_region(self, meter):
        assert meter.per_region() == {"R1": 2, "B1": 2}

    def test_region_total(self, meter):
        assert meter.region_total("R1") == 2
        assert meter.region_total("R9") == 0

    def test_total_for_regions(self, meter):
        assert meter.total_for_regions(["R1", "B1"]) == 4
        assert meter.total_for_regions(["R1"]) == 2


class TestSeries:
    def test_per_second(self, meter):
        series = meter.per_second(3.0)
        assert list(series.values) == [3.0, 1.0, 0.0]

    def test_accumulated(self, meter):
        series = meter.accumulated(3.0)
        assert list(series.values) == [3.0, 4.0, 4.0]

    def test_custom_bin_width(self, meter):
        # Bins are right-closed: (0, 1.5] holds all four events at
        # 0.1 / 0.5 / 0.9 / 1.5; (1.5, 3.0] is empty.
        series = meter.per_second(3.0, bin_width=1.5)
        assert list(series.values) == [4.0, 0.0]

    def test_mean_rate(self, meter):
        assert meter.mean_rate(2.0) == 2.0

    def test_mean_rate_excludes_out_of_window(self, meter):
        meter.count(100.0, "R1")
        assert meter.mean_rate(2.0) == 2.0

    def test_mean_rate_invalid_duration(self, meter):
        with pytest.raises(ValueError):
            meter.mean_rate(0.0)

    def test_unsorted_events_binned_correctly(self):
        m = TrafficMeter()
        m.count(2.5, "R1")
        m.count(0.5, "R1")
        series = m.per_second(3.0)
        assert list(series.values) == [1.0, 0.0, 1.0]

    def test_empty_meter(self):
        m = TrafficMeter()
        assert m.total == 0
        assert m.per_second(2.0).total() == 0.0


class TestBinnedRetention:
    """bin_width mode: bounded memory, identical series where resolvable."""

    @pytest.fixture
    def binned(self):
        m = TrafficMeter("b", bin_width=1.0)
        m.count(0.1, "R1", size_bytes=10)
        m.count(0.5, "R1", size_bytes=10)
        m.count(0.9, "B1", size_bytes=10)
        m.count(1.5, "B1", size_bytes=10)
        return m

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            TrafficMeter("b", bin_width=0.0)

    def test_totals_preserved(self, binned):
        assert binned.total == 4
        assert binned.total_bytes == 40
        assert binned.per_region() == {"R1": 2, "B1": 2}

    def test_per_second_matches_exact_mode(self, binned, meter):
        assert list(binned.per_second(3.0).values) == list(
            meter.per_second(3.0).values
        )

    def test_accumulated_matches_exact_mode(self, binned, meter):
        assert list(binned.accumulated(3.0).values) == list(
            meter.accumulated(3.0).values
        )

    def test_rebin_to_integer_multiple(self, binned):
        series = binned.per_second(4.0, bin_width=2.0)
        assert [t for t, _ in series] == [0.0, 2.0]
        assert list(series.values) == [4.0, 0.0]

    def test_non_multiple_width_raises(self, binned):
        with pytest.raises(ValueError, match="integer multiple"):
            binned.per_second(3.0, bin_width=1.5)

    def test_finer_width_raises(self, binned):
        with pytest.raises(ValueError, match="integer multiple"):
            binned.per_second(3.0, bin_width=0.5)

    def test_mean_rate(self, binned):
        assert binned.mean_rate(2.0) == 2.0

    def test_mean_rate_excludes_later_bins(self, binned):
        binned.count(100.0, "R1")
        assert binned.mean_rate(2.0) == 2.0

    def test_events_past_duration_excluded(self):
        m = TrafficMeter("b", bin_width=1.0)
        m.count(0.5, "R1")
        m.count(9.5, "R1")
        assert list(m.per_second(2.0).values) == [1.0, 0.0]

    def test_memory_bounded(self):
        m = TrafficMeter("b", bin_width=1.0)
        for i in range(10_000):
            m.count(i * 0.001, "R1")  # all within (0, 10]
        assert m.total == 10_000
        assert len(m._bins) <= 11
