"""Tests for MN-gateway association and handoffs."""

import pytest

from repro.geometry import Vec2
from repro.network import LocationUpdate, WirelessChannel, WirelessGateway
from repro.network.association import AssociationManager
from repro.simkernel import Simulator

from tests.campus.test_region import make_building, make_road


@pytest.fixture
def manager(rng):
    sim = Simulator()
    got = []
    gateways = {}
    for region in (make_road("R1"), make_building("B1")):
        channel = WirelessChannel(sim, rng)
        gateways[region.region_id] = WirelessGateway(region, channel, got.append)
    return AssociationManager(gateways), got


def lu(node="n", region="R1", t=0.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(0, 0),
        region_id=region,
    )


class TestAssociation:
    def test_first_contact_associates(self, manager):
        mgr, _ = manager
        gateway = mgr.observe(lu())
        assert gateway.region.region_id == "R1"
        assert mgr.serving_region("n") == "R1"
        assert mgr.stats.associations == 1
        assert mgr.stats.handoffs == 0

    def test_same_region_no_handoff(self, manager):
        mgr, _ = manager
        mgr.observe(lu(t=0.0))
        mgr.observe(lu(t=1.0))
        assert mgr.stats.handoffs == 0

    def test_region_change_is_handoff(self, manager):
        mgr, _ = manager
        mgr.observe(lu(region="R1", t=0.0))
        mgr.observe(lu(region="B1", t=5.0))
        assert mgr.stats.handoffs == 1
        assert mgr.serving_region("n") == "B1"

    def test_registration_cost_charged(self, manager):
        mgr, _ = manager
        mgr.observe(lu(region="R1", t=0.0))
        mgr.observe(lu(region="B1", t=1.0))
        mgr.observe(lu(region="R1", t=2.0))
        assert mgr.stats.registration_messages == 2 * 2

    def test_unknown_region_raises(self, manager):
        mgr, _ = manager
        with pytest.raises(KeyError):
            mgr.observe(lu(region="R99"))

    def test_serving_gateway_object(self, manager):
        mgr, _ = manager
        mgr.observe(lu())
        gateway = mgr.serving_gateway("n")
        assert gateway is not None and gateway.gateway_id == "gw.R1"
        assert mgr.serving_gateway("ghost") is None

    def test_negative_cost_rejected(self, manager):
        mgr, _ = manager
        with pytest.raises(ValueError):
            AssociationManager({}, registration_cost_messages=-1)


class TestHistory:
    def test_handoff_records(self, manager):
        mgr, _ = manager
        mgr.observe(lu(region="R1", t=0.0))
        mgr.observe(lu(region="B1", t=3.0))
        history = mgr.handoff_history("n")
        assert len(history) == 2  # initial association + one handoff
        assert history[1].from_region == "R1"
        assert history[1].to_region == "B1"
        assert history[1].time == 3.0

    def test_handoffs_per_second_excludes_initial(self, manager):
        mgr, _ = manager
        mgr.observe(lu(region="R1", t=0.5))
        mgr.observe(lu(region="B1", t=1.5))
        series = mgr.handoffs_per_second(3.0)
        assert series.total() == 1.0

    def test_nodes_served_by(self, manager):
        mgr, _ = manager
        mgr.observe(lu(node="a", region="R1"))
        mgr.observe(lu(node="b", region="B1"))
        assert mgr.nodes_served_by("R1") == ["a"]
        assert mgr.nodes_served_by("B1") == ["b"]


class TestTomHandoffs:
    def test_itinerary_generates_handoffs(self, campus, rng):
        """Tom's day crosses many regions; handoffs must track that."""
        from repro.mobility import ItineraryModel, MobileNode, tom_itinerary
        from repro.network.association import AssociationManager
        from repro.simkernel import Simulator

        sim = Simulator()
        gateways = {}
        for region in campus.regions.values():
            channel = WirelessChannel(sim, rng)
            gateways[region.region_id] = WirelessGateway(
                region, channel, lambda m: None
            )
        mgr = AssociationManager(gateways)
        model = ItineraryModel(campus, tom_itinerary(compressed=True), rng)
        tom = MobileNode("tom", model)
        t = 0.0
        while not model.finished and t < 36000:
            t += 1.0
            sample = tom.advance(1.0)
            region = campus.region_at(sample.position)
            if region is None:
                continue
            mgr.observe(
                LocationUpdate(
                    sender="tom",
                    timestamp=t,
                    node_id="tom",
                    position=sample.position,
                    velocity=sample.velocity,
                    region_id=region.region_id,
                )
            )
        # Tom's schedule: gateB->R2->B4->R5->B6->R5->B4->R2/R1/R3->B3->R4.
        assert mgr.stats.handoffs >= 8
