"""Tests for the ARQ reliable link."""

import pytest

from repro.network import (
    GilbertElliottLoss,
    Message,
    ReliableLink,
    SequenceSource,
    WirelessChannel,
)
from repro.simkernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_link(sim, rng, **kwargs):
    channel = WirelessChannel(sim, rng, name="data")
    got = []
    link = ReliableLink(sim, channel, got.append, **kwargs)
    return link, channel, got


def msg(seq_source, t=0.0):
    return Message(sender="mn", timestamp=t, seq=seq_source.take())


class TestValidation:
    def test_bad_ack_timeout(self, sim, rng):
        with pytest.raises(ValueError):
            make_link(sim, rng, ack_timeout=0.0)

    def test_bad_backoff(self, sim, rng):
        with pytest.raises(ValueError):
            make_link(sim, rng, backoff_factor=0.5)

    def test_bad_retries(self, sim, rng):
        with pytest.raises(ValueError):
            make_link(sim, rng, max_retries=-1)

    def test_duplicate_seq_in_flight_rejected(self, sim, rng):
        channel = WirelessChannel(sim, rng, base_latency=1.0)
        link = ReliableLink(sim, channel, lambda m: None)
        seqs = SequenceSource()
        message = msg(seqs)
        link.send(message)
        with pytest.raises(ValueError):
            link.send(message)


class TestLosslessPath:
    def test_delivers_once_no_retransmits(self, sim, rng):
        link, _, got = make_link(sim, rng)
        seqs = SequenceSource()
        for _ in range(5):
            link.send(msg(seqs))
        sim.run()
        assert len(got) == 5
        assert link.stats.offered == 5
        assert link.stats.delivered == 5
        assert link.stats.transmissions == 5
        assert link.stats.retransmits == 0
        assert link.stats.duplicates == 0
        assert link.stats.acks_sent == 5
        assert link.stats.acks_received == 5
        assert link.stats.delivery_rate == 1.0
        assert link.in_flight == 0


class TestRetransmission:
    def test_rides_out_transient_total_loss(self, sim, rng):
        link, channel, got = make_link(
            sim, rng, ack_timeout=0.5, max_retries=6
        )
        channel.degrade(loss_probability=1.0)
        seqs = SequenceSource()
        link.send(msg(seqs))
        sim.run_until(1.0)
        assert got == []
        channel.restore()
        sim.run()
        assert len(got) == 1
        assert link.stats.retransmits >= 1
        assert link.stats.gave_up == 0
        assert link.in_flight == 0

    def test_gives_up_after_budget(self, sim, rng):
        link, channel, got = make_link(
            sim, rng, ack_timeout=0.5, max_retries=2
        )
        channel.degrade(loss_probability=1.0)
        seqs = SequenceSource()
        link.send(msg(seqs))
        sim.run()
        assert got == []
        assert link.stats.gave_up == 1
        assert link.stats.transmissions == 3  # first send + 2 retries
        assert link.in_flight == 0

    def test_exponential_backoff_spacing(self, sim, rng):
        channel = WirelessChannel(sim, rng, name="data")
        sends = []
        original = channel.send

        def spy(message, deliver):
            sends.append(sim.now)
            return original(message, deliver)

        channel.send = spy
        link = ReliableLink(
            sim,
            channel,
            lambda m: None,
            ack_timeout=1.0,
            backoff_factor=2.0,
            max_retries=3,
        )
        channel.degrade(loss_probability=1.0)
        link.send(msg(SequenceSource()))
        sim.run()
        # Timeouts double: armed at 1, 2, 4 after each attempt.
        assert sends == [0.0, 1.0, 3.0, 7.0]

    def test_lost_ack_causes_duplicate_not_double_delivery(self, sim, rng):
        channel = WirelessChannel(sim, rng, name="data")
        ack_channel = WirelessChannel(sim, rng, name="ack")
        got = []
        link = ReliableLink(
            sim,
            channel,
            got.append,
            ack_channel=ack_channel,
            ack_timeout=0.5,
            max_retries=4,
        )
        ack_channel.degrade(loss_probability=1.0)
        link.send(msg(SequenceSource()))
        sim.run_until(2.0)
        ack_channel.restore()
        sim.run()
        assert len(got) == 1  # dedup'd
        assert link.stats.delivered == 1
        assert link.stats.duplicates >= 1
        assert link.stats.acks_sent >= 2
        assert link.in_flight == 0

    def test_recovers_under_burst_loss(self, sim, rng):
        link, channel, got = make_link(
            sim, rng, ack_timeout=0.3, max_retries=10
        )
        channel.degrade(
            burst_loss=GilbertElliottLoss(
                p_good_bad=0.3, p_bad_good=0.3, loss_good=0.1, loss_bad=0.9
            )
        )
        seqs = SequenceSource()
        for _ in range(50):
            link.send(msg(seqs))
        sim.run()
        assert link.stats.delivered == 50
        assert link.stats.retransmits > 0
        assert len(got) == 50


class TestAcceptGate:
    def test_no_ack_while_rejected_then_delivery(self, sim, rng):
        channel = WirelessChannel(sim, rng, name="data")
        got = []
        up = {"ok": False}
        link = ReliableLink(
            sim,
            channel,
            got.append,
            accept=lambda message: up["ok"],
            ack_timeout=0.5,
            max_retries=6,
        )
        link.send(msg(SequenceSource()))
        sim.run_until(1.0)
        assert got == []
        assert link.stats.acks_sent == 0
        assert link.in_flight == 1  # still retrying
        up["ok"] = True
        sim.run()
        assert len(got) == 1
        assert link.stats.delivered == 1

    def test_permanent_rejection_exhausts_budget(self, sim, rng):
        link, channel, got = make_link(
            sim, rng, accept=lambda message: False, ack_timeout=0.5, max_retries=2
        )
        link.send(msg(SequenceSource()))
        sim.run()
        assert got == []
        assert link.stats.gave_up == 1
        assert link.stats.acks_sent == 0
