"""Tests for wireless gateways."""

import pytest

from repro.geometry import Vec2
from repro.network import LocationUpdate, WirelessChannel, WirelessGateway
from repro.simkernel import Simulator

from tests.campus.test_region import make_building, make_road


@pytest.fixture
def setup(rng):
    sim = Simulator()
    region = make_road()
    channel = WirelessChannel(sim, rng)
    got = []
    gateway = WirelessGateway(region, channel, got.append)
    return sim, gateway, got


def lu(x=50.0, y=5.0):
    return LocationUpdate(
        sender="mn", timestamp=0.0, node_id="mn", position=Vec2(x, y), region_id="R1"
    )


class TestForwarding:
    def test_receive_forwards_to_sink(self, setup):
        _, gateway, got = setup
        gateway.receive(lu())
        assert len(got) == 1
        assert gateway.received == 1
        assert gateway.forwarded == 1

    def test_gateway_id(self, setup):
        _, gateway, _ = setup
        assert gateway.gateway_id == "gw.R1"

    def test_covers(self, setup):
        _, gateway, _ = setup
        assert gateway.covers(lu(50, 5))
        assert not gateway.covers(lu(50, 500))


class TestFailureInjection:
    def test_failed_gateway_discards(self, setup):
        _, gateway, got = setup
        gateway.fail()
        gateway.receive(lu())
        assert got == []
        assert gateway.discarded == 1
        assert gateway.received == 1

    def test_restore(self, setup):
        _, gateway, got = setup
        gateway.fail()
        gateway.receive(lu())
        gateway.restore()
        gateway.receive(lu())
        assert len(got) == 1

    def test_lossy_uplink_counts_discards(self, rng):
        sim = Simulator()
        channel = WirelessChannel(sim, rng, loss_probability=1.0)
        got = []
        gateway = WirelessGateway(make_building(), channel, got.append)
        gateway.receive(lu())
        assert gateway.discarded == 1
        assert gateway.forwarded == 0


class TestFusedFastPath:
    """The fused-uplink flag must track mutable channel state.

    Regression guard: PR 3 cached ``_fused_uplink`` at construction; a
    mid-run channel reconfiguration (fault injection) must defeat the
    cached fast path, not be silently bypassed by it.
    """

    def test_transparent_lossless_default_is_fused(self, setup):
        _, gateway, _ = setup
        assert gateway._fused_uplink

    def test_lossy_channel_is_not_fused(self, rng):
        sim = Simulator()
        channel = WirelessChannel(sim, rng, loss_probability=0.5)
        gateway = WirelessGateway(make_road(), channel, lambda m: None)
        assert not gateway._fused_uplink

    def test_degrade_clears_flag_and_restore_resets_it(self, setup):
        _, gateway, _ = setup
        gateway.uplink.degrade(loss_probability=0.5)
        assert not gateway._fused_uplink
        gateway.uplink.restore()
        assert gateway._fused_uplink

    def test_latency_reconfigure_clears_flag(self, setup):
        _, gateway, _ = setup
        gateway.uplink.configure(base_latency=1.0)
        assert not gateway._fused_uplink

    def test_burst_loss_clears_flag(self, setup):
        from repro.network import GilbertElliottLoss

        _, gateway, _ = setup
        gateway.uplink.configure(burst_loss=GilbertElliottLoss())
        assert not gateway._fused_uplink
        gateway.uplink.configure(burst_loss=None)
        assert gateway._fused_uplink

    def test_degraded_traffic_actually_lost(self, setup):
        """A stale fused flag would deliver despite 100% loss."""
        _, gateway, got = setup
        gateway.uplink.degrade(loss_probability=1.0)
        gateway.receive(lu())
        assert got == []
        assert gateway.discarded == 1
        gateway.uplink.restore()
        gateway.receive(lu())
        assert len(got) == 1

    def test_fused_path_counters_match_general_path(self, rng, rng_registry):
        """The fused fast path must be observationally identical."""
        sim = Simulator()
        fused_ch = WirelessChannel(sim, rng, name="fused")
        general_ch = WirelessChannel(sim, rng_registry.stream("g"), name="general")
        fused_got, general_got = [], []
        fused = WirelessGateway(make_road(), fused_ch, fused_got.append)
        general = WirelessGateway(make_road(), general_ch, general_got.append)
        # Forcing the slow path is the point of this parity test.
        general._fused_uplink = False  # lint: disable=INV001
        for _ in range(10):
            update = lu()
            fused.receive(update)
            general.receive(update)
        assert fused_got == general_got
        assert (fused.received, fused.forwarded, fused.discarded) == (
            general.received,
            general.forwarded,
            general.discarded,
        )
        for name in ("sent", "delivered", "dropped", "bytes_sent"):
            assert getattr(fused_ch.stats, name) == getattr(
                general_ch.stats, name
            )
