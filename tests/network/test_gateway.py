"""Tests for wireless gateways."""

import pytest

from repro.geometry import Vec2
from repro.network import LocationUpdate, WirelessChannel, WirelessGateway
from repro.simkernel import Simulator

from tests.campus.test_region import make_building, make_road


@pytest.fixture
def setup(rng):
    sim = Simulator()
    region = make_road()
    channel = WirelessChannel(sim, rng)
    got = []
    gateway = WirelessGateway(region, channel, got.append)
    return sim, gateway, got


def lu(x=50.0, y=5.0):
    return LocationUpdate(
        sender="mn", timestamp=0.0, node_id="mn", position=Vec2(x, y), region_id="R1"
    )


class TestForwarding:
    def test_receive_forwards_to_sink(self, setup):
        _, gateway, got = setup
        gateway.receive(lu())
        assert len(got) == 1
        assert gateway.received == 1
        assert gateway.forwarded == 1

    def test_gateway_id(self, setup):
        _, gateway, _ = setup
        assert gateway.gateway_id == "gw.R1"

    def test_covers(self, setup):
        _, gateway, _ = setup
        assert gateway.covers(lu(50, 5))
        assert not gateway.covers(lu(50, 500))


class TestFailureInjection:
    def test_failed_gateway_discards(self, setup):
        _, gateway, got = setup
        gateway.fail()
        gateway.receive(lu())
        assert got == []
        assert gateway.discarded == 1
        assert gateway.received == 1

    def test_restore(self, setup):
        _, gateway, got = setup
        gateway.fail()
        gateway.receive(lu())
        gateway.restore()
        gateway.receive(lu())
        assert len(got) == 1

    def test_lossy_uplink_counts_discards(self, rng):
        sim = Simulator()
        channel = WirelessChannel(sim, rng, loss_probability=1.0)
        got = []
        gateway = WirelessGateway(make_building(), channel, got.append)
        gateway.receive(lu())
        assert gateway.discarded == 1
        assert gateway.forwarded == 0
