"""Tests for map-matched prediction."""

import pytest

from repro.estimation import BrownTracker, MapMatchedTracker
from repro.geometry import Vec2


@pytest.fixture
def tracker(campus):
    return MapMatchedTracker(BrownTracker(), campus)


class TestMapMatching:
    def test_no_region_passes_through(self, tracker):
        tracker.update(0.0, Vec2(200, 250), Vec2(2, 0))
        raw = tracker.predict(3.0)
        assert raw is not None

    def test_road_prediction_snapped_to_centerline(self, campus, tracker):
        """A node on R1 (y=250) predicted off-road snaps back to y=250."""
        # Feed movement along R1 with a slight off-axis velocity so the
        # base tracker drifts off the centerline.
        position = Vec2(200, 250)
        for t in range(8):
            tracker.update(
                float(t), position, Vec2(2.0, 0.3), region_id="R1"
            )
            position = position + Vec2(2.0, 0.3)
        predicted = tracker.predict(12.0)
        assert predicted.y == pytest.approx(250.0, abs=1e-6)

    def test_building_prediction_clamped_into_bounds(self, campus, tracker):
        """A node in B4 walking towards the wall stays inside B4."""
        bounds = campus.region("B4").bounds
        position = Vec2(bounds.x_max - 3.0, bounds.center.y)
        for t in range(6):
            tracker.update(float(t), position, Vec2(1.4, 0.0), region_id="B4")
            position = position + Vec2(1.0, 0.0)
        predicted = tracker.predict(20.0)
        assert bounds.contains(predicted, tol=1e-9)

    def test_unknown_region_ignored(self, tracker):
        tracker.update(0.0, Vec2(0, 0), Vec2(1, 0), region_id="R99")
        assert tracker.predict(2.0) is not None

    def test_matching_reduces_cross_track_error(self, campus):
        """Against a node truly on the road, matching beats the raw
        prediction whenever the raw one drifts off-axis."""
        raw = BrownTracker()
        matched = MapMatchedTracker(BrownTracker(), campus)
        position = Vec2(200.0, 250.0)  # on R1
        for t in range(10):
            noisy_velocity = Vec2(2.0, 0.4 if t % 2 == 0 else -0.2)
            raw.update(float(t), position, noisy_velocity)
            matched.update(float(t), position, noisy_velocity, region_id="R1")
            position = Vec2(position.x + 2.0, 250.0)
        truth = Vec2(position.x + 2.0 * 3.0, 250.0)
        raw_err = raw.predict(12.0).distance_to(truth)
        matched_err = matched.predict(12.0).distance_to(truth)
        assert matched_err <= raw_err + 1e-9

    def test_update_tracks_fix(self, tracker):
        tracker.update(1.0, Vec2(3, 4), Vec2(1, 0), region_id="R1")
        assert tracker.last_fix == (1.0, Vec2(3, 4))
        assert tracker.updates_received == 1
