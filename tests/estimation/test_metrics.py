"""Tests for error metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.estimation import mae, max_error, rmse

errors = st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=50)


class TestRmse:
    def test_known_value(self):
        # sqrt((3^2 + 4^2) / 2)
        assert rmse([3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_zero_errors(self):
        assert rmse([0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rmse([-1.0])

    def test_single_error(self):
        assert rmse([5.0]) == 5.0


class TestMaeMax:
    def test_mae(self):
        assert mae([1.0, 3.0]) == 2.0

    def test_max_error(self):
        assert max_error([1.0, 9.0, 3.0]) == 9.0


class TestProperties:
    @given(errors)
    def test_ordering_mae_rmse_max(self, xs):
        assert mae(xs) <= rmse(xs) + 1e-9
        assert rmse(xs) <= max_error(xs) + 1e-9

    @given(errors, st.floats(min_value=0.1, max_value=10))
    def test_rmse_scales_linearly(self, xs, k):
        scaled = [x * k for x in xs]
        assert rmse(scaled) == pytest.approx(k * rmse(xs), rel=1e-6, abs=1e-6)
