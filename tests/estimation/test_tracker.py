"""Tests for 2-D location trackers (the broker-side Location Estimator)."""

import math

import pytest

from repro.estimation import (
    BrownTracker,
    HoltTracker,
    LastKnownTracker,
    SimpleSmoothingTracker,
    VelocityComponentTracker,
)
from repro.geometry import Vec2


def feed_linear(tracker, *, speed=2.0, theta=0.0, n=10, dt=1.0):
    """Feed n updates of a node moving at constant velocity."""
    velocity = Vec2.from_polar(speed, theta)
    position = Vec2(0, 0)
    t = 0.0
    for _ in range(n):
        tracker.update(t, position, velocity)
        position = position + velocity * dt
        t += dt
    return t - dt, position - velocity * dt  # last update time & position


class TestBase:
    def test_predict_without_fix_raises(self):
        with pytest.raises(RuntimeError):
            LastKnownTracker().predict(1.0)

    def test_time_must_not_decrease(self):
        tracker = LastKnownTracker()
        tracker.update(5.0, Vec2(0, 0), Vec2(1, 0))
        with pytest.raises(ValueError):
            tracker.update(4.0, Vec2(0, 0), Vec2(1, 0))

    def test_updates_counted(self):
        tracker = LastKnownTracker()
        tracker.update(0.0, Vec2(0, 0), Vec2(1, 0))
        tracker.update(1.0, Vec2(1, 0), Vec2(1, 0))
        assert tracker.updates_received == 2
        assert tracker.last_fix == (1.0, Vec2(1, 0))


class TestLastKnown:
    def test_frozen_at_last_fix(self):
        tracker = LastKnownTracker()
        tracker.update(0.0, Vec2(3, 4), Vec2(1, 0))
        assert tracker.predict(100.0) == Vec2(3, 4)


class TestBrownTracker:
    def test_extrapolates_constant_velocity(self):
        tracker = BrownTracker(alpha=0.4)
        t_last, p_last = feed_linear(tracker, speed=2.0, theta=0.0)
        predicted = tracker.predict(t_last + 3.0)
        expected = p_last + Vec2(6.0, 0.0)
        assert predicted.distance_to(expected) < 0.3

    def test_diagonal_movement(self):
        tracker = BrownTracker(alpha=0.4)
        theta = math.pi / 4
        t_last, p_last = feed_linear(tracker, speed=3.0, theta=theta)
        predicted = tracker.predict(t_last + 2.0)
        expected = p_last + Vec2.from_polar(6.0, theta)
        assert predicted.distance_to(expected) < 0.5

    def test_prediction_at_fix_time_is_fix(self):
        tracker = BrownTracker()
        tracker.update(5.0, Vec2(1, 2), Vec2(1, 0))
        assert tracker.predict(5.0) == Vec2(1, 2)

    def test_stationary_node_stays(self):
        tracker = BrownTracker()
        for t in range(5):
            tracker.update(float(t), Vec2(1, 1), Vec2.zero())
        assert tracker.predict(10.0) == Vec2(1, 1)

    def test_direction_wrap_safe(self):
        """Headings near +/-pi must not average to 0 (the seam bug)."""
        tracker = BrownTracker(alpha=0.4)
        position = Vec2(0, 0)
        for t in range(20):
            theta = math.pi - 0.02 if t % 2 == 0 else -math.pi + 0.02
            velocity = Vec2.from_polar(2.0, theta)
            tracker.update(float(t), position, velocity)
            position = position + velocity
        predicted = tracker.predict(20.0)
        # The node travels in -x overall; prediction must not point +x.
        assert predicted.x <= position.x + 0.5

    def test_erratic_heading_gives_conservative_prediction(self):
        """Scattered headings shrink the dead-reckoned displacement.

        The smoothed heading vector's norm is the direction confidence: it
        is ~1 for a steady heading and < 1 for scattered ones, and the
        predicted displacement can never exceed speed * dt.
        """

        def run(headings):
            tracker = BrownTracker(alpha=0.4)
            position = Vec2(0, 0)
            for t, theta in enumerate(headings):
                tracker.update(float(t), position, Vec2.from_polar(2.0, theta))
            predicted = tracker.predict(len(headings) + 4.0)
            return predicted.distance_to(position)

        steady = run([0.3] * 12)
        scattered = run([0.0, math.pi / 2, math.pi, 3 * math.pi / 2] * 3)
        dt = 5.0
        assert steady == pytest.approx(2.0 * dt, rel=0.05)
        assert scattered < steady
        assert scattered <= 2.0 * dt + 1e-9

    def test_displacement_cap_clamps(self):
        tracker = BrownTracker(alpha=0.4)
        t_last, p_last = feed_linear(tracker, speed=5.0)
        tracker.update(t_last + 1.0, p_last + Vec2(5, 0), Vec2(5, 0),
                       displacement_cap=2.0)
        predicted = tracker.predict(t_last + 10.0)
        assert predicted.distance_to(p_last + Vec2(5, 0)) <= 2.0 + 1e-9

    def test_cap_not_applied_when_inside(self):
        tracker = BrownTracker(alpha=0.4)
        tracker.update(0.0, Vec2(0, 0), Vec2(1, 0), displacement_cap=100.0)
        tracker.update(1.0, Vec2(1, 0), Vec2(1, 0), displacement_cap=100.0)
        predicted = tracker.predict(2.0)
        assert predicted.distance_to(Vec2(2, 0)) < 0.5


class TestOtherTrackers:
    @pytest.mark.parametrize(
        "cls", [VelocityComponentTracker, SimpleSmoothingTracker, HoltTracker]
    )
    def test_extrapolates_constant_velocity(self, cls):
        tracker = cls()
        t_last, p_last = feed_linear(tracker, speed=2.0, theta=0.5)
        predicted = tracker.predict(t_last + 2.0)
        expected = p_last + Vec2.from_polar(4.0, 0.5)
        assert predicted.distance_to(expected) < 0.6

    @pytest.mark.parametrize(
        "cls", [VelocityComponentTracker, SimpleSmoothingTracker, HoltTracker]
    )
    def test_respects_displacement_cap(self, cls):
        tracker = cls()
        for t in range(5):
            tracker.update(
                float(t), Vec2(2.0 * t, 0), Vec2(2, 0), displacement_cap=1.0
            )
        predicted = tracker.predict(50.0)
        assert predicted.distance_to(Vec2(8, 0)) <= 1.0 + 1e-9
