"""Tests for the constant-velocity Kalman tracker."""

import pytest

from repro.estimation import KalmanTracker
from repro.geometry import Vec2


def feed_linear(tracker, *, speed=2.0, theta=0.0, n=15):
    velocity = Vec2.from_polar(speed, theta)
    position = Vec2(0, 0)
    for t in range(n):
        tracker.update(float(t), position, velocity)
        position = position + velocity
    return float(n - 1), position - velocity


class TestKalman:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KalmanTracker(process_noise=0.0)
        with pytest.raises(ValueError):
            KalmanTracker(position_noise=-1.0)

    def test_first_update_initialises(self):
        tracker = KalmanTracker()
        tracker.update(0.0, Vec2(3, 4), Vec2(1, 0))
        assert tracker.predict(0.0) == Vec2(3, 4)

    def test_extrapolates_constant_velocity(self):
        tracker = KalmanTracker()
        t_last, p_last = feed_linear(tracker, speed=3.0, theta=0.7)
        predicted = tracker.predict(t_last + 2.0)
        expected = p_last + Vec2.from_polar(6.0, 0.7)
        assert predicted.distance_to(expected) < 0.5

    def test_velocity_estimate_converges(self):
        tracker = KalmanTracker()
        feed_linear(tracker, speed=2.0, theta=0.0)
        v = tracker.velocity_estimate
        assert v.x == pytest.approx(2.0, abs=0.2)
        assert abs(v.y) < 0.2

    def test_filters_noisy_measurements(self, rng):
        """With noisy fixes the filter's estimate beats the raw fix."""
        tracker = KalmanTracker(position_noise=1.0)
        true_position = Vec2(0, 0)
        velocity = Vec2(2, 0)
        raw_errors, kf_errors = [], []
        for t in range(60):
            noise = Vec2(float(rng.normal(0, 1.0)), float(rng.normal(0, 1.0)))
            measured = true_position + noise
            tracker.update(float(t), measured, velocity)
            estimate = tracker.predict(float(t))
            raw_errors.append(measured.distance_to(true_position))
            kf_errors.append(estimate.distance_to(true_position))
            true_position = true_position + velocity
        assert sum(kf_errors[10:]) < sum(raw_errors[10:])

    def test_adapts_to_velocity_change(self):
        tracker = KalmanTracker(process_noise=2.0)
        position = Vec2(0, 0)
        for t in range(20):
            tracker.update(float(t), position, Vec2(2, 0))
            position = position + Vec2(2, 0)
        # Reverse direction; the filter should converge within ~5 updates.
        for t in range(20, 35):
            tracker.update(float(t), position, Vec2(-2, 0))
            position = position + Vec2(-2, 0)
        assert tracker.velocity_estimate.x == pytest.approx(-2.0, abs=0.5)

    def test_respects_displacement_cap(self):
        tracker = KalmanTracker()
        position = Vec2(0, 0)
        for t in range(10):
            tracker.update(float(t), position, Vec2(5, 0), displacement_cap=2.0)
            position = position + Vec2(5, 0)
        predicted = tracker.predict(30.0)
        last_fix = position - Vec2(5, 0)
        assert predicted.distance_to(last_fix) <= 2.0 + 1e-9

    def test_stationary_node(self):
        tracker = KalmanTracker()
        for t in range(10):
            tracker.update(float(t), Vec2(5, 5), Vec2.zero())
        assert tracker.predict(20.0).distance_to(Vec2(5, 5)) < 0.5
