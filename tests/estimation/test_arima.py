"""Tests for the small ARIMA implementation."""

import numpy as np
import pytest

from repro.estimation import ArimaModel, fit_ar_coefficients


@pytest.fixture
def ar1_series(rng):
    """A long AR(1) series with phi = 0.8."""
    n = 2000
    x = np.zeros(n)
    noise = rng.standard_normal(n)
    for t in range(1, n):
        x[t] = 0.8 * x[t - 1] + noise[t]
    return x


class TestYuleWalker:
    def test_recovers_ar1_coefficient(self, ar1_series):
        phi = fit_ar_coefficients(ar1_series, 1)
        assert phi[0] == pytest.approx(0.8, abs=0.05)

    def test_ar2(self, rng):
        n = 4000
        x = np.zeros(n)
        noise = rng.standard_normal(n)
        for t in range(2, n):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + noise[t]
        phi = fit_ar_coefficients(x, 2)
        assert phi[0] == pytest.approx(0.5, abs=0.08)
        assert phi[1] == pytest.approx(0.3, abs=0.08)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            fit_ar_coefficients(np.arange(10.0), 0)

    def test_too_short_series(self):
        with pytest.raises(ValueError, match="more than"):
            fit_ar_coefficients(np.array([1.0, 2.0]), 3)

    def test_constant_series_zero_coefficients(self):
        phi = fit_ar_coefficients(np.full(100, 7.0), 2)
        assert np.allclose(phi, 0.0)


class TestArimaModel:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            ArimaModel(p=-1)
        with pytest.raises(ValueError):
            ArimaModel(p=0, d=0, q=0)

    def test_forecast_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ArimaModel(p=1, d=0).forecast()

    def test_fit_requires_enough_data(self):
        model = ArimaModel(p=2, d=1)
        with pytest.raises(ValueError, match="observations"):
            model.fit(np.arange(3.0))

    def test_fitted_flag(self, ar1_series):
        model = ArimaModel(p=1, d=0)
        assert not model.fitted
        model.fit(ar1_series)
        assert model.fitted

    def test_ar1_one_step_forecast(self, ar1_series):
        model = ArimaModel(p=1, d=0).fit(ar1_series)
        forecast = model.forecast(1)[0]
        # Expectation of x_{n+1} is ~ phi * x_n (mean ~0).
        assert forecast == pytest.approx(0.8 * ar1_series[-1], abs=1.0)

    def test_differencing_handles_linear_trend(self):
        x = 5.0 + 2.0 * np.arange(200.0)
        model = ArimaModel(p=1, d=1).fit(x)
        forecast = model.forecast(3)
        expected = 5.0 + 2.0 * np.arange(200, 203)
        assert np.allclose(forecast, expected, atol=0.5)

    def test_forecast_horizon_validation(self, ar1_series):
        model = ArimaModel(p=1, d=0).fit(ar1_series)
        with pytest.raises(ValueError):
            model.forecast(0)

    def test_ma_fit_runs(self, rng):
        n = 500
        noise = rng.standard_normal(n)
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = noise[t] + 0.5 * noise[t - 1]
        model = ArimaModel(p=0, d=0, q=1).fit(x)
        forecast = model.forecast(2)
        assert forecast.shape == (2,)
        assert np.all(np.isfinite(forecast))

    def test_double_differencing(self):
        # Quadratic series: second difference is constant.
        t = np.arange(100.0)
        x = 0.5 * t * t
        model = ArimaModel(p=1, d=2).fit(x)
        forecast = model.forecast(1)[0]
        assert forecast == pytest.approx(0.5 * 100 * 100, rel=0.05)

    def test_min_observations(self):
        assert ArimaModel(p=2, d=1).min_observations() == 7
