"""Tests for the ARIMA-based tracker."""

import pytest

from repro.estimation import ArimaTracker
from repro.geometry import Vec2


def feed_linear(tracker, n=30, speed=2.0):
    position = Vec2(0, 0)
    velocity = Vec2(speed, 0)
    for t in range(n):
        tracker.update(float(t), position, velocity)
        position = position + velocity
    return float(n - 1), position - velocity


class TestArimaTracker:
    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            ArimaTracker(p=2, d=2, window=3)

    def test_cold_start_returns_fix(self):
        tracker = ArimaTracker()
        tracker.update(0.0, Vec2(3, 4), Vec2(1, 0))
        assert tracker.predict(5.0) == Vec2(3, 4)

    def test_extrapolates_linear_movement(self):
        tracker = ArimaTracker(p=1, d=1)
        t_last, p_last = feed_linear(tracker)
        predicted = tracker.predict(t_last + 3.0)
        expected = p_last + Vec2(6.0, 0.0)
        assert predicted.distance_to(expected) < 1.0

    def test_window_bounded(self):
        tracker = ArimaTracker(window=16)
        feed_linear(tracker, n=100)
        assert tracker.observations_buffered == 16

    def test_respects_displacement_cap(self):
        tracker = ArimaTracker(p=1, d=1)
        position = Vec2(0, 0)
        for t in range(30):
            tracker.update(
                float(t), position, Vec2(2, 0), displacement_cap=1.5
            )
            position = position + Vec2(2, 0)
        predicted = tracker.predict(60.0)
        assert predicted.distance_to(position - Vec2(2, 0)) <= 1.5 + 1e-9

    def test_stationary_series(self):
        tracker = ArimaTracker(p=1, d=1)
        for t in range(20):
            tracker.update(float(t), Vec2(5, 5), Vec2.zero())
        predicted = tracker.predict(25.0)
        assert predicted.distance_to(Vec2(5, 5)) < 0.5
