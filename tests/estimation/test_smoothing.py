"""Tests for exponential smoothing estimators."""

import pytest
from hypothesis import given, strategies as st

from repro.estimation import (
    BrownDoubleExponentialSmoothing,
    HoltLinearSmoothing,
    SimpleExponentialSmoothing,
)

values = st.floats(min_value=-1e5, max_value=1e5)


class TestSimple:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            SimpleExponentialSmoothing(0.0)
        with pytest.raises(ValueError):
            SimpleExponentialSmoothing(1.0)

    def test_first_observation_initialises(self):
        s = SimpleExponentialSmoothing(0.3)
        assert s.update(10.0) == 10.0

    def test_recursion(self):
        s = SimpleExponentialSmoothing(0.5)
        s.update(10.0)
        assert s.update(20.0) == pytest.approx(15.0)

    def test_flat_forecast(self):
        s = SimpleExponentialSmoothing(0.5)
        s.update(10.0)
        s.update(20.0)
        assert s.forecast(1) == s.forecast(100)

    def test_ready_flag(self):
        s = SimpleExponentialSmoothing(0.5)
        assert not s.ready
        s.update(1.0)
        assert s.ready
        assert s.n_observations == 1

    def test_constant_series_converges(self):
        s = SimpleExponentialSmoothing(0.3)
        for _ in range(50):
            s.update(7.0)
        assert s.level == pytest.approx(7.0)


class TestBrown:
    def test_constant_series_zero_trend(self):
        b = BrownDoubleExponentialSmoothing(0.4)
        for _ in range(100):
            b.update(5.0)
        assert b.level == pytest.approx(5.0)
        assert b.trend == pytest.approx(0.0, abs=1e-9)

    def test_linear_trend_tracked(self):
        """On x_t = 2t, the h-step forecast converges to 2(t + h)."""
        b = BrownDoubleExponentialSmoothing(0.4)
        for t in range(200):
            b.update(2.0 * t)
        last_t = 199
        assert b.forecast(1) == pytest.approx(2.0 * (last_t + 1), rel=0.01)
        assert b.trend == pytest.approx(2.0, rel=0.01)

    def test_forecast_is_linear_in_horizon(self):
        b = BrownDoubleExponentialSmoothing(0.4)
        for t in range(50):
            b.update(float(t))
        f1, f2, f3 = b.forecast(1), b.forecast(2), b.forecast(3)
        assert f2 - f1 == pytest.approx(f3 - f2)

    def test_textbook_recursion(self):
        """Hand-checked S', S'' for alpha=0.5 on [10, 20]."""
        b = BrownDoubleExponentialSmoothing(0.5)
        b.update(10.0)  # s1 = s2 = 10
        b.update(20.0)  # s1 = 15, s2 = 12.5
        assert b.level == pytest.approx(2 * 15 - 12.5)
        assert b.trend == pytest.approx(1.0 * (15 - 12.5))

    def test_no_observations_trend_zero(self):
        assert BrownDoubleExponentialSmoothing(0.4).trend == 0.0


class TestHolt:
    def test_constant_series(self):
        h = HoltLinearSmoothing(0.4, 0.2)
        for _ in range(100):
            h.update(5.0)
        assert h.level == pytest.approx(5.0)
        assert h.trend == pytest.approx(0.0, abs=1e-9)

    def test_linear_trend_tracked(self):
        h = HoltLinearSmoothing(0.4, 0.2)
        for t in range(300):
            h.update(3.0 * t)
        assert h.trend == pytest.approx(3.0, rel=0.02)

    def test_beta_bounds(self):
        with pytest.raises(ValueError):
            HoltLinearSmoothing(0.5, 0.0)


class TestProperties:
    @given(st.lists(values, min_size=1, max_size=60))
    def test_simple_level_within_data_range(self, xs):
        s = SimpleExponentialSmoothing(0.3)
        for x in xs:
            s.update(x)
        assert min(xs) - 1e-6 <= s.level <= max(xs) + 1e-6

    @given(st.lists(values, min_size=2, max_size=60), st.floats(0.05, 0.95))
    def test_brown_and_holt_agree_on_constants(self, xs, alpha):
        constant = xs[0]
        b = BrownDoubleExponentialSmoothing(alpha)
        for _ in xs:
            b.update(constant)
        assert b.forecast(5) == pytest.approx(constant, rel=1e-6, abs=1e-6)

    @given(st.floats(0.05, 0.95), st.floats(-100, 100), st.floats(-10, 10))
    def test_brown_converges_on_any_line(self, alpha, intercept, slope):
        b = BrownDoubleExponentialSmoothing(alpha)
        for t in range(400):
            b.update(intercept + slope * t)
        expected = intercept + slope * 400
        assert b.forecast(1) == pytest.approx(expected, rel=0.05, abs=0.5)


class TestUpdateAbsorbEquivalence:
    """``update`` must equal ``_absorb`` + ``_n`` + ``level`` for every
    smoother.

    ``BrownDoubleExponentialSmoothing.update`` is a concrete performance
    override of the template method (one call per LU per component on the
    broker hot path); this property pins it to the abstract recipe so the
    two can never drift.
    """

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SimpleExponentialSmoothing(0.3),
            lambda: BrownDoubleExponentialSmoothing(0.4),
            lambda: HoltLinearSmoothing(0.4, 0.2),
        ],
        ids=["simple", "brown", "holt"],
    )
    @given(series=st.lists(values, min_size=1, max_size=40))
    def test_update_equals_absorb_plus_level(self, factory, series):
        via_update = factory()
        via_absorb = factory()
        for value in series:
            returned = via_update.update(value)
            via_absorb._absorb(float(value))
            via_absorb._n += 1
            # Bit-equality, not approx: update() must be the same
            # arithmetic, not a reimplementation that happens to be close.
            assert returned == via_absorb.level
            assert via_update.level == via_absorb.level
            assert via_update.n_observations == via_absorb.n_observations
            assert via_update.forecast(2.5) == via_absorb.forecast(2.5)
