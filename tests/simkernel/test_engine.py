"""Tests for the simulation engine."""

import pytest

from repro.simkernel import SimulationError, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_clock_advances_with_events(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(100.0)
        assert sim.now == 100.0


class TestScheduling:
    def test_schedule_in(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [15.0]

    def test_schedule_into_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_executed == 2

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_event_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def first():
            sim.schedule_in(1.0, lambda: fired.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == [2.0]


class TestRunUntil:
    def test_executes_events_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, lambda: fired.append(1))
        sim.run_until(10.0)
        assert fired == [1]

    def test_leaves_later_events_pending(self):
        sim = Simulator()
        sim.schedule_at(11.0, lambda: None)
        sim.run_until(10.0)
        assert sim.pending_events() == 1
        assert sim.now == 10.0

    def test_backwards_run_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_stop_breaks_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        sim = Simulator()
        times = []
        sim.schedule_every(1.0, lambda: times.append(sim.now), end=5.0)
        sim.run_until(5.0)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_schedule_every_with_start(self):
        sim = Simulator()
        times = []
        sim.schedule_every(2.0, lambda: times.append(sim.now), start=1.0, end=5.0)
        sim.run_until(5.0)
        assert times == [1.0, 3.0, 5.0]

    def test_schedule_every_respects_end(self):
        sim = Simulator()
        count = [0]
        sim.schedule_every(1.0, lambda: count.__setitem__(0, count[0] + 1), end=3.0)
        sim.run_until(100.0)
        assert count[0] == 3

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            sim.schedule_every(1.0, lambda: log.append(("a", sim.now)), end=3.0)
            sim.schedule_every(1.5, lambda: log.append(("b", sim.now)), end=3.0)
            sim.run_until(3.0)
            return log

        assert run_once() == run_once()
