"""Tests for the future event list."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.simkernel import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append("c"))
        q.push(1.0, lambda: order.append("a"))
        q.push(2.0, lambda: order.append("b"))
        while not q.is_empty():
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_equal_times_fifo(self):
        q = EventQueue()
        order = []
        for name in "abc":
            q.push(1.0, lambda n=name: order.append(n))
        while not q.is_empty():
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("low"), priority=5)
        q.push(1.0, lambda: order.append("high"), priority=0)
        while not q.is_empty():
            q.pop().action()
        assert order == ["high", "low"]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=60))
    def test_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while not q.is_empty():
            popped.append(q.pop().time)
        assert popped == sorted(popped)


class TestLifecycle:
    def test_len_counts_live(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e)
        assert len(q) == 1

    def test_cancel_idempotent(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(e)
        assert q.pop().time == 2.0

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        q.cancel(e)
        assert q.peek_time() == 3.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_non_finite_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(math.inf, lambda: None)

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert q.is_empty()
