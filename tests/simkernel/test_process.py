"""Tests for generator-based processes."""

import pytest

from repro.simkernel import Process, Simulator, hold


class TestHold:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            hold(-1.0)

    def test_zero_delay_allowed(self):
        assert hold(0.0).delay == 0.0


class TestProcess:
    def test_sequential_holds(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(("start", sim.now))
            yield hold(5.0)
            log.append(("mid", sim.now))
            yield hold(3.0)
            log.append(("end", sim.now))

        p = Process(sim, proc())
        sim.run()
        assert log == [("start", 0.0), ("mid", 5.0), ("end", 8.0)]
        assert p.done

    def test_bare_numbers_as_delays(self):
        sim = Simulator()
        log = []

        def proc():
            yield 2.0
            log.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert log == [2.0]

    def test_start_delay(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield hold(1.0)

        Process(sim, proc(), start_delay=4.0)
        sim.run()
        assert log == [4.0]

    def test_negative_yield_raises_at_runtime(self):
        sim = Simulator()

        def proc():
            yield -1.0

        Process(sim, proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, delay):
            for _ in range(3):
                yield hold(delay)
                log.append((name, sim.now))

        Process(sim, proc("fast", 1.0), name="fast")
        Process(sim, proc("slow", 2.0), name="slow")
        sim.run()
        # At t=2.0 "slow" fires before "fast": its resume event was inserted
        # earlier (at t=0) and equal-time events run in insertion order.
        assert log == [
            ("fast", 1.0),
            ("slow", 2.0),
            ("fast", 2.0),
            ("fast", 3.0),
            ("slow", 4.0),
            ("slow", 6.0),
        ]

    def test_empty_generator_finishes_immediately(self):
        sim = Simulator()

        def proc():
            return
            yield  # pragma: no cover

        p = Process(sim, proc())
        sim.run()
        assert p.done
