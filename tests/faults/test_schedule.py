"""Tests for declarative fault schedules."""

import json

import pytest

from repro.faults import (
    ChannelDegradation,
    FaultSchedule,
    GatewayOutage,
    NodeChurn,
    RegionBlackout,
)
from repro.network.channel import GilbertElliottLoss


class TestFaultSpecs:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            GatewayOutage(region_id="R1", start=-1.0, duration=5.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            GatewayOutage(region_id="R1", start=0.0, duration=0.0)

    def test_end_property(self):
        fault = GatewayOutage(region_id="R1", start=3.0, duration=2.0)
        assert fault.end == 5.0

    def test_blackout_needs_regions(self):
        with pytest.raises(ValueError):
            RegionBlackout(region_ids=(), start=0.0, duration=1.0)

    def test_degradation_must_change_something(self):
        with pytest.raises(ValueError):
            ChannelDegradation(start=0.0, duration=1.0)

    def test_degradation_loss_bounds(self):
        with pytest.raises(ValueError):
            ChannelDegradation(start=0.0, duration=1.0, loss_probability=1.5)

    def test_degradation_negative_latency(self):
        with pytest.raises(ValueError):
            ChannelDegradation(start=0.0, duration=1.0, base_latency=-0.1)

    def test_churn_hazard_bounds(self):
        with pytest.raises(ValueError):
            NodeChurn(start=0.0, duration=1.0, hazard=1.5, mean_outage=5.0)

    def test_churn_outage_positive(self):
        with pytest.raises(ValueError):
            NodeChurn(start=0.0, duration=1.0, hazard=0.1, mean_outage=0.0)


class TestGilbertElliott:
    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_bad=1.2)

    def test_steady_state_loss(self):
        model = GilbertElliottLoss(
            p_good_bad=0.1, p_bad_good=0.4, loss_good=0.0, loss_bad=0.5
        )
        p_bad = 0.1 / 0.5
        assert model.steady_state_loss == pytest.approx(p_bad * 0.5)

    def test_steady_state_degenerate(self):
        model = GilbertElliottLoss(
            p_good_bad=0.0, p_bad_good=0.0, loss_good=0.05, loss_bad=0.9
        )
        assert model.steady_state_loss == 0.05


class TestSchedule:
    def test_rejects_non_fault(self):
        with pytest.raises(TypeError):
            FaultSchedule(faults=("not a fault",))

    def test_len_and_bool(self):
        assert not FaultSchedule()
        schedule = FaultSchedule(
            (GatewayOutage(region_id="R1", start=0.0, duration=1.0),)
        )
        assert schedule
        assert len(schedule) == 1

    def test_of_kind_sorted_by_start(self):
        a = GatewayOutage(region_id="R1", start=5.0, duration=1.0)
        b = GatewayOutage(region_id="R2", start=1.0, duration=1.0)
        schedule = FaultSchedule((a, b))
        assert schedule.of_kind(GatewayOutage) == (b, a)

    def test_churn_window_lookup(self):
        churn = NodeChurn(start=2.0, duration=3.0, hazard=0.1, mean_outage=5.0)
        schedule = FaultSchedule((churn,))
        assert schedule.has_churn
        assert schedule.churn_window(1.0) is None
        assert schedule.churn_window(2.0) is churn
        assert schedule.churn_window(4.9) is churn
        assert schedule.churn_window(5.0) is None

    def test_horizon(self):
        assert FaultSchedule().horizon() == 0.0
        schedule = FaultSchedule(
            (
                GatewayOutage(region_id="R1", start=1.0, duration=2.0),
                GatewayOutage(region_id="R2", start=0.0, duration=10.0),
            )
        )
        assert schedule.horizon() == 10.0

    def test_describe_mentions_every_fault(self):
        schedule = FaultSchedule.from_intensity(
            0.5, 100.0, regions=("R1",), churn=True
        )
        text = schedule.describe()
        assert "blackout" in text
        assert "churn" in text
        assert "degradation" in text


class TestFromIntensity:
    def test_zero_intensity_is_empty(self):
        assert not FaultSchedule.from_intensity(0.0, 100.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_intensity(1.5, 100.0)
        with pytest.raises(ValueError):
            FaultSchedule.from_intensity(0.5, 0.0)

    def test_deterministic(self):
        a = FaultSchedule.from_intensity(0.7, 300.0, regions=("R1",), churn=True)
        b = FaultSchedule.from_intensity(0.7, 300.0, regions=("R1",), churn=True)
        assert a == b  # frozen dataclasses: structural equality

    def test_shape(self):
        schedule = FaultSchedule.from_intensity(
            0.5, 100.0, regions=("R1", "R2"), churn=True
        )
        degradations = schedule.of_kind(ChannelDegradation)
        assert len(degradations) == 1
        assert degradations[0].burst is not None
        blackouts = schedule.of_kind(RegionBlackout)
        assert len(blackouts) == 1
        assert blackouts[0].region_ids == ("R1", "R2")
        assert schedule.has_churn

    def test_no_regions_no_blackout(self):
        schedule = FaultSchedule.from_intensity(0.5, 100.0)
        assert not schedule.of_kind(RegionBlackout)
        assert not schedule.has_churn

    def test_intensity_scales_severity(self):
        mild = FaultSchedule.from_intensity(0.2, 100.0)
        harsh = FaultSchedule.from_intensity(1.0, 100.0)
        mild_burst = mild.of_kind(ChannelDegradation)[0].burst
        harsh_burst = harsh.of_kind(ChannelDegradation)[0].burst
        assert harsh_burst.loss_bad > mild_burst.loss_bad
        assert harsh_burst.steady_state_loss > mild_burst.steady_state_loss


class TestRandomSchedule:
    def test_same_seed_replays(self):
        from repro.util.rng import RngRegistry

        a = FaultSchedule.random(
            0.8, 200.0, RngRegistry(9).stream("faults/schedule"), regions=("R1",)
        )
        b = FaultSchedule.random(
            0.8, 200.0, RngRegistry(9).stream("faults/schedule"), regions=("R1",)
        )
        assert a == b

    def test_zero_intensity_empty(self, rng):
        assert not FaultSchedule.random(0.0, 100.0, rng)

    def test_nonempty(self, rng):
        assert FaultSchedule.random(0.9, 100.0, rng)


class TestSerialisation:
    def test_json_round_trips_through_dumps(self):
        schedule = FaultSchedule.from_intensity(
            0.5, 100.0, regions=("R1",), churn=True
        )
        text = json.dumps(schedule.to_json_dict(), sort_keys=True)
        parsed = json.loads(text)
        assert len(parsed) == len(schedule)
        assert all("kind" in entry for entry in parsed)

    def test_sorted_by_start(self):
        schedule = FaultSchedule(
            (
                GatewayOutage(region_id="R1", start=9.0, duration=1.0),
                GatewayOutage(region_id="R2", start=1.0, duration=1.0),
            )
        )
        starts = [entry["start"] for entry in schedule.to_json_dict()]
        assert starts == sorted(starts)


class TestShardCrash:
    def test_validation(self):
        from repro.faults import ShardCrash

        with pytest.raises(ValueError):
            ShardCrash(shard_index=-1, start=1.0, duration=1.0)
        with pytest.raises(ValueError):
            ShardCrash(shard_index=0, start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            ShardCrash(shard_index=0, start=1.0, duration=0.0)

    def test_end_and_detection(self):
        from repro.faults import ShardCrash

        crash = ShardCrash(shard_index=2, start=3.0, duration=4.0)
        assert crash.end == 7.0
        schedule = FaultSchedule((crash,))
        assert schedule.has_shard_crashes
        assert not FaultSchedule(
            (GatewayOutage(region_id="R1", start=0.0, duration=1.0),)
        ).has_shard_crashes

    def test_describe_names_the_shard(self):
        from repro.faults import ShardCrash

        schedule = FaultSchedule(
            (ShardCrash(shard_index=1, start=2.0, duration=3.0),)
        )
        assert "shard" in schedule.describe().lower()
        assert "1" in schedule.describe()
