"""Tests for binding fault schedules to live simulation objects."""

import pytest

from repro.faults import (
    ChannelDegradation,
    FaultInjector,
    FaultSchedule,
    GatewayOutage,
    NodeChurn,
    RegionBlackout,
)
from repro.geometry import Vec2
from repro.network import LocationUpdate, WirelessChannel, WirelessGateway
from repro.simkernel import Simulator

from tests.campus.test_region import make_building, make_road


def lu(t=0.0):
    return LocationUpdate(
        sender="mn", timestamp=t, node_id="mn", position=Vec2(50, 5), region_id="R1"
    )


@pytest.fixture
def sim():
    return Simulator()


def make_gateway(sim, rng, region=None):
    got = []
    region = region if region is not None else make_road()
    channel = WirelessChannel(sim, rng, name=f"up/{region.region_id}")
    gateway = WirelessGateway(region, channel, got.append)
    return gateway, got


class TestOutages:
    def test_gateway_down_then_restored(self, sim, rng):
        gateway, got = make_gateway(sim, rng)
        schedule = FaultSchedule(
            (GatewayOutage(region_id="R1", start=2.0, duration=3.0),)
        )
        FaultInjector(schedule).attach(sim, gateways=[gateway])
        sim.run_until(2.5)
        assert not gateway.operational
        gateway.receive(lu(2.5))
        assert got == []
        sim.run_until(6.0)
        assert gateway.operational
        gateway.receive(lu(6.0))
        assert len(got) == 1

    def test_blackout_hits_all_named_regions(self, sim, rng):
        road, _ = make_gateway(sim, rng, make_road())
        building, _ = make_gateway(sim, rng, make_building())
        other, _ = make_gateway(sim, rng, make_road("R9"))
        schedule = FaultSchedule(
            (
                RegionBlackout(
                    region_ids=(road.region.region_id, building.region.region_id),
                    start=1.0,
                    duration=1.0,
                ),
            )
        )
        FaultInjector(schedule).attach(sim, gateways=[road, building, other])
        sim.run_until(1.5)
        assert not road.operational
        assert not building.operational
        assert other.operational
        sim.run()
        assert road.operational and building.operational

    def test_outage_for_unknown_region_is_noop(self, sim, rng):
        gateway, _ = make_gateway(sim, rng)
        schedule = FaultSchedule(
            (GatewayOutage(region_id="nowhere", start=1.0, duration=1.0),)
        )
        injector = FaultInjector(schedule)
        injector.attach(sim, gateways=[gateway])
        sim.run()
        assert gateway.operational
        assert injector.timeline == []


class TestDegradations:
    def test_degrade_and_restore_uplink(self, sim, rng):
        gateway, _ = make_gateway(sim, rng)
        schedule = FaultSchedule(
            (
                ChannelDegradation(
                    start=1.0,
                    duration=2.0,
                    loss_probability=1.0,
                    regions=(gateway.region.region_id,),
                ),
            )
        )
        FaultInjector(schedule).attach(sim, gateways=[gateway])
        sim.run_until(1.5)
        assert gateway.uplink.degraded
        assert gateway.uplink.loss_probability == 1.0
        sim.run()
        assert not gateway.uplink.degraded
        assert gateway.uplink.loss_probability == 0.0

    def test_unscoped_degradation_hits_extra_channels_once(self, sim, rng):
        gateway, _ = make_gateway(sim, rng)
        extra = WirelessChannel(sim, rng, name="extra")
        schedule = FaultSchedule(
            (ChannelDegradation(start=1.0, duration=1.0, base_latency=0.2),)
        )
        injector = FaultInjector(schedule)
        # The gateway uplink passed again via channels= must not be
        # degraded twice (double restore would lose the saved params).
        injector.attach(sim, gateways=[gateway], channels=[extra, gateway.uplink])
        sim.run_until(1.5)
        assert gateway.uplink.degraded and extra.degraded
        applies = [e for e in injector.timeline if e.action == "apply"]
        assert len(applies) == 2
        sim.run()
        assert not gateway.uplink.degraded and not extra.degraded

    def test_degradation_defeats_gateway_fused_path(self, sim, rng):
        gateway, got = make_gateway(sim, rng)
        assert gateway._fused_uplink  # transparent lossless default
        schedule = FaultSchedule(
            (ChannelDegradation(start=1.0, duration=2.0, loss_probability=1.0),)
        )
        FaultInjector(schedule).attach(sim, gateways=[gateway])
        sim.run_until(1.5)
        assert not gateway._fused_uplink
        gateway.receive(lu(1.5))
        assert got == []  # total loss actually applied
        assert gateway.discarded == 1
        sim.run()
        assert gateway._fused_uplink


class TestTimeline:
    def test_timeline_records_applies_and_reverts(self, sim, rng):
        gateway, _ = make_gateway(sim, rng)
        schedule = FaultSchedule(
            (
                GatewayOutage(region_id="R1", start=1.0, duration=2.0),
                ChannelDegradation(start=2.0, duration=1.0, base_latency=0.5),
            )
        )
        injector = FaultInjector(schedule)
        injector.attach(sim, gateways=[gateway])
        sim.run()
        actions = [(e.time, e.action, e.kind) for e in injector.timeline]
        assert actions == [
            (1.0, "apply", "GatewayOutage"),
            (2.0, "apply", "ChannelDegradation"),
            (3.0, "revert", "GatewayOutage"),
            (3.0, "revert", "ChannelDegradation"),
        ]
        entries = injector.timeline_json()
        assert entries[0] == {
            "time": 1.0,
            "action": "apply",
            "kind": "GatewayOutage",
            "target": "gw.R1",
        }


class TestAttachRules:
    def test_reattach_rejected(self, sim, rng):
        injector = FaultInjector(FaultSchedule())
        injector.attach(sim)
        with pytest.raises(RuntimeError):
            injector.attach(sim)

    def test_churn_requires_opt_in(self, sim):
        schedule = FaultSchedule(
            (NodeChurn(start=0.0, duration=10.0, hazard=0.1, mean_outage=5.0),)
        )
        with pytest.raises(ValueError, match="churn"):
            FaultInjector(schedule).attach(sim)
        FaultInjector(schedule).attach(sim, allow_churn=True)


class TestShardCrashBinding:
    def make_service(self, sim, tmp_path):
        from repro.serving import (
            DurabilityManager,
            IngestService,
            ServingConfig,
        )

        return IngestService(
            sim,
            ServingConfig(shards=2, flush_interval=0.1),
            durability=DurabilityManager(tmp_path),
        )

    def test_attach_without_service_rejected(self, sim):
        from repro.faults import ShardCrash

        schedule = FaultSchedule(
            (ShardCrash(shard_index=0, start=1.0, duration=1.0),)
        )
        with pytest.raises(ValueError, match="service"):
            FaultInjector(schedule).attach(sim)

    def test_crash_and_restart_fire_at_schedule_times(self, sim, tmp_path):
        from repro.faults import ShardCrash

        service = self.make_service(sim, tmp_path)
        schedule = FaultSchedule(
            (ShardCrash(shard_index=1, start=2.0, duration=3.0),)
        )
        injector = FaultInjector(schedule)
        injector.attach(sim, service=service)
        sim.run_until(2.5)
        assert service.store.shard_is_down(1)
        sim.run_until(6.0)
        assert not service.store.shard_is_down(1)
        assert len(service.recoveries) == 1
        actions = [
            (e.action, e.kind, e.target) for e in injector.timeline
        ]
        assert ("apply", "ShardCrash", "shard-1") in actions
        assert ("revert", "ShardRestart", "shard-1") in actions
