"""Tests for the ASCII campus map."""

from repro.mobility import build_population, table1_spec
from repro.util.rng import RngRegistry
from repro.viz import render_campus


class TestRenderCampus:
    def test_dimensions(self, campus):
        out = render_campus(campus, width=60, height=20)
        lines = out.splitlines()
        assert len(lines) == 20
        assert all(len(line) == 60 for line in lines)

    def test_buildings_labelled(self, campus):
        out = render_campus(campus)
        for building in ("B1", "B2", "B3", "B4", "B5", "B6"):
            assert building in out

    def test_roads_drawn(self, campus):
        assert "." in render_campus(campus)

    def test_gates_marked(self, campus):
        assert "G" in render_campus(campus)

    def test_nodes_overlaid(self, campus):
        nodes = build_population(campus, table1_spec(), RngRegistry(1))
        out = render_campus(campus, nodes)
        assert "o" in out  # humans
        assert "v" in out  # vehicles

    def test_without_nodes_no_markers(self, campus):
        out = render_campus(campus)
        assert "o" not in out
        assert "v" not in out


class TestGeneratedCityRender:
    def test_generated_city_renders(self):
        import numpy as np

        from repro.campus import generate_grid_campus

        city = generate_grid_campus(
            blocks_x=2, blocks_y=2, building_probability=1.0,
            rng=np.random.default_rng(3),
        )
        out = render_campus(city, width=50, height=18)
        assert len(out.splitlines()) == 18
        assert "#" in out and "." in out
        # At least one building label survives any edge clipping.
        assert any(b.region_id in out for b in city.buildings())

    def test_out_of_bounds_node_clamped_onto_canvas(self, campus, rng):
        from repro.geometry import Vec2
        from repro.mobility import MobileNode
        from repro.mobility.models import StopModel

        wanderer = MobileNode("lost", StopModel(Vec2(99999, 99999)))
        out = render_campus(campus, [wanderer], width=40, height=12)
        lines = out.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)
        assert "o" in out  # clamped to the border, still drawn
