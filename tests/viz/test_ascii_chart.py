"""Tests for ASCII chart rendering."""

import pytest

from repro.util.timeseries import TimeSeries
from repro.viz import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_flat(self):
        s = sparkline([5.0] * 10)
        assert set(s) == {"▁"}

    def test_rising_series_rises(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_resampled_to_width(self):
        s = sparkline(range(1000), width=40)
        assert len(s) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3


class TestLineChart:
    def test_requires_series(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_rejects_all_empty(self):
        with pytest.raises(ValueError):
            line_chart({"a": TimeSeries()})

    def test_renders_axes_and_legend(self):
        ts = TimeSeries([(float(i), float(i % 7)) for i in range(50)])
        chart = line_chart({"lus": ts}, title="Fig. 4")
        assert "Fig. 4" in chart
        assert "lus" in chart
        assert "└" in chart

    def test_multiple_series_get_distinct_markers(self):
        a = TimeSeries([(float(i), 1.0) for i in range(10)])
        b = TimeSeries([(float(i), 2.0) for i in range(10)])
        chart = line_chart({"a": a, "b": b})
        assert "* a" in chart
        assert "o b" in chart

    def test_respects_height(self):
        ts = TimeSeries([(float(i), float(i)) for i in range(30)])
        chart = line_chart({"x": ts}, height=8, title="")
        # height rows + axis + legend
        assert len(chart.splitlines()) == 8 + 2

    def test_min_max_labels(self):
        ts = TimeSeries([(0.0, 10.0), (1.0, 90.0)])
        chart = line_chart({"x": ts})
        assert "90.00" in chart
        assert "10.00" in chart


class TestBarChart:
    def test_requires_rows(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_scaled_to_max(self):
        chart = bar_chart([("big", 10.0), ("small", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_and_values_present(self):
        chart = bar_chart([("road", 3.14)], unit="m", title="Fig. 8")
        assert "Fig. 8" in chart
        assert "road" in chart
        assert "3.14m" in chart

    def test_zero_values(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "█" not in chart
