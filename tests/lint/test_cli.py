"""The ``python -m repro.lint`` front-end: exit codes, formats, baseline.

Also the repo-clean gate: the checkout itself must lint clean, since CI
runs ``repro.lint src tests`` with a fail-on-any-new-finding policy.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.engine import find_repo_root, lint_paths

REPO_ROOT = find_repo_root(Path(__file__).resolve().parent)

TRIPPING = """\
import time


def stamp():
    return time.time()
"""

CLEAN = """\
def stamp(sim):
    return sim.now
"""


def _seed(fake_repo, source=TRIPPING):
    root, write = fake_repo
    write("src/repro/experiments/x.py", source)
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, fake_repo, capsys):
        root = _seed(fake_repo, CLEAN)
        assert main([str(root / "src")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one_with_rendered_lines(self, fake_repo, capsys):
        root = _seed(fake_repo)
        assert main([str(root / "src")]) == 1
        out = capsys.readouterr().out
        assert "src/repro/experiments/x.py:5:" in out
        assert "DET001" in out
        assert "1 finding(s): DET001 x1" in out

    def test_unknown_select_code_exits_two(self, fake_repo, capsys):
        root = _seed(fake_repo)
        assert main([str(root / "src"), "--select", "NOPE99"]) == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestFormats:
    def test_json_format_is_machine_readable(self, fake_repo, capsys):
        root = _seed(fake_repo)
        assert main([str(root / "src"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "DET001"
        assert finding["path"] == "src/repro/experiments/x.py"
        assert "fingerprint" in finding

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET004", "INV001", "TEL001", "CFG001"):
            assert code in out


class TestBaselineWorkflow:
    def test_write_baseline_then_clean_rerun(self, fake_repo, capsys):
        root = _seed(fake_repo)
        src = str(root / "src")
        assert main([src, "--write-baseline"]) == 0
        assert (root / "lint-baseline.json").is_file()
        assert "1 finding(s) grandfathered" in capsys.readouterr().out

        assert main([src]) == 0
        assert "1 baselined finding(s) not shown" in capsys.readouterr().out

    def test_new_finding_still_fails_under_baseline(self, fake_repo, capsys):
        root = _seed(fake_repo)
        src = str(root / "src")
        assert main([src, "--write-baseline"]) == 0
        (root / "src/repro/experiments/y.py").write_text(
            "import time\nstamp = time.time()\n"
        )
        capsys.readouterr()
        assert main([src]) == 1
        out = capsys.readouterr().out
        assert "y.py" in out
        assert "x.py:5" not in out  # grandfathered, not re-reported

    def test_stale_entries_reported_and_gated_by_strict(
        self, fake_repo, capsys
    ):
        root = _seed(fake_repo)
        src = str(root / "src")
        assert main([src, "--write-baseline"]) == 0
        (root / "src/repro/experiments/x.py").write_text(CLEAN)
        capsys.readouterr()
        assert main([src]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
        assert main([src, "--strict-baseline"]) == 1


class TestRepoCleanGate:
    def test_checkout_lints_clean_modulo_baseline(self):
        """The CI gate: no new findings and no stale baseline entries."""
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], root=REPO_ROOT
        )
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        new, _, stale = baseline.filter(findings)
        assert new == [], "\n".join(f.render() for f in new)
        assert stale == []

    def test_committed_baseline_only_grandfathers_fast_path_peeks(self):
        """Only INV002 (the deliberate hot-path private peeks) may be
        grandfathered; every other rule stays strict everywhere."""
        path = REPO_ROOT / "lint-baseline.json"
        if path.is_file():
            data = json.loads(path.read_text())
            assert all(
                "::INV002::" in fp for fp in data["fingerprints"]
            ), sorted(data["fingerprints"])
