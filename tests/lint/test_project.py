"""The cross-file project model: extraction, resolution, caching."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.project import (
    ModelCache,
    ProjectModel,
    content_hash,
    extract_module,
    module_name_for,
)


def _info(rel: str, source: str):
    source = textwrap.dedent(source)
    return extract_module(rel, source, ast.parse(source))


class TestModuleNames:
    def test_src_rooted_files_resolve_to_importable_names(self):
        assert module_name_for("src/repro/serving/store.py") == "repro.serving.store"

    def test_package_init_collapses_to_the_package(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_non_src_files_keep_their_directory_chain(self):
        assert module_name_for("tests/lint/test_cli.py") == "tests.lint.test_cli"


class TestExtraction:
    def test_defined_includes_conditional_and_loop_bindings(self):
        info = _info(
            "src/repro/m.py",
            """
            try:
                import numpy
                HAVE_NUMPY = True
            except ImportError:
                HAVE_NUMPY = False
            if HAVE_NUMPY:
                def fast(): ...
            else:
                def fast(): ...
            class Widget: ...
            """,
        )
        assert {"numpy", "HAVE_NUMPY", "fast", "Widget"} <= info.defined

    def test_function_locals_are_not_module_bindings(self):
        info = _info(
            "src/repro/m.py",
            """
            def f():
                inner = 1
                return inner
            """,
        )
        assert "inner" not in info.defined

    def test_static_dunder_all_is_captured_with_linenos(self):
        info = _info(
            "src/repro/m.py",
            """
            __all__ = [
                "alpha",
                "beta",
            ]
            def alpha(): ...
            def beta(): ...
            """,
        )
        assert info.exports == (("alpha", 3), ("beta", 4))

    def test_computed_dunder_all_yields_none(self):
        info = _info(
            "src/repro/m.py",
            '__all__ = sorted(["a", "b"])\n',
        )
        assert info.exports is None

    def test_relative_import_resolves_against_the_package(self):
        info = _info(
            "src/repro/serving/store.py",
            "from ..broker import GridBroker\n",
        )
        (edge,) = info.imports
        assert (edge.module, edge.name, edge.alias) == (
            "repro.broker",
            "GridBroker",
            "GridBroker",
        )

    def test_relative_import_in_init_resolves_against_itself(self):
        info = _info(
            "src/repro/serving/__init__.py",
            "from .store import ShardedLocationStore as Store\n",
        )
        (edge,) = info.imports
        assert edge.module == "repro.serving.store"
        assert edge.alias == "Store"

    def test_class_summary_collects_self_attributes(self):
        info = _info(
            "src/repro/m.py",
            """
            class Store:
                kind = "grid"
                def __init__(self):
                    self._gates = {}
                def tick(self):
                    self.count = 0
            """,
        )
        summary = info.classes["Store"]
        assert {"kind", "_gates", "count"} <= set(summary.attributes)
        assert summary.methods == ("__init__", "tick")

    def test_module_getattr_marks_the_module_dynamic(self):
        info = _info(
            "src/repro/m.py",
            """
            def __getattr__(name):
                raise AttributeError(name)
            """,
        )
        assert info.dynamic


class TestProjectModel:
    def _model(self, *files: tuple[str, str]) -> ProjectModel:
        modules = {}
        for rel, source in files:
            modules[rel] = _info(rel, source)
        return ProjectModel(modules)

    def test_module_defines_sees_top_level_names(self):
        model = self._model(("src/repro/a.py", "def foo(): ...\n"))
        assert model.module_defines("repro.a", "foo")
        assert not model.module_defines("repro.a", "bar")

    def test_module_defines_accepts_submodules_as_names(self):
        model = self._model(
            ("src/repro/pkg/__init__.py", ""),
            ("src/repro/pkg/sub.py", "def f(): ...\n"),
        )
        assert model.module_defines("repro.pkg", "sub")

    def test_module_defines_stays_silent_outside_the_model(self):
        model = self._model()
        assert model.module_defines("os.path", "join")

    def test_star_imports_make_definitions_unknowable(self):
        model = self._model(
            ("src/repro/a.py", "from os.path import *\n"),
        )
        assert model.module_defines("repro.a", "anything")

    def test_referenced_anywhere_counts_import_edges(self):
        # A re-exporting __init__ mentions the name only as an import
        # alias, never as an expression — it must still count as a use.
        model = self._model(
            ("src/repro/a.py", "__all__ = ['Foo']\nclass Foo: ...\n"),
            ("src/repro/__init__.py", "from repro.a import Foo\n"),
        )
        assert model.referenced_anywhere_except("Foo", "src/repro/a.py")

    def test_import_graph_joins_on_in_project_modules(self):
        model = self._model(
            ("src/repro/a.py", "import json\nfrom repro.b import helper\n"),
            ("src/repro/b.py", "def helper(): ...\n"),
        )
        assert model.import_graph()["repro.a"] == frozenset({"repro.b"})


class TestModelCache:
    def test_build_round_trips_through_the_cache(self, tmp_path):
        target = tmp_path / "src" / "repro" / "a.py"
        target.parent.mkdir(parents=True)
        target.write_text("__all__ = ['f']\ndef f(): ...\n")
        cache_path = tmp_path / ".lint-cache" / "model.json"

        first = ProjectModel.build(
            tmp_path, [target], cache=ModelCache(cache_path)
        )
        assert cache_path.is_file()
        second = ProjectModel.build(
            tmp_path, [target], cache=ModelCache(cache_path)
        )
        rel = "src/repro/a.py"
        assert first.files[rel].to_dict() == second.files[rel].to_dict()

    def test_changed_content_misses_the_cache(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        cache_path = tmp_path / "model.json"
        ProjectModel.build(tmp_path, [target], cache=ModelCache(cache_path))

        target.write_text("y = 2\n")
        model = ProjectModel.build(
            tmp_path, [target], cache=ModelCache(cache_path)
        )
        assert "y" in model.files["a.py"].defined

    def test_stale_hash_entries_are_pruned_on_save(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        old_hash = content_hash("x = 1\n")
        cache_path = tmp_path / "model.json"
        ProjectModel.build(tmp_path, [target], cache=ModelCache(cache_path))

        target.write_text("y = 2\n")
        ProjectModel.build(tmp_path, [target], cache=ModelCache(cache_path))
        reloaded = ModelCache(cache_path)
        assert reloaded.get(old_hash, "a.py") is None

    def test_unparseable_files_are_skipped(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def broken(:\n")
        model = ProjectModel.build(tmp_path, [target])
        assert model.files == {}
