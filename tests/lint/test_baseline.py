"""Baseline persistence, line-shift stability, and staleness reporting."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding


def _finding(line=5, source_line="return time.time()", path="src/repro/x.py"):
    return Finding(
        path=path,
        line=line,
        col=4,
        code="DET001",
        message="wall-clock call",
        hint="use the sim clock",
        source_line=source_line,
    )


class TestFingerprint:
    def test_excludes_line_number_and_normalises_whitespace(self):
        a = _finding(line=5, source_line="return  time.time()")
        b = _finding(line=42, source_line="return time.time()")
        assert a.fingerprint == b.fingerprint

    def test_distinguishes_path_code_and_source(self):
        base = _finding()
        assert base.fingerprint != _finding(path="src/repro/y.py").fingerprint
        assert (
            base.fingerprint
            != _finding(source_line="return time.monotonic()").fingerprint
        )


class TestRoundTrip:
    def test_save_load_preserves_counts(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        path = baseline.save(tmp_path / "lint-baseline.json")
        loaded = Baseline.load(path)
        assert loaded.fingerprints == baseline.fingerprints
        assert len(loaded) == 2

    def test_file_is_sorted_json(self, tmp_path):
        baseline = Baseline.from_findings(
            [_finding(path="src/repro/z.py"), _finding(path="src/repro/a.py")]
        )
        path = baseline.save(tmp_path / "lint-baseline.json")
        data = json.loads(path.read_text())
        keys = list(data["fingerprints"])
        assert keys == sorted(keys)
        assert data["version"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text('{"version": 99, "fingerprints": {}}')
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)


class TestFilter:
    def test_grandfathered_new_and_stale_split(self):
        old = _finding()
        baseline = Baseline.from_findings(
            [old, _finding(path="src/repro/gone.py")]
        )
        fresh = _finding(source_line="return time.time_ns()")
        new, grandfathered, stale = baseline.filter([old, fresh])
        assert new == [fresh]
        assert grandfathered == [old]
        assert stale == [_finding(path="src/repro/gone.py").fingerprint]

    def test_count_budget_absorbs_at_most_n(self):
        baseline = Baseline.from_findings([_finding()])
        dupes = [_finding(line=5), _finding(line=6)]
        new, grandfathered, _ = baseline.filter(dupes)
        assert len(grandfathered) == 1
        assert len(new) == 1

    def test_survives_line_shift(self, fake_repo):
        """Editing *other* lines must not un-baseline a finding."""
        root, write = fake_repo
        rel = "src/repro/experiments/x.py"
        body = "import time\n\n\ndef stamp():\n    return time.time()\n"
        path = write(rel, body)
        engine = LintEngine(root=root)
        baseline = Baseline.from_findings(engine.lint_file(path))

        shifted = "import time\n\nPAD = 1\nPAD2 = 2\n\n\ndef stamp():\n    return time.time()\n"
        path.write_text(shifted)
        new, grandfathered, stale = baseline.filter(engine.lint_file(path))
        assert new == []
        assert len(grandfathered) == 1
        assert stale == []

    def test_editing_offending_line_removes_protection(self, fake_repo):
        root, write = fake_repo
        rel = "src/repro/experiments/x.py"
        path = write(rel, "import time\nstamp = time.time()\n")
        engine = LintEngine(root=root)
        baseline = Baseline.from_findings(engine.lint_file(path))

        path.write_text("import time\nstamp = time.time() + 1.0\n")
        new, grandfathered, stale = baseline.filter(engine.lint_file(path))
        assert len(new) == 1
        assert grandfathered == []
        assert len(stale) == 1
