"""Inline suppression comments and their interaction with the engine."""

from __future__ import annotations

from repro.lint.suppressions import Suppressions


class TestParsing:
    def test_line_suppression_single_and_multi_code(self):
        sup = Suppressions.parse(
            "x = 1  # lint: disable=DET001\n"
            "y = 2  # lint: disable=DET002, INV001\n"
        )
        assert sup.covers("DET001", 1)
        assert sup.covers("DET002", 2)
        assert sup.covers("INV001", 2)
        assert not sup.covers("DET001", 2)
        assert not sup.covers("DET002", 1)

    def test_file_suppression_covers_every_line(self):
        sup = Suppressions.parse(
            '"""doc."""\n# lint: disable-file=TEL001\nx = 1\n'
        )
        assert sup.covers("TEL001", 1)
        assert sup.covers("TEL001", 999)
        assert not sup.covers("DET001", 3)

    def test_no_blanket_disable_all(self):
        # "all" is parsed as a (nonexistent) code, not a wildcard.
        sup = Suppressions.parse("x = 1  # lint: disable=all\n")
        assert not sup.covers("DET001", 1)


class TestEngineIntegration:
    def test_suppressed_line_is_dropped_others_kept(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import time


            def stamps():
                a = time.time()  # lint: disable=DET001
                b = time.time()
                return a, b
            """,
        )
        assert [f.code for f in findings] == ["DET001"]
        assert findings[0].line == 6

    def test_wrong_code_does_not_suppress(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import time


            def stamp():
                return time.time()  # lint: disable=DET002
            """,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_file_level_suppression(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            # lint: disable-file=DET001
            import time


            def stamp():
                return time.time()
            """,
        )


class TestEdgeCases:
    """Decorators, comma lists, and suppressions under lock-tracking."""

    def test_multi_code_list_silences_both_findings_on_one_line(
        self, lint_snippet
    ):
        # One line, two rules: a wall-clock read (DET001) written to a
        # shared attribute without the lock (RACE001).
        source = """\
        import threading
        import time


        class Meter:
            def __init__(self):
                self._lock = threading.Lock()
                self.seen = 0.0
                self._worker = threading.Thread(target=self._tick)

            def _tick(self):
                self.seen = time.time(){comment}
        """
        both = lint_snippet(
            "src/repro/serving/meter.py",
            source.format(comment=""),
            select=["DET001", "RACE001"],
        )
        assert sorted(f.code for f in both) == ["DET001", "RACE001"]
        assert {f.line for f in both} == {12}

        partial = lint_snippet(
            "src/repro/serving/meter.py",
            source.format(comment="  # lint: disable=DET001"),
            select=["DET001", "RACE001"],
        )
        assert [f.code for f in partial] == ["RACE001"]

        silenced = lint_snippet(
            "src/repro/serving/meter.py",
            source.format(comment="  # lint: disable=DET001, RACE001"),
            select=["DET001", "RACE001"],
        )
        assert silenced == []

    def test_decorators_do_not_shift_suppression_lines(self, lint_snippet):
        # Findings anchor to the offending statement, so a suppression
        # inside a decorated def lands on the same line regardless of
        # how many decorators sit above it.
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import functools
            import time


            @functools.lru_cache(maxsize=None)
            @functools.wraps(print)
            def stamp():
                return time.time()  # lint: disable=DET001
            """,
        )
        assert findings == []

    def test_decorator_line_comment_does_not_cover_the_body(
        self, lint_snippet
    ):
        # Suppressions are strictly per-line: a comment on the decorator
        # does not bleed into the function body below it.
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import functools
            import time


            @functools.wraps(print)  # lint: disable=DET001
            def stamp():
                return time.time()
            """,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_suppression_inside_a_with_body_tracks_the_lock_state(
        self, lint_snippet
    ):
        # The suppressed wall-clock read sits *inside* `with self._lock:`;
        # silencing DET001 there must not perturb the held-locks lattice —
        # the unlocked write after the block is still flagged.
        findings = lint_snippet(
            "src/repro/serving/meter.py",
            """\
            import threading
            import time


            class Meter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.seen = 0.0
                    self.count = 0
                    self._worker = threading.Thread(target=self._tick)

                def _tick(self):
                    with self._lock:
                        self.seen = time.time()  # lint: disable=DET001
                    self.count += 1
            """,
            select=["DET001", "RACE001"],
        )
        assert [f.code for f in findings] == ["RACE001"]
        assert findings[0].line == 15
        assert "count" in findings[0].message
