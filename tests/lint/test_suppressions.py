"""Inline suppression comments and their interaction with the engine."""

from __future__ import annotations

from repro.lint.suppressions import Suppressions


class TestParsing:
    def test_line_suppression_single_and_multi_code(self):
        sup = Suppressions.parse(
            "x = 1  # lint: disable=DET001\n"
            "y = 2  # lint: disable=DET002, INV001\n"
        )
        assert sup.covers("DET001", 1)
        assert sup.covers("DET002", 2)
        assert sup.covers("INV001", 2)
        assert not sup.covers("DET001", 2)
        assert not sup.covers("DET002", 1)

    def test_file_suppression_covers_every_line(self):
        sup = Suppressions.parse(
            '"""doc."""\n# lint: disable-file=TEL001\nx = 1\n'
        )
        assert sup.covers("TEL001", 1)
        assert sup.covers("TEL001", 999)
        assert not sup.covers("DET001", 3)

    def test_no_blanket_disable_all(self):
        # "all" is parsed as a (nonexistent) code, not a wildcard.
        sup = Suppressions.parse("x = 1  # lint: disable=all\n")
        assert not sup.covers("DET001", 1)


class TestEngineIntegration:
    def test_suppressed_line_is_dropped_others_kept(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import time


            def stamps():
                a = time.time()  # lint: disable=DET001
                b = time.time()
                return a, b
            """,
        )
        assert [f.code for f in findings] == ["DET001"]
        assert findings[0].line == 6

    def test_wrong_code_does_not_suppress(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import time


            def stamp():
                return time.time()  # lint: disable=DET002
            """,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_file_level_suppression(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            # lint: disable-file=DET001
            import time


            def stamp():
                return time.time()
            """,
        )
