"""The dataflow layer: CFG shape, held-locks lattice, self aliases."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.dataflow import (
    HeldLocks,
    SelfAliases,
    build_cfg,
    dotted_expr,
)


def _fn(source: str) -> ast.FunctionDef:
    # lstrip the leading blank line so `def` sits on line 1 and the
    # line numbers asserted below match what you count in the snippet.
    node = ast.parse(textwrap.dedent(source).lstrip("\n")).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def _write_lines(cfg, states) -> dict[int, frozenset]:
    """lineno -> held set, for every attribute-assign statement node."""
    result = {}
    for index, stmt in cfg.stmt_nodes():
        held = states.get(index)
        if held is None:
            continue
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            result[stmt.lineno] = held
    return result


def _self_lock(key: str) -> bool:
    return key == "self._lock"


class TestCFG:
    def test_straight_line_statements_chain(self):
        cfg = build_cfg(_fn("def f(self):\n    a = 1\n    b = 2\n"))
        stmts = list(cfg.stmt_nodes())
        assert len(stmts) == 2

    def test_return_edges_to_exit_and_kills_fallthrough(self):
        cfg = build_cfg(
            _fn(
                """
                def f(self):
                    return 1
                    unreachable = 2
                """
            )
        )
        # The statement after `return` has no incoming edge from it.
        states = HeldLocks(_self_lock).solve(cfg)
        lines = _write_lines(cfg, states)
        assert lines == {}  # the only Assign is unreachable

    def test_branch_rejoins(self):
        cfg = build_cfg(
            _fn(
                """
                def f(self, flag):
                    if flag:
                        a = 1
                    else:
                        a = 2
                    b = 3
                """
            )
        )
        states = HeldLocks(_self_lock).solve(cfg)
        lines = _write_lines(cfg, states)
        assert set(lines) == {3, 5, 6}


class TestHeldLocks:
    def test_with_lock_body_is_held_and_released_after(self):
        fn = _fn(
            """
            def f(self):
                with self._lock:
                    self.a = 1
                self.b = 2
            """
        )
        cfg = build_cfg(fn)
        lines = _write_lines(cfg, HeldLocks(_self_lock).solve(cfg))
        assert lines[3] == frozenset({"self._lock"})
        assert lines[4] == frozenset()

    def test_acquire_release_pairs_track(self):
        fn = _fn(
            """
            def f(self):
                self._lock.acquire()
                self.a = 1
                self._lock.release()
                self.b = 2
            """
        )
        cfg = build_cfg(fn)
        lines = _write_lines(cfg, HeldLocks(_self_lock).solve(cfg))
        assert lines[3] == frozenset({"self._lock"})
        assert lines[5] == frozenset()

    def test_join_is_intersection_over_paths(self):
        # Lock held on only one arm: the join point holds nothing.
        fn = _fn(
            """
            def f(self, flag):
                if flag:
                    self._lock.acquire()
                self.a = 1
            """
        )
        cfg = build_cfg(fn)
        lines = _write_lines(cfg, HeldLocks(_self_lock).solve(cfg))
        assert lines[4] == frozenset()

    def test_conditional_lock_idiom_counts_as_held(self):
        # `if self._lock is None:` declares single-threaded mode: its
        # true arm is vacuously safe, and the with-arm genuinely holds.
        fn = _fn(
            """
            def f(self, u):
                if self._lock is None:
                    self.a = 1
                else:
                    with self._lock:
                        self.a = 2
            """
        )
        cfg = build_cfg(fn)
        lines = _write_lines(cfg, HeldLocks(_self_lock).solve(cfg))
        assert lines[3] == frozenset({"self._lock"})
        assert lines[6] == frozenset({"self._lock"})

    def test_loop_body_acquire_does_not_leak_into_the_header(self):
        # The header node carries the whole For statement; only its
        # iterable executes there, so an acquire() in the body must not
        # be credited to the header's own transfer.
        fn = _fn(
            """
            def f(self, items):
                for item in items:
                    self._lock.acquire()
                    self.a = 1
                    self._lock.release()
                self.b = 2
            """
        )
        cfg = build_cfg(fn)
        lines = _write_lines(cfg, HeldLocks(_self_lock).solve(cfg))
        assert lines[4] == frozenset({"self._lock"})
        assert lines[6] == frozenset()

    def test_entry_state_seeds_the_solve(self):
        fn = _fn("def helper(self):\n    self.a = 1\n")
        cfg = build_cfg(fn)
        states = HeldLocks(_self_lock).solve(
            cfg, entry=frozenset({"self._lock"})
        )
        lines = _write_lines(cfg, states)
        assert lines[2] == frozenset({"self._lock"})


class TestSelfAliases:
    def _aliases_at_line(self, fn, lineno):
        cfg = build_cfg(fn)
        states = SelfAliases().solve(cfg)
        for index, stmt in cfg.stmt_nodes():
            if stmt.lineno == lineno:
                return states.get(index, {})
        raise AssertionError(f"no stmt node at line {lineno}")

    def test_local_alias_of_a_self_attribute_is_tracked(self):
        fn = _fn(
            """
            def f(self):
                gates = self._gates
                gates["n"] = 1
            """
        )
        aliases = self._aliases_at_line(fn, 3)
        assert aliases["gates"] == frozenset({"_gates"})

    def test_rebinding_to_something_else_clears_the_alias(self):
        fn = _fn(
            """
            def f(self):
                gates = self._gates
                gates = {}
                gates["n"] = 1
            """
        )
        aliases = self._aliases_at_line(fn, 4)
        assert "_gates" not in aliases["gates"]

    def test_joined_paths_union_possible_aliases(self):
        fn = _fn(
            """
            def f(self, flag):
                if flag:
                    target = self._gates
                else:
                    target = self._down
                target.clear()
            """
        )
        aliases = self._aliases_at_line(fn, 6)
        assert aliases["target"] == frozenset({"_gates", "_down"})


def test_dotted_expr_handles_chains_and_rejects_calls():
    expr = ast.parse("a.b.c", mode="eval").body
    assert dotted_expr(expr) == "a.b.c"
    call = ast.parse("f().x", mode="eval").body
    assert dotted_expr(call) is None
