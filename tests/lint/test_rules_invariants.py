"""INV001, TEL001, CFG001: invariant, telemetry and config rules."""

from __future__ import annotations


def codes(findings):
    return [f.code for f in findings]


class TestInv001DerivedFlags:
    def test_assignment_outside_owners_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            def force(channel, gateway):
                channel._transparent = True
                gateway._fused_uplink = False
            """,
        )
        assert codes(findings) == ["INV001", "INV001"]
        assert [f.line for f in findings] == [2, 3]

    def test_annotated_and_augmented_assignment_flagged(self, lint_snippet):
        findings = lint_snippet(
            "tests/network/x.py",
            """\
            def force(channel):
                channel._transparent: bool = True
                channel._fused_uplink |= True
            """,
        )
        assert codes(findings) == ["INV001", "INV001"]

    def test_owner_modules_exempt(self, lint_snippet):
        for owner in (
            "src/repro/network/channel.py",
            "src/repro/network/gateway.py",
        ):
            assert not lint_snippet(
                owner,
                """\
                def _refresh(self):
                    self._transparent = self.loss_rate == 0.0
                    self._fused_uplink = self._transparent
                """,
            )

    def test_reads_and_other_attributes_clean(self, lint_snippet):
        # select=INV001: the read is INV001-clean but is exactly the kind
        # of cross-module peek INV002 exists to flag.
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            def inspect(channel):
                flag = channel._transparent
                channel._budget = 3
                return flag
            """,
            select=["INV001"],
        )


class TestInv002PrivatePeek:
    def test_cross_module_read_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            def peek(manager):
                return manager._serving.get("n1")
            """,
            select=["INV002"],
        )
        assert codes(findings) == ["INV002"]
        assert "._serving" in findings[0].message

    def test_self_and_cls_reads_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/network/x.py",
            """\
            class Meter:
                def total(self):
                    return self._total

                @classmethod
                def shared(cls):
                    return cls._instance
            """,
            select=["INV002"],
        )

    def test_module_defined_attributes_clean(self, lint_snippet):
        # Helper classes in one file may share internals: a _name the
        # module itself defines (self-assignment or class body) is fair
        # game for every class in that module.
        assert not lint_snippet(
            "src/repro/broker/x.py",
            """\
            class Tracker:
                def __init__(self):
                    self._last_time = None


            class Broker:
                def age(self, tracker, now):
                    return now - tracker._last_time
            """,
            select=["INV002"],
        )

    def test_assignment_is_not_a_peek(self, lint_snippet):
        # Writes are INV001's business (for derived flags); INV002 only
        # cares about reads.
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            def force(channel):
                channel._budget = 3
            """,
            select=["INV002"],
        )

    def test_dunder_reads_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/util/x.py",
            """\
            def describe(obj):
                return obj.__class__.__name__
            """,
            select=["INV002"],
        )

    def test_out_of_scope_paths_clean(self, lint_snippet):
        # Tests and benchmarks may poke internals on purpose.
        assert not lint_snippet(
            "tests/network/x.py",
            """\
            def probe(manager):
                return manager._serving
            """,
            select=["INV002"],
        )

    def test_chained_receiver_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            def peek(adf):
                return adf.classifier._labels
            """,
            select=["INV002"],
        )
        assert codes(findings) == ["INV002"]


class TestTel001MetricNames:
    def test_fstring_name_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/network/x.py",
            """\
            def record(hub, region):
                hub.counter(f"net.sent.{region}").inc()
            """,
        )
        assert codes(findings) == ["TEL001"]
        assert "not a string literal" in findings[0].message

    def test_camel_case_and_undotted_names_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/network/x.py",
            """\
            def record(hub):
                hub.gauge("netQueueDepth").set(1)
                hub.histogram(name="latency").observe(2)
            """,
        )
        assert codes(findings) == ["TEL001", "TEL001"]
        assert "not dotted lowercase" in findings[0].message

    def test_literal_dotted_lowercase_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/network/x.py",
            """\
            def record(hub):
                hub.counter("net.arq.retransmits", channel="uplink").inc()
                hub.gauge("net.queue.depth").set(1)
                hub.histogram(name="net.lu.latency_ms").observe(2)
            """,
        )

    def test_numpy_histogram_not_a_metric(self, lint_snippet):
        # np.histogram shares a method name with the telemetry instrument
        # but its receiver is an imported module, so TEL001 must not fire.
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import numpy as np


            def bin_counts(xs):
                return np.histogram(xs, bins=10)
            """,
        )

    def test_telemetry_package_out_of_scope(self, lint_snippet):
        # The subsystem's own internals build names dynamically by design.
        assert not lint_snippet(
            "src/repro/telemetry/x.py",
            """\
            def record(hub, suffix):
                hub.counter("net." + suffix).inc()
            """,
        )


class TestCfg001ConfigDefaults:
    def test_mutable_and_computed_defaults_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            from dataclasses import dataclass, field


            @dataclass
            class SweepConfig:
                regions: list = []
                factory: object = field(default_factory=lambda: {})
                stamp: float = make_stamp()
            """,
        )
        assert codes(findings) == ["CFG001", "CFG001", "CFG001"]
        assert [f.line for f in findings] == [6, 7, 8]
        assert "SweepConfig.regions" in findings[0].message

    def test_serialisable_defaults_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            from dataclasses import dataclass, field

            from repro.network import LinkKind


            @dataclass
            class ChannelSpec:
                rate_hz: float = 2.0
                offset: float = -0.5
                name: str | None = None
                kind: LinkKind = LinkKind.WLAN
                limit: int = MAX_NODES
                bounds: tuple = (0.0, 1.0)
                lanes: tuple = field(default_factory=tuple)
            """,
        )

    def test_only_config_and_spec_dataclasses_checked(self, lint_snippet):
        # Non-dataclasses and non-Config/Spec names are out of scope.
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            from dataclasses import dataclass


            class RunnerConfig:
                cache: dict = {}


            @dataclass
            class ResultRow:
                values: list = make_values()
            """,
        )
