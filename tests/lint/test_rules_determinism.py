"""DET001-DET004: one tripping fixture, one clean fixture per rule."""

from __future__ import annotations


def codes(findings):
    return [f.code for f in findings]


class TestDet001WallClock:
    def test_time_time_flagged_with_position(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import time


            def stamp():
                return time.time()
            """,
        )
        assert codes(findings) == ["DET001"]
        assert findings[0].line == 5
        assert "time.time" in findings[0].message

    def test_from_import_and_datetime_now_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/broker/x.py",
            """\
            from datetime import datetime
            from time import monotonic


            def stamp():
                return monotonic() + datetime.now().timestamp()
            """,
        )
        assert codes(findings) == ["DET001", "DET001"]

    def test_perf_counter_clean_in_declared_measurement_sites(
        self, lint_snippet
    ):
        snippet = """\
            import time


            def wall(sim):
                return time.perf_counter() + sim.now
            """
        assert not lint_snippet(
            "src/repro/experiments/scaling.py", snippet
        )
        assert not lint_snippet("src/repro/serving/recovery.py", snippet)

    def test_perf_counter_flagged_elsewhere(self, lint_snippet):
        # The WAL/snapshot write paths (and everything else under
        # src/repro) must stay virtual-clock only; perf_counter is a
        # wall clock like any other outside the declared sites.
        findings = lint_snippet(
            "src/repro/serving/durability.py",
            """\
            import time


            def flush_stamp():
                return time.perf_counter_ns()
            """,
        )
        assert codes(findings) == ["DET001"]
        assert "perf_counter_ns" in findings[0].message

    def test_telemetry_package_out_of_scope(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/telemetry/x.py",
            """\
            import time


            def stamp():
                return time.time()
            """,
        )


class TestDet002GlobalRandom:
    def test_stdlib_and_numpy_global_calls_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/mobility/x.py",
            """\
            import random

            import numpy as np


            def draw():
                return random.random() + np.random.rand()
            """,
        )
        assert codes(findings) == ["DET002", "DET002"]
        assert findings[0].line == findings[1].line == 7

    def test_applies_to_tests_too(self, lint_snippet):
        findings = lint_snippet(
            "tests/x.py",
            """\
            from random import shuffle


            def mix(xs):
                shuffle(xs)
            """,
        )
        assert codes(findings) == ["DET002"]

    def test_seeded_constructors_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/mobility/x.py",
            """\
            import random

            import numpy as np


            def make(seed):
                a = np.random.default_rng(seed)
                b = np.random.SeedSequence([seed])
                c = random.Random(seed)
                return a, b, c
            """,
        )

    def test_instance_draws_clean(self, lint_snippet):
        # Calls on generator *instances* are not global-state calls.
        assert not lint_snippet(
            "src/repro/mobility/x.py",
            """\
            def draw(rng):
                return rng.random() + rng.shuffle([1, 2])
            """,
        )


class TestDet003UnsortedIteration:
    def test_for_over_set_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            def rows(d):
                out = []
                for key in set(d):
                    out.append(key)
                return out
            """,
        )
        assert codes(findings) == ["DET003"]
        assert findings[0].line == 3

    def test_list_of_keys_and_set_literal_comprehension_flagged(
        self, lint_snippet
    ):
        findings = lint_snippet(
            "src/repro/faults/x.py",
            """\
            def rows(d):
                return list(d.keys()) + [x for x in {1, 2}]
            """,
        )
        assert codes(findings) == ["DET003", "DET003"]

    def test_sorted_wrapping_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/network/x.py",
            """\
            def rows(d):
                out = [k for k in sorted(set(d))]
                for key in sorted(d.keys()):
                    out.append(key)
                return out
            """,
        )

    def test_out_of_scope_package_clean(self, lint_snippet):
        # The rule covers report-feeding packages only.
        assert not lint_snippet(
            "src/repro/util/x.py",
            """\
            def rows(d):
                return list(set(d))
            """,
        )

    def test_serving_package_in_scope(self, lint_snippet):
        # serving/ writes byte-compared traces and replay reports.
        findings = lint_snippet(
            "src/repro/serving/x.py",
            """\
            def rows(d):
                return [k for k in d.keys()]
            """,
        )
        assert codes(findings) == ["DET003"]

    def test_serving_unsorted_json_dump_flagged(self, lint_snippet):
        # DET004 already covers serving/ (src/repro-wide): a trace or
        # report writer without sort_keys=True fails the gate.
        findings = lint_snippet(
            "src/repro/serving/x.py",
            """\
            import json


            def write_report(data, fh):
                json.dump(data, fh)
            """,
        )
        assert codes(findings) == ["DET004"]


class TestDet004UnsortedJson:
    def test_dump_and_dumps_without_sort_keys_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import json


            def export(data, fh):
                json.dump(data, fh, indent=2)
                return json.dumps(data)
            """,
        )
        assert codes(findings) == ["DET004", "DET004"]
        assert [f.line for f in findings] == [5, 6]

    def test_explicit_false_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import json


            def export(data):
                return json.dumps(data, sort_keys=False)
            """,
        )
        assert codes(findings) == ["DET004"]

    def test_sort_keys_true_clean(self, lint_snippet):
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import json


            def export(data, fh):
                json.dump(data, fh, indent=2, sort_keys=True)
                return json.dumps(data, sort_keys=True)
            """,
        )

    def test_loads_dumps_round_trip_exempt(self, lint_snippet):
        # json.loads(json.dumps(x)) normalises in memory; nothing is
        # persisted, so key order cannot leak into an artifact.
        assert not lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import json


            def normalise(payload):
                return json.loads(json.dumps(payload))
            """,
        )
