"""DET005 (order-taint into JSON) and API001 (cross-module symbols)."""

from __future__ import annotations

from repro.lint.engine import LintEngine


class TestOrderSensitiveExport:
    def test_direct_comprehension_over_a_dict_view_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/export.py",
            """
            import json

            def export(table):
                return json.dumps([key for key in table.keys()])
            """,
            select=["DET005"],
        )
        assert [f.code for f in findings] == ["DET005"]
        assert ".keys()" in findings[0].message

    def test_taint_flows_through_a_local(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/export.py",
            """
            import json

            def export(gates, fh):
                rows = [gate for gate in gates.values()]
                json.dump(rows, fh)
            """,
            select=["DET005"],
        )
        assert [f.code for f in findings] == ["DET005"]

    def test_taint_crosses_function_boundaries_within_the_module(
        self, lint_snippet
    ):
        findings = lint_snippet(
            "src/repro/faults/export.py",
            """
            import json

            def collect(live):
                return [node for node in live.keys()]

            def export(live, fh):
                json.dump(collect(live), fh)
            """,
            select=["DET005"],
        )
        assert [f.code for f in findings] == ["DET005"]
        assert "collect" in findings[0].message

    def test_append_inside_a_loop_over_a_set_taints_the_list(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/network/export.py",
            """
            import json

            def export(nodes):
                out = []
                for node in set(nodes):
                    out.append(node.name)
                return json.dumps(out)
            """,
            select=["DET005"],
        )
        assert [f.code for f in findings] == ["DET005"]

    def test_sorted_iteration_is_clean(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/export.py",
            """
            import json

            def export(table):
                return json.dumps([key for key in sorted(table.keys())])
            """,
            select=["DET005"],
        )
        assert findings == []

    def test_dicts_built_from_unordered_iteration_are_exempt(self, lint_snippet):
        # DET004 already forces sort_keys on export; key order is fixed
        # at serialisation time, unlike list element order.
        findings = lint_snippet(
            "src/repro/experiments/export.py",
            """
            import json

            def export(table):
                return json.dumps(
                    {key: 1 for key in table.keys()}, sort_keys=True
                )
            """,
            select=["DET005"],
        )
        assert findings == []

    def test_rule_is_scoped_to_export_producing_packages(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/analysis/export.py",
            """
            import json

            def export(table):
                return json.dumps([key for key in table.keys()])
            """,
            select=["DET005"],
        )
        assert findings == []


def _lint(root, paths, select=("API001",)):
    engine = LintEngine(root=root, select=list(select))
    return engine.lint(paths)


class TestCrossModuleSymbols:
    def test_undefined_from_import_is_flagged(self, fake_repo):
        root, write = fake_repo
        write("src/repro/a.py", "def foo(): ...\n")
        target = write("src/repro/b.py", "from repro.a import bar\n")
        findings = _lint(root, [target])
        assert [f.code for f in findings] == ["API001"]
        assert "'bar'" in findings[0].message
        assert "repro.a" in findings[0].message

    def test_importing_a_submodule_name_resolves(self, fake_repo):
        root, write = fake_repo
        write("src/repro/pkg/__init__.py", "")
        write("src/repro/pkg/sub.py", "def f(): ...\n")
        target = write("src/repro/b.py", "from repro.pkg import sub\n")
        assert _lint(root, [target]) == []

    def test_modules_outside_the_model_stay_silent(self, fake_repo):
        root, write = fake_repo
        target = write("src/repro/b.py", "from os.path import join\n")
        assert _lint(root, [target]) == []

    def test_dead_export_is_flagged(self, fake_repo):
        root, write = fake_repo
        target = write(
            "src/repro/a.py",
            """
            __all__ = ["used", "dead"]

            def used(): ...

            def dead(): ...
            """,
        )
        write("src/repro/b.py", "from repro.a import used\n")
        findings = _lint(root, [target, root / "src" / "repro" / "b.py"])
        assert [f.code for f in findings] == ["API001"]
        assert "'dead'" in findings[0].message

    def test_package_init_reexport_lists_are_exempt(self, fake_repo):
        root, write = fake_repo
        write("src/repro/pkg/impl.py", "def f(): ...\n")
        target = write(
            "src/repro/pkg/__init__.py",
            '__all__ = ["f"]\nfrom repro.pkg.impl import f\n',
        )
        assert _lint(root, [target]) == []

    def test_exports_the_module_itself_uses_are_not_dead(self, fake_repo):
        root, write = fake_repo
        target = write(
            "src/repro/a.py",
            """
            __all__ = ["Result"]

            class Result:
                pass

            def run():
                return Result()
            """,
        )
        assert _lint(root, [target]) == []

    def test_findings_are_restricted_to_the_linted_set(self, fake_repo):
        root, write = fake_repo
        write("src/repro/a.py", '__all__ = ["dead"]\ndef dead(): ...\n')
        target = write("src/repro/b.py", "X = 1\n")
        # a.py is in the model (cross-file resolution) but not in the
        # lint target set, so its dead export is not reported here.
        assert _lint(root, [target]) == []

    def test_suppression_comments_cover_project_findings(self, fake_repo):
        root, write = fake_repo
        write("src/repro/a.py", "def foo(): ...\n")
        target = write(
            "src/repro/b.py",
            "from repro.a import bar  # lint: disable=API001\n",
        )
        assert _lint(root, [target]) == []
