"""Engine mechanics: registry, file iteration, ordering, parse errors."""

from __future__ import annotations

import ast

import pytest

from repro.lint.engine import (
    PARSE_ERROR_CODE,
    LintEngine,
    LintRule,
    find_repo_root,
    iter_python_files,
    register_rule,
    rule_catalog,
)


class TestRegistry:
    def test_catalog_covers_all_documented_rules(self):
        codes = [rule.code for rule in rule_catalog()]
        assert codes == sorted(codes)
        for expected in (
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "INV001",
            "TEL001",
            "CFG001",
        ):
            assert expected in codes

    def test_register_rejects_duplicate_and_missing_codes(self):
        class NoCode(LintRule):
            pass

        with pytest.raises(ValueError, match="no code"):
            register_rule(NoCode)

        class Clash(LintRule):
            code = "DET001"

        with pytest.raises(ValueError, match="duplicate rule code"):
            register_rule(Clash)

    def test_select_unknown_code_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule code"):
            LintEngine(root=tmp_path, select=["NOPE99"])


class TestLintFile:
    def test_syntax_error_becomes_lint000(self, fake_repo):
        root, write = fake_repo
        path = write("src/repro/x.py", "def broken(:\n")
        findings = LintEngine(root=root).lint_file(path)
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]
        assert findings[0].line == 1

    def test_findings_sorted_by_position(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import json
            import time


            def export(data):
                payload = json.dumps(data)
                stamp = time.time()
                return payload, stamp
            """,
        )
        assert [(f.line, f.code) for f in findings] == [
            (6, "DET004"),
            (7, "DET001"),
        ]

    def test_paths_are_repo_relative_posix(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            "import time\nstamp = time.time()\n",
        )
        assert findings[0].path == "src/repro/experiments/x.py"

    def test_select_filters_rules(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/x.py",
            """\
            import json
            import time


            def export(data):
                return json.dumps(data), time.time()
            """,
            select=["DET004"],
        )
        assert [f.code for f in findings] == ["DET004"]


class TestFileDiscovery:
    def test_iter_skips_pycache_and_hidden_and_sorts(self, fake_repo):
        root, write = fake_repo
        write("src/repro/b.py", "")
        write("src/repro/a.py", "")
        write("src/repro/__pycache__/a.py", "")
        write("src/.hidden/c.py", "")
        write("src/repro/notes.txt", "")
        names = [p.name for p in iter_python_files([root / "src"])]
        assert names == ["a.py", "b.py"]

    def test_explicit_file_listed_once(self, fake_repo):
        root, write = fake_repo
        path = write("src/repro/a.py", "")
        files = list(iter_python_files([path, root / "src"]))
        assert files.count(path.resolve()) == 1


class TestRepoRoot:
    def test_walks_up_to_pyproject(self, fake_repo):
        root, write = fake_repo
        write("src/repro/a.py", "")
        assert find_repo_root(root / "src" / "repro") == root.resolve()

    def test_falls_back_to_start(self, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        assert find_repo_root(bare) == bare.resolve()


class TestCustomRules:
    def test_begin_and_end_file_hooks_run(self, fake_repo):
        root, write = fake_repo
        path = write("src/repro/a.py", "x = 1\ny = 2\n")

        class CountAssigns(LintRule):
            code = "TST001"
            title = "test rule"
            hint = "n/a"
            node_types = (ast.Assign,)

            def begin_file(self, ctx):
                self.count = 0

            def visit(self, node, ctx):
                self.count += 1
                return iter(())

            def end_file(self, ctx):
                yield self.finding(
                    ctx, ctx.tree.body[0], f"saw {self.count} assigns"
                )

        engine = LintEngine(root=root, rules=[CountAssigns()])
        findings = engine.lint_file(path)
        assert [f.message for f in findings] == ["saw 2 assigns"]
