"""The whole-program CLI surface: --changed, --prune-baseline, --jobs,
SARIF output, and the content-hash result cache."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.lint.cli import main
from repro.lint.engine import CACHE_DIR_NAME

TRIPPING = """\
import time


def stamp():
    return time.time()
"""

CLEAN = """\
def stamp(sim):
    return sim.now
"""


def _git(root, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=root,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.invalid",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.invalid",
            "HOME": str(root),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def git_repo(fake_repo):
    root, write = fake_repo
    _git(root, "init", "-q")
    write("src/repro/experiments/x.py", CLEAN)
    _git(root, "add", "-A")
    _git(root, "commit", "-q", "-m", "seed")
    return root, write


class TestChanged:
    def test_only_files_changed_against_head_are_linted(
        self, git_repo, capsys
    ):
        root, write = git_repo
        write("src/repro/experiments/x.py", TRIPPING)  # modified
        write("src/repro/experiments/y.py", TRIPPING)  # untracked
        assert main([str(root / "src"), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "x.py:5" in out
        assert "y.py:5" in out

    def test_unchanged_tree_has_nothing_to_lint(self, git_repo, capsys):
        root, _ = git_repo
        assert main([str(root / "src"), "--changed"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_explicit_base_ref_widens_the_diff(self, git_repo, capsys):
        root, write = git_repo
        write("src/repro/experiments/x.py", TRIPPING)
        _git(root, "add", "-A")
        _git(root, "commit", "-q", "-m", "introduce a wall-clock read")
        # Against HEAD the tree is clean; against HEAD~1 the commit shows.
        assert main([str(root / "src"), "--changed"]) == 0
        capsys.readouterr()
        assert main([str(root / "src"), "--changed=HEAD~1"]) == 1
        assert "x.py:5" in capsys.readouterr().out

    def test_bad_ref_is_a_usage_error(self, git_repo, capsys):
        root, _ = git_repo
        assert main([str(root / "src"), "--changed=no-such-ref"]) == 2
        assert capsys.readouterr().err != ""


class TestPruneBaseline:
    def test_prune_rewrites_the_baseline_and_unblocks_strict(
        self, fake_repo, capsys
    ):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        src = str(root / "src")
        assert main([src, "--write-baseline"]) == 0

        write("src/repro/experiments/x.py", CLEAN)  # finding fixed
        capsys.readouterr()
        assert main([src, "--strict-baseline"]) == 1  # stale gate trips

        assert main([src, "--prune-baseline"]) == 0
        captured = capsys.readouterr()
        assert "pruned 1 stale entry" in captured.err
        data = json.loads((root / "lint-baseline.json").read_text())
        assert data["fingerprints"] == {}

        assert main([src, "--strict-baseline"]) == 0

    def test_prune_is_a_no_op_without_stale_entries(self, fake_repo, capsys):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        src = str(root / "src")
        assert main([src, "--write-baseline"]) == 0
        before = (root / "lint-baseline.json").read_text()
        capsys.readouterr()
        assert main([src, "--prune-baseline"]) == 0
        assert "pruned" not in capsys.readouterr().err
        assert (root / "lint-baseline.json").read_text() == before


class TestJobs:
    def test_parallel_findings_match_serial_exactly(self, fake_repo, capsys):
        root, write = fake_repo
        for index in range(6):
            write(f"src/repro/experiments/m{index}.py", TRIPPING)
        src = str(root / "src")

        assert main([src, "--format", "json", "--no-cache"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert (
            main([src, "--format", "json", "--no-cache", "--jobs", "2"]) == 1
        )
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel
        assert serial["counts"]["new"] == 6

    def test_invalid_jobs_value_is_a_usage_error(self, fake_repo, capsys):
        root, _ = fake_repo
        assert main([str(root / "src"), "--jobs", "many"]) == 2
        assert "invalid --jobs" in capsys.readouterr().err


class TestSarif:
    def test_format_sarif_emits_a_valid_log(self, fake_repo, capsys):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        assert main([str(root / "src"), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro.lint"
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert (
            location["artifactLocation"]["uri"]
            == "src/repro/experiments/x.py"
        )
        assert "reproLint/v1" in result["partialFingerprints"]

    def test_grandfathered_findings_are_suppressed_notes(
        self, fake_repo, capsys
    ):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        src = str(root / "src")
        assert main([src, "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([src, "--format", "sarif"]) == 0
        (result,) = json.loads(capsys.readouterr().out)["runs"][0]["results"]
        assert result["level"] == "note"
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "external"

    def test_sarif_file_rides_along_with_text_output(self, fake_repo, capsys):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        report = root / "lint.sarif"
        exit_code = main(
            [str(root / "src"), "--sarif-file", str(report)]
        )
        assert exit_code == 1
        assert "DET001" in capsys.readouterr().out  # text still on stdout
        log = json.loads(report.read_text())
        assert log["runs"][0]["results"]


class TestResultCache:
    def test_second_run_reuses_cached_findings(self, fake_repo, capsys):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        src = str(root / "src")

        assert main([src, "--format", "json"]) == 1
        cold = json.loads(capsys.readouterr().out)
        cache_file = root / CACHE_DIR_NAME / "results.json"
        assert cache_file.is_file()

        assert main([src, "--format", "json"]) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm == cold

    def test_edits_invalidate_by_content_hash(self, fake_repo, capsys):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        src = str(root / "src")
        assert main([src]) == 1
        write("src/repro/experiments/x.py", CLEAN)
        capsys.readouterr()
        assert main([src]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_select_change_invalidates_the_cache_signature(
        self, fake_repo, capsys
    ):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        src = str(root / "src")
        assert main([src, "--select", "INV001"]) == 0  # caches empty result
        capsys.readouterr()
        assert main([src]) == 1  # full run must not reuse it
        assert "DET001" in capsys.readouterr().out

    def test_no_cache_leaves_no_directory_behind(self, fake_repo):
        root, write = fake_repo
        write("src/repro/experiments/x.py", TRIPPING)
        assert main([str(root / "src"), "--no-cache"]) == 1
        assert not (root / CACHE_DIR_NAME).exists()
