"""The repro CLI dispatch table and its ``lint`` target."""

from __future__ import annotations

import pytest

import repro.cli as cli


class TestDispatchTable:
    def test_every_parser_choice_has_a_handler(self):
        parser = cli._build_parser()
        target_action = next(
            a for a in parser._actions if a.dest == "target"
        )
        assert list(target_action.choices) == sorted(cli._HANDLERS)

    def test_expected_targets_registered(self):
        for target in (
            "report",
            "fig4",
            "fig9",
            "table1",
            "sweep",
            "chaos",
            "telemetry",
            "lint",
            "serving",
        ):
            assert target in cli._HANDLERS

    def test_every_target_has_a_description(self):
        for target in cli._HANDLERS:
            assert cli._DESCRIPTIONS.get(target), (
                f"target {target!r} lacks a --list-targets description"
            )

    def test_list_targets_covers_dispatch_table(self):
        listing = cli.list_targets()
        for target in cli._HANDLERS:
            assert f"\n  {target}" in listing

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="duplicate CLI target"):

            @cli.register_target("lint")
            def clash(args):  # pragma: no cover - never dispatched
                return 0

    def test_figure_targets_share_one_handler(self):
        handlers = {cli._HANDLERS[f"fig{n}"] for n in range(4, 10)}
        assert len(handlers) == 1
        assert cli._HANDLERS["report"] in handlers


class TestLintTarget:
    def test_lint_target_forwards_to_repro_lint(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").touch()
        pkg = tmp_path / "src" / "repro" / "experiments"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text("import time\nstamp = time.time()\n")
        rc = cli.main(
            ["lint", "--paths", str(tmp_path / "src"), "--lint-format", "json"]
        )
        assert rc == 1
        assert '"code": "DET001"' in capsys.readouterr().out
