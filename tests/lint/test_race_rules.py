"""RACE001/RACE002: lock discipline and handoff escapes on the serving path."""

from __future__ import annotations

import pytest

from repro.lint.rules_program import LockDisciplineRule  # noqa: F401  (public API)


#: The deliberately-injected race the whole analysis exists to catch: a
#: thread-spawning class whose worker loop writes a shared counter with
#: the lock only *sometimes* held.
INJECTED_RACE = """
    import threading

    class RacyCounter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0
            self._worker = threading.Thread(target=self._loop, daemon=True)

        def start(self):
            self._worker.start()

        def _loop(self):
            while True:
                self.count += 1  # unlocked shared write

        def read(self):
            with self._lock:
                return self.count
"""


class TestLockDiscipline:
    def test_injected_race_is_caught(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/racy.py", INJECTED_RACE, select=["RACE001"]
        )
        assert [f.code for f in findings] == ["RACE001"]
        assert "count" in findings[0].message
        assert "_loop" in findings[0].message

    def test_scope_is_serving_and_runner_only(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/network/racy.py", INJECTED_RACE, select=["RACE001"]
        )
        assert findings == []

    def test_consistently_locked_class_is_clean(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/clean.py",
            """
            import threading

            class LockedCounter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
            """,
            select=["RACE001"],
        )
        assert findings == []

    def test_conditional_lock_idiom_is_clean(self, lint_snippet):
        # The store's declared single-threaded mode: `self._lock is
        # None` branches count as safe, and the private helper called
        # from both arms inherits the held state by intersection.
        findings = lint_snippet(
            "src/repro/serving/condstore.py",
            """
            import threading

            class CondStore:
                def __init__(self, thread_safe):
                    self._lock = threading.Lock() if thread_safe else None
                    self.applied = 0

                def apply(self, update):
                    if self._lock is None:
                        return self._apply(update)
                    with self._lock:
                        return self._apply(update)

                def _apply(self, update):
                    self.applied += 1
                    return update
            """,
            select=["RACE001"],
        )
        assert findings == []

    def test_helper_reached_without_the_lock_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/leaky.py",
            """
            import threading

            class Leaky:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def locked_path(self, n):
                    with self._lock:
                        self._bump(n)

                def unlocked_path(self, n):
                    self._bump(n)

                def _bump(self, n):
                    self.total += n
            """,
            select=["RACE001"],
        )
        assert len(findings) == 1
        assert "_bump" in findings[0].message

    def test_init_writes_are_exempt(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/initonly.py",
            """
            import threading

            class Built:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.ready = True
            """,
            select=["RACE001"],
        )
        assert findings == []

    def test_classes_without_concurrency_are_ignored(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/plain.py",
            """
            class PlainAccumulator:
                def __init__(self):
                    self.total = 0

                def add(self, n):
                    self.total += n
            """,
            select=["RACE001"],
        )
        assert findings == []

    def test_mutator_calls_through_aliases_are_writes(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/aliased.py",
            """
            import threading

            class Aliased:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._gates = {}

                def purge(self, node_id):
                    gates = self._gates
                    gates.pop(node_id, None)
            """,
            select=["RACE001"],
        )
        assert len(findings) == 1
        assert "_gates" in findings[0].message

    def test_lock_guarded_write_paths_of_the_real_store_shape(self, lint_snippet):
        # crash/restore wrapped in the conditional-lock idiom, mirroring
        # the post-fix ShardedLocationStore shape.
        findings = lint_snippet(
            "src/repro/serving/storeish.py",
            """
            import threading

            class Storeish:
                def __init__(self, thread_safe):
                    self._lock = threading.Lock() if thread_safe else None
                    self._down = set()

                def crash(self, index):
                    if self._lock is None:
                        return self._crash(index)
                    with self._lock:
                        return self._crash(index)

                def _crash(self, index):
                    self._down.add(index)
                    return index
            """,
            select=["RACE001"],
        )
        assert findings == []


class TestHandoffEscape:
    def test_mutating_a_submitted_object_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/handoff.py",
            """
            def fan_out(pool, work, batch):
                future = pool.submit(work, batch)
                batch.append("more")
                return future
            """,
            select=["RACE002"],
        )
        assert [f.code for f in findings] == ["RACE002"]
        assert "batch" in findings[0].message

    def test_mutation_before_the_handoff_is_clean(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/handoff.py",
            """
            def fan_out(pool, work, batch):
                batch.append("more")
                return pool.submit(work, batch)
            """,
            select=["RACE002"],
        )
        assert findings == []

    def test_mutation_under_a_lock_is_clean(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/handoff.py",
            """
            def fan_out(pool, work, batch, lock):
                future = pool.submit(work, batch)
                with lock:
                    batch.append("more")
                return future
            """,
            select=["RACE002"],
        )
        assert findings == []

    def test_rebound_local_no_longer_tracks_the_shipped_object(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/experiments/handoff.py",
            """
            def fan_out(pool, work, batch):
                future = pool.submit(work, batch)
                batch = []
                batch.append("fresh object, not the shipped one")
                return future
            """,
            select=["RACE002"],
        )
        assert findings == []

    def test_thread_args_count_as_handoffs(self, lint_snippet):
        findings = lint_snippet(
            "src/repro/serving/threaded.py",
            """
            import threading

            def spawn(sink):
                worker = threading.Thread(target=print, args=(sink,))
                worker.start()
                sink["k"] = 1
                return worker
            """,
            select=["RACE002"],
        )
        assert [f.code for f in findings] == ["RACE002"]


def test_runner_and_serving_modules_lint_clean_for_races():
    """The real serving path holds its locks (post-fix regression gate)."""
    from pathlib import Path

    from repro.lint.engine import LintEngine, find_repo_root

    root = find_repo_root(Path(__file__).resolve())
    engine = LintEngine(root=root, select=["RACE001", "RACE002"])
    findings = engine.lint(
        [root / "src" / "repro" / "serving", root / "src" / "repro" / "experiments"]
    )
    assert findings == []


@pytest.mark.parametrize("method", ["start", "stop"])
def test_frontend_lifecycle_is_lock_guarded(method):
    """start/stop flip their flags under the counter lock (the RACE001 fix)."""
    import inspect

    from repro.serving.frontend import ThreadedFrontEnd

    source = inspect.getsource(getattr(ThreadedFrontEnd, method))
    assert "with self._counter_lock:" in source
