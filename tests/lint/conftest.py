"""Shared helpers: build a miniature repo layout and lint snippets in it.

Rules scope themselves by repo-relative path (``src/repro/...``), so
fixtures write snippets into a fake checkout under ``tmp_path`` with a
``pyproject.toml`` root marker and lint them with an engine rooted
there.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.engine import LintEngine


@pytest.fixture
def lint_snippet(tmp_path):
    """Lint *source* as if it lived at *rel* inside a checkout."""

    def run(rel: str, source: str, select: list[str] | None = None):
        (tmp_path / "pyproject.toml").touch()
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        engine = LintEngine(root=tmp_path, select=select)
        return engine.lint_file(path)

    return run


@pytest.fixture
def fake_repo(tmp_path):
    """A writable fake checkout root; returns (root, write) helpers."""
    (tmp_path / "pyproject.toml").touch()

    def write(rel: str, source: str) -> Path:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    return tmp_path, write
