"""Harness fault-injection wiring and fast-path parity tests."""

import pytest

from repro.experiments import ExperimentConfig, MobileGridExperiment, run_experiment
from repro.faults import (
    ChannelDegradation,
    FaultSchedule,
    GatewayOutage,
    NodeChurn,
)
from repro.mobility.population import PopulationSpec


def tiny_config(duration=20.0, **kwargs):
    return ExperimentConfig(
        duration=duration,
        dth_factors=(1.0,),
        population=PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        ),
        **kwargs,
    )


def lane_fingerprint(result, name="adf-1"):
    lane = result.lanes[name]
    return (
        lane.total_lus,
        lane.mean_rmse(with_le=True),
        lane.mean_rmse(with_le=False),
    )


class TestFastPathParity:
    """Satellite check: the harness's inlined fused gateway path must be
    observationally identical to routing through WirelessGateway.receive."""

    def test_inlined_path_matches_general_path(self):
        config = tiny_config()
        fused = MobileGridExperiment(config)
        general = MobileGridExperiment(config)
        for lane in general.lanes:
            for gateway in lane.gateways.values():
                assert gateway._fused_uplink  # default substrate is fused
                # Forcing the slow path is the point of this parity test.
                gateway._fused_uplink = False  # lint: disable=INV001
        fused_result = fused.run()
        general_result = general.run()
        for name in fused_result.lanes:
            assert lane_fingerprint(fused_result, name) == lane_fingerprint(
                general_result, name
            )
        for lane_f, lane_g in zip(fused.lanes, general.lanes):
            for region_id, gw_f in lane_f.gateways.items():
                gw_g = lane_g.gateways[region_id]
                assert (gw_f.received, gw_f.forwarded, gw_f.discarded) == (
                    gw_g.received,
                    gw_g.forwarded,
                    gw_g.discarded,
                )
                for field in ("sent", "delivered", "dropped", "bytes_sent"):
                    assert getattr(gw_f.uplink.stats, field) == getattr(
                        gw_g.uplink.stats, field
                    )


class TestFaultWiring:
    def test_no_schedule_means_no_injector(self):
        experiment = MobileGridExperiment(tiny_config())
        assert experiment.fault_injector is None

    def test_empty_schedule_means_no_injector(self):
        experiment = MobileGridExperiment(tiny_config(faults=FaultSchedule()))
        assert experiment.fault_injector is None

    def test_empty_schedule_is_bit_identical_to_none(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config(faults=FaultSchedule()))
        assert lane_fingerprint(a) == lane_fingerprint(b)
        assert lane_fingerprint(a, "ideal") == lane_fingerprint(b, "ideal")

    def test_outage_schedule_drops_lus(self):
        schedule = FaultSchedule(
            tuple(
                GatewayOutage(region_id=region_id, start=5.0, duration=10.0)
                for region_id in ("R1", "R2", "B1", "B2")
            )
        )
        clean = run_experiment(tiny_config())
        faulted_experiment = MobileGridExperiment(tiny_config(faults=schedule))
        faulted = faulted_experiment.run()
        assert faulted.ideal.total_lus < clean.ideal.total_lus
        timeline = faulted_experiment.fault_injector.timeline
        assert any(e.action == "apply" for e in timeline)
        assert any(e.action == "revert" for e in timeline)
        # Every gateway is operational again after the run.
        for lane in faulted_experiment.lanes:
            assert all(gw.operational for gw in lane.gateways.values())

    def test_degradation_schedule_loses_traffic(self):
        schedule = FaultSchedule(
            (
                ChannelDegradation(
                    start=2.0, duration=15.0, loss_probability=0.8
                ),
            )
        )
        clean = run_experiment(tiny_config())
        faulted = run_experiment(tiny_config(faults=schedule))
        assert faulted.ideal.total_lus < clean.ideal.total_lus

    def test_churn_schedule_rejected_by_harness(self):
        schedule = FaultSchedule(
            (NodeChurn(start=0.0, duration=10.0, hazard=0.1, mean_outage=5.0),)
        )
        with pytest.raises(ValueError, match="churn"):
            MobileGridExperiment(tiny_config(faults=schedule))

    def test_faulted_run_still_deterministic(self):
        schedule = FaultSchedule(
            (
                GatewayOutage(region_id="R1", start=3.0, duration=5.0),
                ChannelDegradation(
                    start=8.0, duration=6.0, loss_probability=0.5
                ),
            )
        )
        a = run_experiment(tiny_config(faults=schedule))
        b = run_experiment(tiny_config(faults=schedule))
        assert lane_fingerprint(a) == lane_fingerprint(b)
