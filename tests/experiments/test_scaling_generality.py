"""Tests for the scaling and generality study modules."""

import pytest

from repro.experiments.generality import (
    MOBILITY_GENERATORS,
    generality_study,
)
from repro.experiments.scaling import scaling_sweep


class TestScalingSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return scaling_sweep((1, 2), duration=20.0)

    def test_point_per_factor(self, points):
        assert [p.factor for p in points] == [1, 2]

    def test_node_counts_scale(self, points):
        assert points[0].node_count == 140
        assert points[1].node_count == 280

    def test_reduction_stable(self, points):
        assert abs(points[0].reduction - points[1].reduction) < 0.12

    def test_wall_time_recorded(self, points):
        assert all(p.wall_seconds > 0 for p in points)

    def test_nodes_per_cluster_grows(self, points):
        assert points[1].nodes_per_cluster() > points[0].nodes_per_cluster()

    def test_empty_factors_rejected(self):
        with pytest.raises(ValueError):
            scaling_sweep((), duration=5.0)


class TestGeneralityStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return generality_study(n_nodes=12, duration=40.0)

    def test_all_generators_covered(self, results):
        assert {r.model for r in results} == set(MOBILITY_GENERATORS)

    def test_reduction_everywhere(self, results):
        for r in results:
            assert r.reduction > 0.1, r.model

    def test_le_never_hurts_much(self, results):
        for r in results:
            assert r.le_ratio < 1.2, r.model

    def test_errors_bounded(self, results):
        for r in results:
            assert r.mean_rmse_with_le < 10.0

    def test_subset_of_models(self):
        only_rwp = {"random-waypoint": MOBILITY_GENERATORS["random-waypoint"]}
        results = generality_study(models=only_rwp, n_nodes=6, duration=20.0)
        assert len(results) == 1

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            generality_study(models={}, n_nodes=4, duration=10.0)


class TestPopulationSweep:
    @pytest.fixture(scope="class")
    def points(self):
        from repro.experiments.scaling import population_sweep

        return population_sweep((300, 600), duration=5.0)

    def test_point_per_size(self, points):
        assert [p.target_nodes for p in points] == [300, 600]
        assert points[1].node_count > points[0].node_count

    def test_peak_rss_reported_and_monotone(self, points):
        """ru_maxrss is a high-water mark: positive and non-decreasing."""
        assert points[0].peak_rss_mb > 0.0
        assert points[1].peak_rss_mb >= points[0].peak_rss_mb

    def test_table_has_rss_column(self, points):
        from repro.experiments.scaling import render_population_table

        table = render_population_table(points)
        assert "peak MB" in table.splitlines()[0]

    def test_generated_city_campus(self):
        import numpy as np

        from repro.campus.generator import generate_grid_campus
        from repro.experiments.scaling import population_sweep

        campus = generate_grid_campus(
            blocks_x=3, blocks_y=3, rng=np.random.default_rng(7)
        )
        points = population_sweep((400,), duration=5.0, campus=campus)
        assert points[0].node_count > 0
        assert points[0].reduction > 0.0

    def test_batched_mode_and_trace(self, tmp_path):
        from repro.experiments.scaling import population_sweep
        from repro.serving import read_trace

        path = tmp_path / "sweep.jsonl"
        points = population_sweep(
            (200, 400),
            duration=5.0,
            cluster_mode="batched",
            trace_path=path,
        )
        meta, records = read_trace(path)
        # Only the largest rung is recorded.
        assert meta["node_count"] == points[1].node_count
        assert meta["cluster_mode"] == "batched"
        assert records
