"""Tests for the HLA-federated experiment."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.federation import (
    mobile_grid_fom,
    run_federated_experiment,
)


@pytest.fixture(scope="module")
def fed_result():
    return run_federated_experiment(
        ExperimentConfig(duration=30.0), dth_factor=1.0
    )


class TestFom:
    def test_classes_declared(self):
        fom = mobile_grid_fom()
        assert fom.object_class("MobileNode").has_attribute("x")
        assert "dth" in fom.interaction_class("LocationUpdate").parameters


class TestFederatedRun:
    def test_reflections_count(self, fed_result):
        # 140 nodes x 30 steps, every step reflected to the ADF federate.
        assert fed_result.reflections == 140 * 30

    def test_filtering_happened(self, fed_result):
        assert 0 < fed_result.lus_forwarded < fed_result.reflections

    def test_broker_trails_by_at_most_one_step(self, fed_result):
        """TSO lookahead: only the final step's LUs may be in flight."""
        in_flight = fed_result.lus_forwarded - fed_result.lus_received_by_broker
        assert 0 <= in_flight <= 140

    def test_reduction_positive(self, fed_result):
        assert 0.2 < fed_result.reduction_vs_ideal < 0.8

    def test_rmse_series_collected(self, fed_result):
        assert len(fed_result.rmse_series) > 0
        # One-step delivery delay bounds errors above zero but they must
        # stay campus-scale sane.
        assert fed_result.rmse_series.mean() < 30.0

    def test_matches_direct_harness_roughly(self, fed_result):
        """The federated reduction should track the direct harness within
        a few percentage points (same population, same filter)."""
        from repro.experiments import run_experiment

        direct = run_experiment(
            ExperimentConfig(duration=30.0, dth_factors=(1.0,))
        )
        direct_reduction = direct.reduction_vs_ideal("adf-1")
        assert abs(direct_reduction - fed_result.reduction_vs_ideal) < 0.10
