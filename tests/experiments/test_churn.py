"""Tests for the churn study."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.churn import churn_study


@pytest.fixture(scope="module")
def churned():
    return churn_study(
        ExperimentConfig(duration=40.0), disconnect_hazard=0.02
    )


class TestChurnStudy:
    def test_no_churn_baseline(self):
        result = churn_study(
            ExperimentConfig(duration=20.0), disconnect_hazard=0.0
        )
        assert result.disconnections == 0
        assert result.reconnection_transmits == 0
        assert result.reduction > 0.2

    def test_churn_happens(self, churned):
        assert churned.disconnections > 0

    def test_every_reconnection_transmits_at_most_once(self, churned):
        assert churned.reconnect_overhead <= 1.0 + 1e-9

    def test_reduction_survives_churn(self, churned):
        assert churned.reduction > 0.2

    def test_errors_bounded(self, churned):
        assert 0.0 < churned.mean_rmse < 10.0

    def test_hazard_validation(self):
        with pytest.raises(ValueError):
            churn_study(ExperimentConfig(duration=5.0), disconnect_hazard=2.0)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            churn_study(ExperimentConfig(duration=5.0), mean_outage=0.0)

    def test_deterministic(self):
        a = churn_study(ExperimentConfig(duration=15.0), disconnect_hazard=0.01)
        b = churn_study(ExperimentConfig(duration=15.0), disconnect_hazard=0.01)
        assert a.disconnections == b.disconnections
        assert a.reduction == b.reduction


class TestChurnEdgeCases:
    def test_same_seed_identical_result(self):
        """Full frozen-dataclass equality, not just a couple of fields."""
        a = churn_study(ExperimentConfig(duration=20.0), disconnect_hazard=0.02)
        b = churn_study(ExperimentConfig(duration=20.0), disconnect_hazard=0.02)
        assert a == b

    def test_different_seed_differs(self):
        a = churn_study(
            ExperimentConfig(duration=20.0, seed=1), disconnect_hazard=0.02
        )
        b = churn_study(
            ExperimentConfig(duration=20.0, seed=2), disconnect_hazard=0.02
        )
        assert a != b

    def test_zero_hazard_no_reconnection_lus(self):
        result = churn_study(
            ExperimentConfig(duration=10.0), disconnect_hazard=0.0
        )
        assert result.disconnections == 0
        assert result.reconnection_transmits == 0
        assert result.reconnect_overhead == 0.0

    def test_outage_shorter_than_dt_reconnects_next_step(self):
        """An outage below the reporting interval is clamped to one step.

        With hazard 1.0 every connected node disconnects on its hazard
        draw, sits out exactly one step (the sub-dt outage is clamped to
        dt), and reconnects the step after — so a run of N steps yields
        roughly N/2 disconnections per node, and every reconnection
        transmits (the ADF forgot the node).
        """
        config = ExperimentConfig(duration=10.0)
        result = churn_study(
            config, disconnect_hazard=1.0, mean_outage=1e-6
        )
        nodes, steps = result.node_count, config.steps()
        expected = nodes * steps / 2
        assert expected * 0.8 <= result.disconnections <= expected * 1.2
        # Every completed outage forced a reconnection LU.
        assert result.reconnection_transmits > 0
        assert result.reconnect_overhead > 0.7
