"""Tests for the churn study."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.churn import churn_study


@pytest.fixture(scope="module")
def churned():
    return churn_study(
        ExperimentConfig(duration=40.0), disconnect_hazard=0.02
    )


class TestChurnStudy:
    def test_no_churn_baseline(self):
        result = churn_study(
            ExperimentConfig(duration=20.0), disconnect_hazard=0.0
        )
        assert result.disconnections == 0
        assert result.reconnection_transmits == 0
        assert result.reduction > 0.2

    def test_churn_happens(self, churned):
        assert churned.disconnections > 0

    def test_every_reconnection_transmits_at_most_once(self, churned):
        assert churned.reconnect_overhead <= 1.0 + 1e-9

    def test_reduction_survives_churn(self, churned):
        assert churned.reduction > 0.2

    def test_errors_bounded(self, churned):
        assert 0.0 < churned.mean_rmse < 10.0

    def test_hazard_validation(self):
        with pytest.raises(ValueError):
            churn_study(ExperimentConfig(duration=5.0), disconnect_hazard=2.0)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            churn_study(ExperimentConfig(duration=5.0), mean_outage=0.0)

    def test_deterministic(self):
        a = churn_study(ExperimentConfig(duration=15.0), disconnect_hazard=0.01)
        b = churn_study(ExperimentConfig(duration=15.0), disconnect_hazard=0.01)
        assert a.disconnections == b.disconnections
        assert a.reduction == b.reduction
