"""Tests for the per-figure data generators."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    fig4_lus_per_second,
    fig5_accumulated_lus,
    fig6_transmission_rate_by_region,
    fig7_rmse_over_time,
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
    run_experiment,
    table1_specification,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(ExperimentConfig(duration=40.0))


class TestTable1:
    def test_five_rows(self):
        rows = table1_specification()
        assert len(rows) == 5

    def test_totals_sum_to_140(self):
        assert sum(r.node_count for r in table1_specification()) == 140

    def test_velocity_ranges_match_paper(self):
        ranges = {(r.region_kind, r.mobility_pattern, r.node_type): r.velocity_range
                  for r in table1_specification()}
        assert ranges[("Road", "LMS", "Human")] == "1~4m/s"
        assert ranges[("Road", "LMS", "Vehicle")] == "4~10m/s"
        assert ranges[("Building", "SS", "Human")] == "0m/s"
        assert ranges[("Building", "RMS", "Human")] == "0~1m/s"
        assert ranges[("Building", "LMS", "Human")] == "1~1.5m/s"

    def test_region_counts(self):
        rows = table1_specification()
        assert {r.region_count for r in rows if r.region_kind == "Road"} == {5}
        assert {r.region_count for r in rows if r.region_kind == "Building"} == {6}


class TestFig4:
    def test_series_per_lane(self, result):
        series = fig4_lus_per_second(result)
        assert set(series) == set(result.lanes)

    def test_one_sample_per_second(self, result):
        series = fig4_lus_per_second(result)
        assert len(series["ideal"]) == 40

    def test_ideal_is_constant_140(self, result):
        series = fig4_lus_per_second(result)["ideal"]
        # First bin may differ (no step at t=0); the rest are 140.
        assert all(v == 140.0 for _, v in list(series)[1:])

    def test_adf_below_ideal(self, result):
        series = fig4_lus_per_second(result)
        assert series["adf-1.25"].total() < series["ideal"].total()


class TestFig5:
    def test_accumulation_monotone(self, result):
        for series in fig5_accumulated_lus(result).values():
            values = list(series.values)
            assert values == sorted(values)

    def test_final_value_is_total(self, result):
        series = fig5_accumulated_lus(result)
        _, final = series["adf-1"].last()
        assert final == result.lanes["adf-1"].total_lus


class TestFig6:
    def test_excludes_ideal(self, result):
        assert "ideal" not in fig6_transmission_rate_by_region(result)

    def test_rates_in_unit_interval(self, result):
        for rates in fig6_transmission_rate_by_region(result).values():
            assert 0.0 <= rates["building"] <= 1.0
            assert 0.0 <= rates["road"] <= 1.0


class TestFig7:
    def test_both_series_present(self, result):
        data = fig7_rmse_over_time(result)
        for lane in data.values():
            assert len(lane["with_le"]) > 0
            assert len(lane["without_le"]) > 0


class TestFig89:
    def test_keys(self, result):
        for data in (fig8_rmse_by_region_without_le(result),
                     fig9_rmse_by_region_with_le(result)):
            for row in data.values():
                assert set(row) == {"road", "building", "ratio"}

    def test_road_dominates(self, result):
        for row in fig8_rmse_by_region_without_le(result).values():
            assert row["road"] > row["building"]
