"""Tests for the Markdown report writer."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.markdown_report import (
    render_markdown_report,
    write_markdown_report,
)


@pytest.fixture(scope="module")
def report():
    result = run_experiment(ExperimentConfig(duration=20.0))
    return render_markdown_report(result, title="Test run")


class TestMarkdownReport:
    def test_title(self, report):
        assert report.startswith("# Test run")

    def test_all_sections_present(self, report):
        for heading in (
            "## Table 1",
            "## Figs. 4-5",
            "## Fig. 6",
            "## Fig. 7",
            "## Fig. 8",
            "## Fig. 9",
            "## Cluster dynamics",
        ):
            assert heading in report

    def test_tables_are_valid_markdown(self, report):
        lines = report.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and "---" in line:
                header = lines[i - 1]
                assert header.count("|") == line.count("|")

    def test_charts_fenced(self, report):
        assert report.count("```") % 2 == 0
        assert "LUs per second" in report

    def test_every_lane_mentioned(self, report):
        for lane in ("ideal", "adf-0.75", "adf-1", "adf-1.25"):
            assert lane in report

    def test_write_to_file(self, tmp_path):
        result = run_experiment(
            ExperimentConfig(duration=10.0, dth_factors=(1.0,))
        )
        path = write_markdown_report(result, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Mobile-grid evaluation report")
