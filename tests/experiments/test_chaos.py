"""Tests for the chaos study and resilience report."""

import json

import pytest

from repro.experiments import ChaosConfig, ExperimentConfig, chaos_study, chaos_sweep
from repro.experiments.chaos import UPLINK_REGION_ID
from repro.faults import FaultSchedule
from repro.mobility.population import PopulationSpec


def tiny_config(duration=40.0, seed=7):
    return ExperimentConfig(
        duration=duration,
        seed=seed,
        population=PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        ),
    )


@pytest.fixture(scope="module")
def chaotic():
    return chaos_study(tiny_config(), intensity=0.6)


class TestZeroIntensity:
    def test_fault_free_control(self):
        result = chaos_study(tiny_config(duration=20.0), intensity=0.0)
        assert result.plain.lost == 0
        assert result.arq.lost == 0
        assert result.plain.retransmits == 0
        assert result.arq.retransmits == 0
        assert result.timeline == ()
        assert result.schedule == ()
        # All three lanes saw identical LUs: no inflation at all.
        assert result.plain.rmse_inflation == 1.0
        assert result.arq.rmse_inflation == 1.0
        assert result.plain.recovery_time == 0.0
        assert result.lu_overhead == pytest.approx(1.0)


class TestFaultedRun:
    def test_faults_cost_the_plain_lane(self, chaotic):
        assert chaotic.plain.lost > 0
        assert chaotic.plain.rmse_inflation > 1.0
        assert chaotic.timeline  # injector actually fired

    def test_arq_recovers_most_losses(self, chaotic):
        # Acceptance bar: the reliable lane wins back >= 95% of what the
        # fire-and-forget lane loses under the injected faults.
        assert chaotic.recovered_fraction >= 0.95
        assert chaotic.arq.lost <= chaotic.plain.lost

    def test_recovery_costs_retransmissions(self, chaotic):
        assert chaotic.arq.retransmits > 0
        assert chaotic.lu_overhead > 1.0

    def test_arq_tracks_truth_better(self, chaotic):
        assert chaotic.arq.mean_rmse <= chaotic.plain.mean_rmse

    def test_loss_only_schedule_fully_recovered(self):
        # Without outage windows the retry budget faces only burst loss;
        # the ARQ lane must recover essentially everything.
        result = chaos_study(
            tiny_config(duration=30.0),
            chaos=ChaosConfig(outages=False),
            intensity=0.8,
        )
        assert result.plain.lost > 0
        assert result.recovered_fraction >= 0.95

    def test_intensity_bounds(self):
        with pytest.raises(ValueError):
            chaos_study(tiny_config(duration=5.0), intensity=1.5)

    def test_explicit_schedule_overrides_intensity(self):
        result = chaos_study(
            tiny_config(duration=20.0),
            intensity=0.9,
            schedule=FaultSchedule(),
        )
        assert result.plain.lost == 0
        assert result.schedule == ()


class TestChurn:
    def test_churn_disconnects_nodes(self):
        result = chaos_study(
            tiny_config(duration=40.0),
            chaos=ChaosConfig(churn=True),
            intensity=1.0,
        )
        assert any(
            entry["kind"] == "NodeChurn" for entry in result.schedule
        )
        # hazard 0.004/s over 28 nodes x 40 s: expect at least one event
        # under the fixed seed (deterministic, so this cannot flake).
        assert result.disconnections >= 1


class TestReproducibility:
    def test_same_seed_same_report_bytes(self):
        config = tiny_config(duration=30.0)
        a = chaos_sweep((0.0, 0.6), config)
        b = chaos_sweep((0.0, 0.6), config)
        assert a.to_json() == b.to_json()

    def test_different_seed_different_report(self):
        a = chaos_sweep((0.6,), tiny_config(duration=30.0, seed=1))
        b = chaos_sweep((0.6,), tiny_config(duration=30.0, seed=2))
        assert a.to_json() != b.to_json()

    def test_timeline_is_schedule_applied(self, chaotic):
        applies = [e for e in chaotic.timeline if e["action"] == "apply"]
        reverts = [e for e in chaotic.timeline if e["action"] == "revert"]
        assert len(applies) == len(reverts)
        # The blackout targets the synthetic uplink region's gateway.
        assert any(e["target"] == f"gw.{UPLINK_REGION_ID}" for e in applies)


class TestReport:
    def test_render_mentions_lanes_and_intensities(self):
        report = chaos_sweep((0.0, 0.6), tiny_config(duration=20.0))
        text = report.render()
        assert "plain" in text and "arq" in text
        assert "0.00" in text and "0.60" in text
        assert "recovered" in text

    def test_json_round_trip(self):
        report = chaos_sweep((0.5,), tiny_config(duration=20.0))
        parsed = json.loads(report.to_json())
        assert len(parsed["results"]) == 1
        result = parsed["results"][0]
        assert result["intensity"] == 0.5
        assert set(result) >= {
            "plain",
            "arq",
            "offered",
            "schedule",
            "timeline",
            "recovered_fraction",
        }

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            chaos_sweep((), tiny_config(duration=5.0))


class TestCliTarget:
    def test_chaos_smoke_runs_and_exports(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "resilience.json"
        assert (
            main(["chaos", "--smoke", "--export-json", str(out_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "Resilience report" in out
        payload = json.loads(out_path.read_text())
        assert payload["results"]

    def test_chaos_smoke_byte_reproducible(self, capsys, tmp_path):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["chaos", "--smoke", "--intensities", "0.7", "--export-json", str(a)])
        main(["chaos", "--smoke", "--intensities", "0.7", "--export-json", str(b)])
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
