"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Road" in out and "Building" in out

    def test_report_short_run(self, capsys):
        assert main(["report", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out

    @pytest.mark.parametrize("target", ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"])
    def test_each_figure_target(self, capsys, target):
        assert main([target, "--duration", "10"]) == 0
        assert capsys.readouterr().out.strip()

    def test_general_df_flag(self, capsys):
        assert main(["fig4", "--duration", "5", "--general-df"]) == 0
        assert "gdf-1" in capsys.readouterr().out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["figure-99"])

    def test_seed_flag(self, capsys):
        assert main(["fig5", "--duration", "5", "--seed", "9"]) == 0

    def test_map_target(self, capsys):
        assert main(["map"]) == 0
        out = capsys.readouterr().out
        assert "B4" in out

    def test_confusion_target(self, capsys):
        assert main(["confusion", "--duration", "25"]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_energy_target(self, capsys):
        assert main(["energy", "--duration", "8"]) == 0
        assert "saved vs ideal" in capsys.readouterr().out

    def test_replicate_target(self, capsys):
        assert main(["replicate", "--duration", "8", "--seeds", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "95% CI" in out and "n=2" in out

    def test_plot_flag(self, capsys):
        assert main(["fig4", "--duration", "8", "--plot"]) == 0
        assert "└" in capsys.readouterr().out

    def test_fig6_plot(self, capsys):
        assert main(["fig6", "--duration", "8", "--plot"]) == 0
        assert "█" in capsys.readouterr().out

    def test_export_flags(self, capsys, tmp_path):
        json_path = tmp_path / "r.json"
        csv_path = tmp_path / "r.csv"
        assert main([
            "fig5", "--duration", "6",
            "--export-json", str(json_path),
            "--export-csv", str(csv_path),
        ]) == 0
        assert json_path.exists() and csv_path.exists()

    def test_config_file(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text("dth_factors = [1.0]\n")
        assert main([
            "fig4", "--duration", "6", "--config", str(config)
        ]) == 0
        out = capsys.readouterr().out
        assert "adf-1:" in out
        assert "adf-0.75" not in out


class TestTargetListing:
    def test_list_targets_flag(self, capsys):
        assert main(["--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "available targets:" in out
        for target in ("report", "serving", "sweep", "lint"):
            assert f"\n  {target}" in out

    def test_bare_invocation_lists_targets(self, capsys):
        assert main([]) == 0
        assert "available targets:" in capsys.readouterr().out

    def test_every_target_has_a_description(self, capsys):
        assert main(["--list-targets"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines()[1:]:
            name, _, description = line.strip().partition("  ")
            assert description.strip(), f"target {name} lacks a description"


class TestServingCli:
    def test_record_then_replay(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "serving", "--smoke", "--record", str(trace),
        ]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main([
            "serving", "--replay", str(trace), "--rate", "3000",
            "--shards", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out and "p99=" in out

    def test_smoke_exports_deterministic_report(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["serving", "--smoke", "--export-json", str(a)]) == 0
        assert main(["serving", "--smoke", "--export-json", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        import json

        report = json.loads(a.read_text())
        assert report["latency_p99"] > 0.0
        assert "shed_rate" in report
        assert (
            "serving.ingest.latency{service=serving}" in report["metrics"]
        )

    def test_standalone_record(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main([
            "serving", "--record", str(trace), "--duration", "5",
        ]) == 0
        assert trace.exists()
        assert "wrote" in capsys.readouterr().out

    def test_mode_required(self, capsys):
        assert main(["serving"]) == 2
        assert "needs --record" in capsys.readouterr().err


class TestSweepCli:
    GRID = (
        'replications = 1\n'
        '[axes]\nduration = [2.0, 3.0]\n'
        '[base]\nduration = 2.0\ndth_factors = [1.0]\n'
        '[base.population]\n'
        'road_humans_per_road = 1\nroad_vehicles_per_road = 0\n'
        'building_stop = 1\nbuilding_random = 0\nbuilding_linear = 0\n'
    )

    def test_sweep_grid_file(self, capsys, tmp_path):
        grid = tmp_path / "sweep.toml"
        grid.write_text(self.GRID)
        out = tmp_path / "out"
        assert main(["sweep", "--grid", str(grid), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "cell duration=2" in text and "cell duration=3" in text
        assert "2 run(s) executed" in text
        assert (out / "manifest.json").exists()

    def test_sweep_resumes_from_checkpoints(self, capsys, tmp_path):
        grid = tmp_path / "sweep.toml"
        grid.write_text(self.GRID)
        out = tmp_path / "out"
        assert main(["sweep", "--grid", str(grid), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--grid", str(grid), "--out", str(out)]) == 0
        assert "0 run(s) executed, 2 resumed" in capsys.readouterr().out

    def test_sweep_inline_axis_and_replications(self, capsys, tmp_path):
        grid = tmp_path / "sweep.toml"
        grid.write_text(self.GRID)
        assert (
            main(
                [
                    "sweep",
                    "--grid", str(grid),
                    "--set", "duration=2",
                    "--set", "channel_loss=0,0.01",
                    "--replications", "2",
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "channel_loss=0.01" in text
        assert "n=2" in text
