"""Tests for the ASCII report."""

import pytest

from repro.experiments import ExperimentConfig, render_report, run_experiment


@pytest.fixture(scope="module")
def report():
    return render_report(run_experiment(ExperimentConfig(duration=20.0)))


class TestReport:
    def test_mentions_every_figure(self, report):
        for token in ("Table 1", "Fig. 4/5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert token in report

    def test_mentions_every_lane(self, report):
        for lane in ("ideal", "adf-0.75", "adf-1", "adf-1.25"):
            assert lane in report

    def test_mentions_population(self, report):
        assert "140 MNs" in report

    def test_table1_rows_rendered(self, report):
        assert "VR=4~10m/s" in report

    def test_is_plain_text(self, report):
        assert isinstance(report, str)
        assert len(report.splitlines()) > 20
