"""Tests for result serialisation and config files."""

import json

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.config_io import config_from_dict, load_config
from repro.experiments.io import (
    load_json,
    result_to_dict,
    write_json,
    write_series_csv,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(ExperimentConfig(duration=20.0, dth_factors=(1.0,)))


class TestResultToDict:
    def test_round_trips_through_json(self, result):
        blob = json.dumps(result_to_dict(result))
        parsed = json.loads(blob)
        assert parsed["node_count"] == 140

    def test_contains_all_figures(self, result):
        data = result_to_dict(result)
        for key in ("fig6", "fig8", "fig9", "lanes"):
            assert key in data

    def test_lane_detail(self, result):
        lane = result_to_dict(result)["lanes"]["adf-1"]
        assert lane["total_lus"] == result.lanes["adf-1"].total_lus
        assert 0.0 < lane["reduction_vs_ideal"] < 1.0
        assert len(lane["rmse_with_le"]["times"]) == 20


class TestFiles:
    def test_write_and_load_json(self, result, tmp_path):
        path = write_json(result, tmp_path / "run.json")
        loaded = load_json(path)
        assert loaded["duration"] == 20.0

    def test_write_series_csv(self, result, tmp_path):
        path = write_series_csv(result, tmp_path / "lus.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "time,ideal,adf-1"
        assert len(lines) == 21  # header + 20 seconds

    def test_rmse_csv(self, result, tmp_path):
        path = write_series_csv(
            result, tmp_path / "rmse.csv", kind="rmse_with_le"
        )
        assert "adf-1" in path.read_text().splitlines()[0]

    def test_unknown_kind_rejected(self, result, tmp_path):
        with pytest.raises(ValueError, match="unknown series kind"):
            write_series_csv(result, tmp_path / "x.csv", kind="nope")


class TestConfigIo:
    def test_from_dict(self):
        config = config_from_dict(
            {"duration": 60.0, "dth_factors": [1.0, 1.5], "seed": 9}
        )
        assert config.duration == 60.0
        assert config.dth_factors == (1.0, 1.5)
        assert config.seed == 9

    def test_nested_population(self):
        config = config_from_dict(
            {
                "duration": 10.0,
                "population": {"road_humans_per_road": 2, "building_stop": 1},
            }
        )
        assert config.population.road_humans_per_road == 2
        assert config.population.building_stop == 1
        # Untouched fields keep their Table 1 defaults.
        assert config.population.building_random == 5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            config_from_dict({"durration": 60.0})

    def test_unknown_population_key_rejected(self):
        with pytest.raises(ValueError, match="unknown population keys"):
            config_from_dict({"population": {"bogus": 1}})

    def test_load_toml(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text(
            'duration = 30.0\ndth_factors = [0.75]\nseed = 3\n'
            "[population]\nroad_vehicles_per_road = 1\n"
        )
        config = load_config(path)
        assert config.duration == 30.0
        assert config.population.road_vehicles_per_road == 1

    def test_load_json(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps({"duration": 15.0}))
        assert load_config(path).duration == 15.0

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "exp.yaml"
        path.write_text("duration: 1")
        with pytest.raises(ValueError, match="unsupported"):
            load_config(path)
