"""Gateway uplink paths: fused fast path vs the general path, and the
deterministic gateway fallback for unroutable updates.

The harness (and ``WirelessGateway.receive`` itself) hand-inlines the
transparent-channel counter updates on the hot path.  These tests pin the
fused path to the general path: same updates, same gateway and channel
counters, same deliveries — so the inlined bookkeeping cannot drift from
the spec'd slow path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campus import default_campus
from repro.experiments import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment
from repro.geometry import Vec2
from repro.network.channel import WirelessChannel
from repro.network.gateway import WirelessGateway
from repro.network.messages import LocationUpdate
from repro.simkernel import Simulator
from repro.telemetry import Telemetry, TelemetryConfig


def _updates(count: int, region_id: str) -> list[LocationUpdate]:
    return [
        LocationUpdate(
            sender=f"n{i % 7}",
            timestamp=float(i),
            node_id=f"n{i % 7}",
            position=Vec2(float(i), 1.0),
            velocity=Vec2(1.0, 0.0),
            region_id=region_id,
        )
        for i in range(count)
    ]


def _gateway(region, *, telemetry=None):
    sim = Simulator()
    channel = WirelessChannel(
        sim, np.random.default_rng(0), name=f"{region.region_id}-uplink"
    )
    delivered: list[LocationUpdate] = []
    gateway = WirelessGateway(
        region, channel, delivered.append, telemetry=telemetry
    )
    return gateway, channel, delivered


class TestFusedVsGeneralPath:
    def test_counters_identical_on_transparent_channel(self):
        """The fused fast path must bump exactly the counters the general
        path (here: forced by telemetry instrumentation) bumps."""
        region = default_campus().roads()[0]
        fused_gw, fused_ch, fused_out = _gateway(region)
        assert fused_gw._fused_uplink  # sanity: this IS the fast path
        telemetry = Telemetry.from_config(TelemetryConfig(enabled=True))
        general_gw, general_ch, general_out = _gateway(
            region, telemetry=telemetry
        )
        assert not general_gw._fused_uplink

        for update in _updates(50, region.region_id):
            fused_gw.receive(update)
            general_gw.receive(update)

        assert fused_gw.received == general_gw.received == 50
        assert fused_gw.forwarded == general_gw.forwarded == 50
        assert fused_gw.discarded == general_gw.discarded == 0
        assert fused_ch.stats == general_ch.stats
        assert fused_out == general_out

    def test_down_gateway_discards_identically(self):
        region = default_campus().roads()[0]
        fused_gw, fused_ch, fused_out = _gateway(region)
        telemetry = Telemetry.from_config(TelemetryConfig(enabled=True))
        general_gw, general_ch, general_out = _gateway(
            region, telemetry=telemetry
        )
        fused_gw.operational = False
        general_gw.operational = False
        for update in _updates(10, region.region_id):
            fused_gw.receive(update)
            general_gw.receive(update)
        assert fused_gw.received == general_gw.received == 10
        assert fused_gw.discarded == general_gw.discarded == 10
        assert fused_gw.forwarded == general_gw.forwarded == 0
        assert fused_ch.stats == general_ch.stats
        assert fused_out == general_out == []

    def test_harness_inlined_fast_path_matches_instrumented_run(self):
        """The harness's hand-inlined fused uplink must produce the same
        gateway/channel counters and traffic totals as the general path
        (telemetry on defeats fusion but changes no routing decision)."""
        config = ExperimentConfig(duration=6.0, seed=5, dth_factors=(1.0,))
        fused = MobileGridExperiment(config)
        fused.run()
        instrumented = MobileGridExperiment(
            ExperimentConfig(
                duration=6.0,
                seed=5,
                dth_factors=(1.0,),
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        instrumented.run()
        for lane_f, lane_g in zip(fused.lanes, instrumented.lanes):
            assert lane_f.name == lane_g.name
            assert lane_f.meter.total == lane_g.meter.total
            assert lane_f.meter.per_region() == lane_g.meter.per_region()
            for region_id, gw_f in lane_f.gateways.items():
                gw_g = lane_g.gateways[region_id]
                # At least one lane/region must actually have seen traffic
                # for this comparison to mean anything; asserted below.
                assert gw_f.received == gw_g.received
                assert gw_f.forwarded == gw_g.forwarded
                assert gw_f.discarded == gw_g.discarded
                assert gw_f.uplink.stats == gw_g.uplink.stats
        total = sum(
            gw.received for lane in fused.lanes for gw in lane.gateways.values()
        )
        assert total > 0


class TestGatewayFallback:
    @pytest.fixture()
    def experiment(self):
        return MobileGridExperiment(
            ExperimentConfig(duration=2.0, dth_factors=(1.0,))
        )

    def _orphan_update(self, node_id: str) -> LocationUpdate:
        return LocationUpdate(
            sender=node_id,
            timestamp=0.0,
            node_id=node_id,
            position=Vec2(-1e6, -1e6),
            velocity=Vec2(0.0, 0.0),
            region_id="no-such-region",
        )

    def test_unknown_node_unmapped_region_uses_min_region(self, experiment):
        lane = experiment.lanes[0]
        gateway = experiment._gateway_for(
            lane, self._orphan_update("ghost-node")
        )
        assert gateway is lane.gateways[min(lane.gateways)]

    def test_known_node_falls_back_to_home_region(self, experiment):
        node = experiment.nodes[0]
        lane = experiment.lanes[0]
        gateway = experiment._gateway_for(
            lane, self._orphan_update(node.node_id)
        )
        assert gateway is lane.gateways[node.home_region]

    def test_fallback_is_stable_across_lanes(self, experiment):
        update = self._orphan_update("ghost-node")
        regions = {
            experiment._gateway_for(lane, update).region.region_id
            for lane in experiment.lanes
        }
        assert len(regions) == 1
