"""Integration tests for the evaluation harness (short runs)."""

import pytest

from repro.experiments import ExperimentConfig, MobileGridExperiment, run_experiment
from repro.mobility.population import PopulationSpec


@pytest.fixture(scope="module")
def short_result():
    """A 60-second run of the full 140-node experiment."""
    return run_experiment(ExperimentConfig(duration=60.0))


class TestStructure:
    def test_lanes_present(self, short_result):
        assert set(short_result.lanes) == {"ideal", "adf-0.75", "adf-1", "adf-1.25"}

    def test_node_count(self, short_result):
        assert short_result.node_count == 140

    def test_general_df_lanes_optional(self):
        result = run_experiment(
            ExperimentConfig(
                duration=10.0, dth_factors=(1.0,), include_general_df=True
            )
        )
        assert "gdf-1" in result.lanes

    def test_ideal_counts_every_node_every_second(self, short_result):
        assert short_result.ideal.total_lus == 140 * 60


class TestPaperShape:
    def test_reduction_increases_with_dth(self, short_result):
        reductions = [
            short_result.reduction_vs_ideal(lane.name)
            for lane in short_result.adf_lanes()
        ]
        assert reductions == sorted(reductions)

    def test_reductions_in_paper_ballpark(self, short_result):
        """Paper: 30.5% / 53.4% / 76.7%; we require the right ranges."""
        r075 = short_result.reduction_vs_ideal("adf-0.75")
        r125 = short_result.reduction_vs_ideal("adf-1.25")
        assert 0.15 <= r075 <= 0.45
        assert 0.40 <= r125 <= 0.80

    def test_buildings_filtered_harder_than_roads(self, short_result):
        """Paper Fig. 6: building transmission rate below road rate."""
        for lane in short_result.adf_lanes():
            rates = short_result.transmission_rate_by_kind(lane.name)
            assert rates["building"] < rates["road"]

    def test_le_reduces_error_at_meaningful_suppression(self, short_result):
        """Paper Fig. 7: the LE line sits below the no-LE line."""
        for name in ("adf-1", "adf-1.25"):
            lane = short_result.lanes[name]
            assert lane.mean_rmse(with_le=True) < lane.mean_rmse(with_le=False)

    def test_road_error_exceeds_building_error(self, short_result):
        """Paper Figs. 8-9: road RMSE several times the building RMSE."""
        for lane in short_result.adf_lanes():
            assert lane.region_errors_without_le.road_to_building_ratio > 2.0
            assert lane.region_errors_with_le.road_to_building_ratio > 2.0

    def test_error_grows_with_dth(self, short_result):
        rmses = [
            lane.mean_rmse(with_le=False) for lane in short_result.adf_lanes()
        ]
        assert rmses == sorted(rmses)

    def test_classifier_accuracy_reasonable(self, short_result):
        assert short_result.classification_accuracy > 0.6

    def test_fleet_speed_in_table1_range(self, short_result):
        # 50 road nodes at 1-10 m/s, 90 building nodes at 0-1.5 m/s.
        assert 1.0 < short_result.average_fleet_speed < 4.0


class TestDeterminism:
    def test_same_seed_reproduces(self):
        cfg = ExperimentConfig(duration=15.0, dth_factors=(1.0,))
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.lanes["adf-1"].total_lus == b.lanes["adf-1"].total_lus
        assert a.lanes["adf-1"].mean_rmse(with_le=True) == pytest.approx(
            b.lanes["adf-1"].mean_rmse(with_le=True)
        )

    def test_different_seed_differs(self):
        a = run_experiment(ExperimentConfig(duration=15.0, dth_factors=(1.0,), seed=1))
        b = run_experiment(ExperimentConfig(duration=15.0, dth_factors=(1.0,), seed=2))
        assert a.lanes["adf-1"].total_lus != b.lanes["adf-1"].total_lus


class TestScaling:
    def test_tiny_population(self):
        spec = PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        )
        result = run_experiment(
            ExperimentConfig(duration=20.0, dth_factors=(1.0,), population=spec)
        )
        assert result.node_count == 5 * 2 + 6 * 3
        assert result.ideal.total_lus == result.node_count * 20

    def test_channel_loss_reduces_delivered(self):
        lossless = run_experiment(
            ExperimentConfig(duration=15.0, dth_factors=(1.0,))
        )
        lossy = run_experiment(
            ExperimentConfig(duration=15.0, dth_factors=(1.0,), channel_loss=0.5)
        )
        assert lossy.ideal.total_lus < lossless.ideal.total_lus * 0.7


class TestClusterDynamics:
    def test_cluster_series_recorded_for_adf_lanes(self, short_result):
        for lane in short_result.adf_lanes():
            assert len(lane.cluster_series) == 60
            assert lane.cluster_series.values.max() >= 1

    def test_cluster_count_stabilises(self, short_result):
        """After the initial construction, the cluster count settles."""
        lane = short_result.lanes["adf-1"]
        tail = lane.cluster_series.window(30.0, 61.0).values
        assert tail.max() - tail.min() <= 6

    def test_ideal_lane_has_no_clusters(self, short_result):
        assert len(short_result.ideal.cluster_series) == 0


class TestHandoffs:
    def test_handoffs_counted(self, short_result):
        """Road nodes crossing junction overlaps and itinerant region
        attribution produce some handoffs; stationary building nodes none."""
        assert short_result.handoffs >= 0

    def test_association_manager_tracks_all_nodes(self):
        experiment = MobileGridExperiment(
            ExperimentConfig(duration=10.0, dth_factors=(1.0,))
        )
        experiment.run()
        served = sum(
            len(experiment.associations.nodes_served_by(r))
            for r in experiment.campus.regions
        )
        assert served == 140


class TestGatewayFailure:
    def test_outage_increases_estimates(self):
        config = ExperimentConfig(duration=30.0, dth_factors=(1.0,))
        experiment = MobileGridExperiment(config)
        lane = experiment.lanes[1]
        experiment.sim.schedule_at(5.0, lane.gateways["B4"].fail)
        experiment.run()
        gateway = lane.gateways["B4"]
        assert gateway.discarded > 0
        assert not gateway.operational
