"""Integration tests for the evaluation harness (short runs)."""

import pytest

from repro.experiments import ExperimentConfig, MobileGridExperiment, run_experiment
from repro.mobility.population import PopulationSpec


@pytest.fixture(scope="module")
def short_result():
    """A 60-second run of the full 140-node experiment."""
    return run_experiment(ExperimentConfig(duration=60.0))


class TestStructure:
    def test_lanes_present(self, short_result):
        assert set(short_result.lanes) == {"ideal", "adf-0.75", "adf-1", "adf-1.25"}

    def test_node_count(self, short_result):
        assert short_result.node_count == 140

    def test_general_df_lanes_optional(self):
        result = run_experiment(
            ExperimentConfig(
                duration=10.0, dth_factors=(1.0,), include_general_df=True
            )
        )
        assert "gdf-1" in result.lanes

    def test_ideal_counts_every_node_every_second(self, short_result):
        assert short_result.ideal.total_lus == 140 * 60


class TestPaperShape:
    def test_reduction_increases_with_dth(self, short_result):
        reductions = [
            short_result.reduction_vs_ideal(lane.name)
            for lane in short_result.adf_lanes()
        ]
        assert reductions == sorted(reductions)

    def test_reductions_in_paper_ballpark(self, short_result):
        """Paper: 30.5% / 53.4% / 76.7%; we require the right ranges."""
        r075 = short_result.reduction_vs_ideal("adf-0.75")
        r125 = short_result.reduction_vs_ideal("adf-1.25")
        assert 0.15 <= r075 <= 0.45
        assert 0.40 <= r125 <= 0.80

    def test_buildings_filtered_harder_than_roads(self, short_result):
        """Paper Fig. 6: building transmission rate below road rate."""
        for lane in short_result.adf_lanes():
            rates = short_result.transmission_rate_by_kind(lane.name)
            assert rates["building"] < rates["road"]

    def test_le_reduces_error_at_meaningful_suppression(self, short_result):
        """Paper Fig. 7: the LE line sits below the no-LE line."""
        for name in ("adf-1", "adf-1.25"):
            lane = short_result.lanes[name]
            assert lane.mean_rmse(with_le=True) < lane.mean_rmse(with_le=False)

    def test_road_error_exceeds_building_error(self, short_result):
        """Paper Figs. 8-9: road RMSE several times the building RMSE."""
        for lane in short_result.adf_lanes():
            assert lane.region_errors_without_le.road_to_building_ratio > 2.0
            assert lane.region_errors_with_le.road_to_building_ratio > 2.0

    def test_error_grows_with_dth(self, short_result):
        rmses = [
            lane.mean_rmse(with_le=False) for lane in short_result.adf_lanes()
        ]
        assert rmses == sorted(rmses)

    def test_classifier_accuracy_reasonable(self, short_result):
        assert short_result.classification_accuracy > 0.6

    def test_fleet_speed_in_table1_range(self, short_result):
        # 50 road nodes at 1-10 m/s, 90 building nodes at 0-1.5 m/s.
        assert 1.0 < short_result.average_fleet_speed < 4.0


class TestDeterminism:
    def test_same_seed_reproduces(self):
        cfg = ExperimentConfig(duration=15.0, dth_factors=(1.0,))
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.lanes["adf-1"].total_lus == b.lanes["adf-1"].total_lus
        assert a.lanes["adf-1"].mean_rmse(with_le=True) == pytest.approx(
            b.lanes["adf-1"].mean_rmse(with_le=True)
        )

    def test_different_seed_differs(self):
        a = run_experiment(ExperimentConfig(duration=15.0, dth_factors=(1.0,), seed=1))
        b = run_experiment(ExperimentConfig(duration=15.0, dth_factors=(1.0,), seed=2))
        assert a.lanes["adf-1"].total_lus != b.lanes["adf-1"].total_lus


class TestScaling:
    def test_tiny_population(self):
        spec = PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        )
        result = run_experiment(
            ExperimentConfig(duration=20.0, dth_factors=(1.0,), population=spec)
        )
        assert result.node_count == 5 * 2 + 6 * 3
        assert result.ideal.total_lus == result.node_count * 20

    def test_channel_loss_reduces_delivered(self):
        lossless = run_experiment(
            ExperimentConfig(duration=15.0, dth_factors=(1.0,))
        )
        lossy = run_experiment(
            ExperimentConfig(duration=15.0, dth_factors=(1.0,), channel_loss=0.5)
        )
        assert lossy.ideal.total_lus < lossless.ideal.total_lus * 0.7


class TestClusterDynamics:
    def test_cluster_series_recorded_for_adf_lanes(self, short_result):
        for lane in short_result.adf_lanes():
            assert len(lane.cluster_series) == 60
            assert lane.cluster_series.values.max() >= 1

    def test_cluster_count_stabilises(self, short_result):
        """After the initial construction, the cluster count settles."""
        lane = short_result.lanes["adf-1"]
        tail = lane.cluster_series.window(30.0, 61.0).values
        assert tail.max() - tail.min() <= 6

    def test_ideal_lane_has_no_clusters(self, short_result):
        assert len(short_result.ideal.cluster_series) == 0


class TestHandoffs:
    def test_handoffs_counted(self, short_result):
        """Road nodes crossing junction overlaps and itinerant region
        attribution produce some handoffs; stationary building nodes none."""
        assert short_result.handoffs >= 0

    def test_association_manager_tracks_all_nodes(self):
        experiment = MobileGridExperiment(
            ExperimentConfig(duration=10.0, dth_factors=(1.0,))
        )
        experiment.run()
        served = sum(
            len(experiment.associations.nodes_served_by(r))
            for r in experiment.campus.regions
        )
        assert served == 140


class TestGatewayFailure:
    def test_outage_increases_estimates(self):
        config = ExperimentConfig(duration=30.0, dth_factors=(1.0,))
        experiment = MobileGridExperiment(config)
        lane = experiment.lanes[1]
        experiment.sim.schedule_at(5.0, lane.gateways["B4"].fail)
        experiment.run()
        gateway = lane.gateways["B4"]
        assert gateway.discarded > 0
        assert not gateway.operational


class TestGatewayFallbackRouting:
    """Regression: an update whose region has no gateway must route through
    *its own node's* home-region gateway, not ``nodes[0]``'s."""

    @pytest.fixture(scope="class")
    def experiment(self):
        return MobileGridExperiment(
            ExperimentConfig(duration=5.0, dth_factors=(1.0,))
        )

    def _update_for(self, node, region_id):
        from repro.network.messages import LocationUpdate

        return LocationUpdate(
            sender=node.node_id,
            timestamp=0.0,
            node_id=node.node_id,
            position=node.position,
            velocity=node.velocity,
            region_id=region_id,
        )

    def test_fallback_uses_the_updates_own_home_region(self, experiment):
        lane = experiment.lanes[0]
        node = next(
            n for n in experiment.nodes
            if n.home_region != experiment.nodes[0].home_region
        )
        update = self._update_for(node, "offsite")
        gateway = experiment._gateway_for(lane, update)
        assert gateway is lane.gateways[node.home_region]
        assert gateway is not lane.gateways[experiment.nodes[0].home_region]

    def test_known_region_routes_directly(self, experiment):
        lane = experiment.lanes[0]
        node = experiment.nodes[-1]
        update = self._update_for(node, "B4")
        assert experiment._gateway_for(lane, update) is lane.gateways["B4"]

    def test_unknown_node_with_unknown_region_stays_deterministic(
        self, experiment
    ):
        from repro.network.messages import LocationUpdate

        lane = experiment.lanes[0]
        update = LocationUpdate(
            sender="ghost", timestamp=0.0, node_id="ghost", region_id="offsite"
        )
        first = experiment._gateway_for(lane, update)
        # Lexicographic min, not insertion order: the fallback must not
        # depend on the order regions happened to be registered in.
        assert first is lane.gateways[min(lane.gateways)]


def _two_region_campus():
    """A minimal campus whose road id does *not* start with "R"."""
    from repro.campus import Campus
    from repro.campus.region import NetworkAccess, Region, RegionKind
    from repro.geometry import Path, Rect, Vec2

    road = Region(
        region_id="Main-St",
        name="Main street",
        kind=RegionKind.ROAD,
        bounds=Rect(0.0, 40.0, 200.0, 60.0),
        access=NetworkAccess.CELLULAR,
        centerline=Path([Vec2(0.0, 50.0), Vec2(200.0, 50.0)]),
    )
    building = Region(
        region_id="Lib-1",
        name="Library annex",
        kind=RegionKind.BUILDING,
        bounds=Rect(250.0, 20.0, 330.0, 100.0),
        access=NetworkAccess.CELLULAR | NetworkAccess.WLAN,
        entrance=Vec2(250.0, 60.0),
    )
    return Campus([road, building])


class TestRoadClassification:
    """Regression: region-kind error attribution must key off membership of
    the node's *current* region in ``campus.roads()``, not a name-prefix
    convention over the stale home region."""

    @pytest.fixture(scope="class")
    def result(self):
        spec = PopulationSpec(
            road_humans_per_road=2,
            road_vehicles_per_road=0,
            building_stop=2,
            building_random=0,
            building_linear=0,
        )
        config = ExperimentConfig(
            duration=5.0, dth_factors=(1.0,), population=spec
        )
        return MobileGridExperiment(config, campus=_two_region_campus()).run()

    def test_road_ids_reported(self, result):
        assert result.road_region_ids == ["Main-St"]
        assert result.building_region_ids == ["Lib-1"]

    def test_non_r_prefixed_road_errors_counted_as_road(self, result):
        errors = result.ideal.region_errors_without_le
        assert errors.road_count > 0

    def test_building_errors_counted_as_building(self, result):
        errors = result.ideal.region_errors_without_le
        assert errors.building_count > 0

    def test_counts_split_by_current_region(self, result):
        # 2 road nodes + 2 building nodes, 5 one-second steps: every
        # sample lands in exactly one bucket.
        errors = result.ideal.region_errors_without_le
        assert errors.road_count + errors.building_count == 4 * 5


class TestLaneKinds:
    def test_kinds_set_from_policy_types(self, short_result):
        assert short_result.ideal.kind == "ideal"
        for lane in short_result.adf_lanes():
            assert lane.kind == "adf"

    def test_gdf_lanes_tagged(self):
        result = run_experiment(
            ExperimentConfig(
                duration=5.0, dth_factors=(1.0,), include_general_df=True
            )
        )
        assert result.lanes["gdf-1"].kind == "gdf"
        # A gdf lane carries a dth_factor but must not count as an ADF lane.
        assert [lane.name for lane in result.adf_lanes()] == ["adf-1"]
