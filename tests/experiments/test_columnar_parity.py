"""Golden parity: the columnar engine against the object harness.

The determinism fixture (``data/determinism_baseline.json``) records
every lane metric of the reference ``MobileGridExperiment`` at full
float precision.  The columnar engine in *exact* kernel mode must
reproduce all of them bit-for-bit — traffic totals, per-region and
per-node counts, both RMSE series, region error sums, cluster series,
filter summaries, classification accuracy and fleet speed.  A fresh
object-harness run on a *different* configuration is compared too, so
parity does not silently narrow to the one committed fixture.
"""

from __future__ import annotations

import json

import pytest

from repro.core.columnar import (
    ColumnarExperiment,
    ObjectMobilitySource,
    run_columnar_experiment,
)
from repro.core.columnar.kernels import EXACT_KERNEL, FAST_KERNEL
from repro.experiments import ExperimentConfig, run_experiment
from repro.telemetry import TelemetryConfig
from tests.experiments.determinism_fixture import (
    FIXTURE_CONFIG,
    FIXTURE_PATH,
    collect_metrics,
)


def _normalized(metrics: dict) -> dict:
    """JSON round-trip: float repr is shortest-round-trip, so equality on
    the normalized structure is bit-equality."""
    return json.loads(json.dumps(metrics, sort_keys=True))


class TestGoldenParity:
    def test_exact_kernel_matches_committed_fixture_bit_identically(self):
        result = run_columnar_experiment(FIXTURE_CONFIG, kernel=EXACT_KERNEL)
        got = _normalized(collect_metrics(result))
        want = json.loads(FIXTURE_PATH.read_text())
        assert got == want

    def test_exact_kernel_matches_live_object_harness_off_fixture(self):
        # Different seed, duration and factor set than the fixture: the
        # engines must agree on configurations nobody hand-tuned for.
        config = ExperimentConfig(
            duration=12.0,
            seed=7,
            dth_factors=(0.9, 1.1),
            include_general_df=True,
        )
        reference = collect_metrics(run_experiment(config))
        columnar = collect_metrics(
            run_columnar_experiment(config, kernel=EXACT_KERNEL)
        )
        assert _normalized(columnar) == _normalized(reference)

    def test_interval_not_dividing_duration(self):
        # The schedule fires at interval multiples while they stay within
        # the duration; both engines must agree on the step count.
        config = ExperimentConfig(duration=5.0, report_interval=1.5, seed=3)
        reference = collect_metrics(run_experiment(config))
        columnar = collect_metrics(
            run_columnar_experiment(config, kernel=EXACT_KERNEL)
        )
        assert _normalized(columnar) == _normalized(reference)


class TestFastKernel:
    def test_fast_kernel_runs_and_agrees_on_exact_counters(self):
        result = run_columnar_experiment(FIXTURE_CONFIG, kernel=FAST_KERNEL)
        assert result.node_count == 140
        assert set(result.lanes) == {
            "ideal",
            "adf-0.75",
            "adf-1",
            "adf-1.25",
            "gdf-0.75",
            "gdf-1",
            "gdf-1.25",
        }
        # The ideal lane transmits every node every step regardless of
        # kernel numerics: 140 nodes x 20 steps.
        assert result.lanes["ideal"].meter.total == 140 * 20
        for lane in result.lanes.values():
            assert len(lane.rmse_with_le) == 20
            assert all(v >= 0.0 for _, v in lane.rmse_with_le)

    def test_fast_kernel_traffic_close_to_exact(self):
        exact = run_columnar_experiment(FIXTURE_CONFIG, kernel=EXACT_KERNEL)
        fast = run_columnar_experiment(FIXTURE_CONFIG, kernel=FAST_KERNEL)
        for name, lane in exact.lanes.items():
            total = lane.meter.total
            assert abs(fast.lanes[name].meter.total - total) <= max(
                5, total * 0.02
            )


class TestEngineValidation:
    def test_rejects_telemetry(self):
        config = ExperimentConfig(
            duration=2.0, telemetry=TelemetryConfig(enabled=True)
        )
        with pytest.raises(ValueError, match="telemetry"):
            ColumnarExperiment(config)

    def test_rejects_lossy_channel(self):
        with pytest.raises(ValueError, match="lossless"):
            ColumnarExperiment(ExperimentConfig(duration=2.0, channel_loss=0.1))

    def test_rejects_latency(self):
        with pytest.raises(ValueError, match="lossless"):
            ColumnarExperiment(
                ExperimentConfig(duration=2.0, channel_latency=0.5)
            )

    def test_custom_source_round_trip(self):
        # An explicit ObjectMobilitySource is the parity configuration the
        # default constructor builds internally; both must agree.
        from repro.campus import default_campus
        from repro.mobility.population import build_population
        from repro.util.rng import RngRegistry

        config = ExperimentConfig(duration=3.0, seed=11)
        campus = default_campus()
        nodes = build_population(campus, config.population, RngRegistry(11))
        explicit = run_columnar_experiment(
            config,
            campus=campus,
            source=ObjectMobilitySource(nodes),
            kernel=EXACT_KERNEL,
        )
        default = run_columnar_experiment(config, kernel=EXACT_KERNEL)
        assert _normalized(collect_metrics(explicit)) == _normalized(
            collect_metrics(default)
        )
