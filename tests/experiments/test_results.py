"""Tests for result containers."""

import math

import pytest

from repro.experiments.results import ExperimentResult, LaneResult, RegionErrors
from repro.network.traffic import TrafficMeter
from repro.util.timeseries import TimeSeries


class TestRegionErrors:
    def test_rmse_per_kind(self):
        errors = RegionErrors()
        errors.add(3.0, is_road=True)
        errors.add(4.0, is_road=True)
        errors.add(1.0, is_road=False)
        assert errors.road_rmse == pytest.approx(math.sqrt(12.5))
        assert errors.building_rmse == 1.0

    def test_ratio(self):
        errors = RegionErrors()
        errors.add(4.0, is_road=True)
        errors.add(1.0, is_road=False)
        assert errors.road_to_building_ratio == 4.0

    def test_ratio_no_building_is_inf(self):
        errors = RegionErrors()
        errors.add(1.0, is_road=True)
        assert errors.road_to_building_ratio == math.inf

    def test_empty_rmse_zero(self):
        assert RegionErrors().road_rmse == 0.0

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            RegionErrors().add(-1.0, is_road=True)


def lane(name, factor, counts, rmse_on=(), rmse_off=(), kind="adf"):
    meter = TrafficMeter(name)
    for t, region in counts:
        meter.count(t, region)
    return LaneResult(
        name=name,
        dth_factor=factor,
        meter=meter,
        rmse_with_le=TimeSeries(rmse_on),
        rmse_without_le=TimeSeries(rmse_off),
        kind=kind,
    )


@pytest.fixture
def result():
    lanes = {
        "ideal": lane(
            "ideal", None, [(0, "R1")] * 8 + [(0, "B1")] * 2, kind="ideal"
        ),
        "adf-1": lane(
            "adf-1",
            1.0,
            [(0, "R1")] * 4 + [(0, "B1")],
            rmse_on=[(0, 1.0), (1, 2.0)],
            rmse_off=[(0, 2.0), (1, 4.0)],
        ),
        "adf-0.75": lane("adf-0.75", 0.75, [(0, "R1")] * 6),
    }
    return ExperimentResult(
        duration=10.0,
        report_interval=1.0,
        node_count=5,
        lanes=lanes,
        road_region_ids=["R1"],
        building_region_ids=["B1"],
    )


class TestExperimentResult:
    def test_ideal_lane(self, result):
        assert result.ideal.name == "ideal"
        assert result.ideal.total_lus == 10

    def test_adf_lanes_sorted_by_factor(self, result):
        names = [lane.name for lane in result.adf_lanes()]
        assert names == ["adf-0.75", "adf-1"]

    def test_reduction_vs_ideal(self, result):
        assert result.reduction_vs_ideal("adf-1") == pytest.approx(0.5)
        assert result.reduction_vs_ideal("ideal") == 0.0

    def test_transmission_rate_by_kind(self, result):
        rates = result.transmission_rate_by_kind("adf-1")
        assert rates["road"] == pytest.approx(0.5)
        assert rates["building"] == pytest.approx(0.5)

    def test_mean_rmse(self, result):
        lane_result = result.lanes["adf-1"]
        assert lane_result.mean_rmse(with_le=True) == 1.5
        assert lane_result.mean_rmse(with_le=False) == 3.0

    def test_le_improvement(self, result):
        assert result.lanes["adf-1"].le_improvement() == pytest.approx(0.5)

    def test_le_improvement_empty_is_one(self, result):
        assert result.lanes["adf-0.75"].le_improvement() == 1.0


class TestLaneKind:
    """Regression: lane selection keys off the stored policy kind, not a
    name-prefix convention that breaks for renamed/custom lanes."""

    def test_renamed_adf_lane_still_selected(self, result):
        result.lanes["tuned"] = lane("tuned", 2.0, [(0, "R1")], kind="adf")
        names = [entry.name for entry in result.adf_lanes()]
        assert names == ["adf-0.75", "adf-1", "tuned"]

    def test_gdf_lane_with_factor_not_selected(self, result):
        result.lanes["gdf-1"] = lane("gdf-1", 1.0, [(0, "R1")], kind="gdf")
        assert all(entry.kind == "adf" for entry in result.adf_lanes())

    def test_adf_prefixed_name_without_adf_kind_not_selected(self, result):
        result.lanes["adf-like"] = lane(
            "adf-like", 1.0, [(0, "R1")], kind="gdf"
        )
        assert "adf-like" not in [entry.name for entry in result.adf_lanes()]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            lane("x", 1.0, [(0, "R1")], kind="bogus")
