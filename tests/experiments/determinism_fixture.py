"""Golden-metrics fixture for the paired determinism test.

The perf-optimization pass (spatial region index, shared per-step region
resolution, cached cluster centroids, batched RMSE aggregation) must not
change a single bit of any measured result.  This module defines

* the fixed experiment configuration the fixture locks down,
* :func:`collect_metrics` — the exhaustive metric extraction both the
  fixture generator and the test share, and
* a ``__main__`` entry that (re)generates ``data/determinism_baseline.json``.

The committed JSON was generated from the *pre-optimization* harness
(commit ``cc744ca``), so the test is a true before/after pairing: any
optimization that perturbs traffic counts, RMSE series, region errors,
cluster counts or classification accuracy — even in the last ulp — fails.

Regenerate (only when an *intentional* behaviour change lands)::

    PYTHONPATH=src:. python -m tests.experiments.determinism_fixture
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.results import ExperimentResult

FIXTURE_PATH = Path(__file__).parent / "data" / "determinism_baseline.json"

#: Short but representative: all three ADF factors, the general-DF lanes,
#: and enough steps (20) to cross a cluster reconstruction cycle is not
#: needed — determinism of the per-step pipeline is what is being locked.
FIXTURE_CONFIG = ExperimentConfig(
    duration=20.0,
    seed=42,
    include_general_df=True,
)


def collect_metrics(result: ExperimentResult) -> dict:
    """Every lane metric the paper's figures rest on, at full precision.

    Floats round-trip exactly through ``json`` (repr is shortest
    round-trip), so equality on the loaded structure is bit-equality.
    """
    lanes = {}
    for name, lane in sorted(result.lanes.items()):
        lanes[name] = {
            "kind": lane.kind,
            "dth_factor": lane.dth_factor,
            "traffic_total": lane.meter.total,
            "traffic_bytes": lane.meter.total_bytes,
            "traffic_per_region": dict(sorted(lane.meter.per_region().items())),
            "traffic_per_node": dict(sorted(lane.meter.per_node().items())),
            "rmse_with_le": [list(p) for p in lane.rmse_with_le],
            "rmse_without_le": [list(p) for p in lane.rmse_without_le],
            "region_errors_with_le": [
                lane.region_errors_with_le.road_sq_sum,
                lane.region_errors_with_le.road_count,
                lane.region_errors_with_le.building_sq_sum,
                lane.region_errors_with_le.building_count,
            ],
            "region_errors_without_le": [
                lane.region_errors_without_le.road_sq_sum,
                lane.region_errors_without_le.road_count,
                lane.region_errors_without_le.building_sq_sum,
                lane.region_errors_without_le.building_count,
            ],
            "cluster_series": [list(p) for p in lane.cluster_series],
            "filter_summary": dict(sorted(lane.filter_summary.items())),
        }
    return {
        "config": {
            "duration": FIXTURE_CONFIG.duration,
            "seed": FIXTURE_CONFIG.seed,
            "include_general_df": FIXTURE_CONFIG.include_general_df,
        },
        "node_count": result.node_count,
        "classification_accuracy": result.classification_accuracy,
        "average_fleet_speed": result.average_fleet_speed,
        "handoffs": result.handoffs,
        "road_region_ids": result.road_region_ids,
        "building_region_ids": result.building_region_ids,
        "lanes": lanes,
    }


def generate() -> Path:
    """Run the fixture configuration and write the golden JSON."""
    metrics = collect_metrics(run_experiment(FIXTURE_CONFIG))
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(metrics, indent=1, sort_keys=True))
    return FIXTURE_PATH


if __name__ == "__main__":
    print(f"wrote {generate()}")
