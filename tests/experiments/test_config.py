"""Tests for experiment configuration."""

import pytest

from repro.experiments import ExperimentConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.duration == 1800.0
        assert cfg.report_interval == 1.0
        assert cfg.dth_factors == (0.75, 1.0, 1.25)
        assert cfg.population.total_for(5, 6) == 140

    def test_steps(self):
        assert ExperimentConfig(duration=60.0).steps() == 60
        assert ExperimentConfig(duration=60.0, report_interval=2.0).steps() == 30


class TestValidation:
    def test_duration_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(duration=0.0)

    def test_factors_required(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dth_factors=())

    def test_factors_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dth_factors=(1.0, -1.0))

    def test_with_duration(self):
        cfg = ExperimentConfig().with_duration(60.0)
        assert cfg.duration == 60.0
        assert cfg.dth_factors == (0.75, 1.0, 1.25)


class TestAdfConfig:
    def test_propagates_parameters(self):
        cfg = ExperimentConfig(alpha=0.5, recluster_interval=15.0)
        adf_cfg = cfg.adf_config(1.25)
        assert adf_cfg.dth_factor == 1.25
        assert adf_cfg.alpha == 0.5
        assert adf_cfg.recluster_interval == 15.0
