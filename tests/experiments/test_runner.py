"""Tests for the parallel sweep/replication runner."""

import json

import pytest

from repro.experiments import ExperimentConfig, SweepSpec, run_sweep
from repro.experiments.harness import run_experiment
from repro.experiments.io import result_to_dict
from repro.experiments.runner import (
    RunTask,
    _execute_task,
    cell_key,
    load_sweep_spec,
    sweep_spec_from_dict,
)
from repro.mobility.population import PopulationSpec
from repro.util.rng import spawn_seed


def tiny_base(**overrides) -> ExperimentConfig:
    """A 28-node, single-factor config that runs in well under a second."""
    defaults = dict(
        duration=4.0,
        dth_factors=(1.0,),
        population=PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        ),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def tiny_spec():
    return SweepSpec.from_axes(
        {"duration": (3.0, 4.0), "channel_loss": (0.0, 0.01)},
        base=tiny_base(),
        replications=2,
    )


class TestSweepSpec:
    def test_cells_are_cartesian_product_in_axis_order(self, tiny_spec):
        keys = [cell_key(params) for params in tiny_spec.cells()]
        assert keys == [
            "duration=3,channel_loss=0",
            "duration=3,channel_loss=0.01",
            "duration=4,channel_loss=0",
            "duration=4,channel_loss=0.01",
        ]

    def test_no_axes_is_single_base_cell(self):
        spec = SweepSpec(base=tiny_base())
        assert spec.cells() == [{}]
        assert cell_key({}) == "base"

    def test_tasks_apply_overrides_and_derive_seeds(self, tiny_spec):
        tasks = tiny_spec.tasks()
        assert len(tasks) == 4 * 2
        first = tasks[0]
        assert first.config.duration == 3.0
        assert first.config.seed == spawn_seed(
            tiny_spec.base.seed, "sweep/duration=3,channel_loss=0#rep0"
        )
        # Every task gets a distinct seed.
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_population_axis(self):
        spec = SweepSpec.from_axes(
            {"population.building_stop": (1, 2)}, base=tiny_base()
        )
        tasks = spec.tasks()
        assert tasks[0].config.population.building_stop == 1
        assert tasks[1].config.population.building_stop == 2

    def test_unknown_axis_rejected_at_definition_time(self):
        with pytest.raises(ValueError, match="unknown config field"):
            SweepSpec.from_axes({"no_such_knob": (1, 2)}, base=tiny_base())

    def test_seed_axis_rejected(self):
        with pytest.raises(ValueError, match="replications"):
            SweepSpec.from_axes({"seed": (1, 2)}, base=tiny_base())

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(base=tiny_base(), replications=0)

    def test_from_dict_and_file_roundtrip(self, tmp_path):
        data = {
            "axes": {"duration": [3.0, 4.0]},
            "replications": 2,
            "base": {"duration": 4.0, "dth_factors": [1.0]},
        }
        spec = sweep_spec_from_dict(data)
        assert spec.replications == 2
        assert spec.base.dth_factors == (1.0,)

        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(data))
        assert load_sweep_spec(path) == spec

        toml_path = tmp_path / "sweep.toml"
        toml_path.write_text(
            "replications = 2\n"
            "[axes]\nduration = [3.0, 4.0]\n"
            "[base]\nduration = 4.0\ndth_factors = [1.0]\n"
        )
        assert load_sweep_spec(toml_path) == spec

    def test_unknown_sweep_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep keys"):
            sweep_spec_from_dict({"grid": {}})


class TestDeterminism:
    def test_worker_process_matches_serial_execution(self, tiny_spec):
        """The same cell yields a bit-identical summary serially and in a
        worker process — seeds derive from (cell, replication) identity,
        never from execution order or process boundaries."""
        serial = run_sweep(tiny_spec, workers=1)
        parallel = run_sweep(tiny_spec, workers=2)
        a = {key: cell.runs for key, cell in serial.cells.items()}
        b = {key: cell.runs for key, cell in parallel.cells.items()}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_sweep_cell_matches_direct_run_experiment(self, tiny_spec):
        task = tiny_spec.tasks()[0]
        direct = json.loads(
            json.dumps(result_to_dict(run_experiment(task.config)))
        )
        via_sweep = run_sweep(tiny_spec, workers=1)
        payload = via_sweep.cells[task.cell_key].runs[0]
        assert payload["result"] == direct

    def test_replications_differ_within_a_cell(self, tiny_spec):
        result = run_sweep(tiny_spec, workers=1)
        cell = next(iter(result.cells.values()))
        totals = {
            run["result"]["lanes"]["ideal"]["total_lus"] for run in cell.runs
        }
        assert len(cell.runs) == 2
        # Different derived seeds -> different mobility -> the ideal lane
        # emits the same LU count but ADF suppression differs.
        reductions = {
            run["result"]["lanes"]["adf-1"]["reduction_vs_ideal"]
            for run in cell.runs
        }
        assert len(reductions) == 2 or len(totals) == 2


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_by_skipping_finished_cells(
        self, tiny_spec, tmp_path
    ):
        out = tmp_path / "sweep"
        full = run_sweep(tiny_spec, out_dir=out, workers=1)
        assert len(full.executed) == 8
        assert (out / "manifest.json").exists()

        # Simulate a kill that lost two runs: delete their checkpoints.
        artifacts = sorted((out / "runs").rglob("rep*.json"))
        assert len(artifacts) == 8
        artifacts[0].unlink()
        artifacts[5].unlink()

        resumed = run_sweep(tiny_spec, out_dir=out, workers=1)
        assert len(resumed.executed) == 2
        assert len(resumed.resumed) == 6

        a = {key: cell.runs for key, cell in full.cells.items()}
        b = {key: cell.runs for key, cell in resumed.cells.items()}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_no_resume_recomputes_everything(self, tiny_spec, tmp_path):
        out = tmp_path / "sweep"
        run_sweep(tiny_spec, out_dir=out, workers=1)
        again = run_sweep(tiny_spec, out_dir=out, workers=1, resume=False)
        assert len(again.executed) == 8
        assert again.resumed == []

    def test_stale_checkpoint_from_other_spec_is_recomputed(
        self, tiny_spec, tmp_path
    ):
        out = tmp_path / "sweep"
        run_sweep(tiny_spec, out_dir=out, workers=1)
        artifact = sorted((out / "runs").rglob("rep*.json"))[0]
        payload = json.loads(artifact.read_text())
        payload["sweep"]["seed"] += 1  # pretend it came from another base seed
        artifact.write_text(json.dumps(payload))

        resumed = run_sweep(tiny_spec, out_dir=out, workers=1)
        assert len(resumed.executed) == 1
        assert len(resumed.resumed) == 7


class TestRetry:
    def test_serial_failure_is_retried_once(self, monkeypatch):
        spec = SweepSpec(base=tiny_base(duration=2.0))
        calls = {"n": 0}
        real = _execute_task

        def flaky(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker death")
            return real(task)

        monkeypatch.setattr("repro.experiments.runner._execute_task", flaky)
        result = run_sweep(spec, workers=1)
        assert calls["n"] == 2
        assert result.retried == ["base#rep0"]
        assert len(result.executed) == 1

    def test_persistent_failure_raises(self, monkeypatch):
        spec = SweepSpec(base=tiny_base(duration=2.0))

        def always_fails(task):
            raise RuntimeError("broken")

        monkeypatch.setattr(
            "repro.experiments.runner._execute_task", always_fails
        )
        with pytest.raises(RuntimeError):
            run_sweep(spec, workers=1)


class TestAggregation:
    def test_cell_summaries_have_mean_and_ci(self, tiny_spec):
        result = run_sweep(tiny_spec, workers=1)
        cell = next(iter(result.cells.values()))
        summaries = cell.summaries()
        assert "reduction(adf-1)" in summaries
        summary = summaries["reduction(adf-1)"]
        assert summary.n == 2
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_render_mentions_every_cell(self, tiny_spec):
        result = run_sweep(tiny_spec, workers=1)
        text = result.render()
        for key in result.cells:
            assert key in text

    def test_telemetry_snapshots_combined_per_cell(self):
        from repro.telemetry import TelemetryConfig

        spec = SweepSpec(
            base=tiny_base(
                duration=3.0, telemetry=TelemetryConfig(enabled=True)
            ),
            replications=2,
        )
        result = run_sweep(spec, workers=1)
        merged = result.cells["base"].telemetry()
        assert merged is not None
        assert merged["runs"] == 2
        assert merged["metrics"]  # counters from both runs folded together

    def test_telemetry_absent_when_disabled(self, tiny_spec):
        result = run_sweep(tiny_spec, workers=1)
        assert result.cells[next(iter(result.cells))].telemetry() is None


class TestWorkerEntry:
    def test_execute_task_writes_checkpoint(self, tmp_path):
        task = RunTask(
            cell_key="base",
            params={},
            replication=0,
            seed=7,
            config=tiny_base(duration=2.0, seed=7),
            checkpoint=str(tmp_path / "runs" / "base" / "rep000.json"),
        )
        payload = _execute_task(task)
        on_disk = json.loads((tmp_path / "runs" / "base" / "rep000.json").read_text())
        assert on_disk == payload
        assert payload["sweep"]["seed"] == 7
