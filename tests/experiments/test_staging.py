"""Tests for the staging study and the DataTransfer message."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.staging import staging_study
from repro.network.messages import DataTransfer


class TestDataTransfer:
    def test_size_includes_payload(self):
        transfer = DataTransfer(
            sender="broker", timestamp=0.0, task_id=1, payload_bytes=1000
        )
        assert transfer.size_bytes == 32 + 16 + 1000

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            DataTransfer(sender="b", timestamp=0.0, payload_bytes=-1)

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            DataTransfer(sender="b", timestamp=0.0, direction="sideways")
        out = DataTransfer(sender="n", timestamp=0.0, direction="output")
        assert out.direction == "output"


class TestStagingStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return staging_study(
            ExperimentConfig(duration=90.0, dth_factors=(1.25,)),
            n_tasks=6,
            task_bytes=20_000,
        )

    def test_point_per_lane(self, points):
        assert {p.lane for p in points} == {"ideal", "adf-1.25"}

    def test_both_finish(self, points):
        assert all(p.staging_finished for p in points)

    def test_adf_stages_faster(self, points):
        by_lane = {p.lane: p for p in points}
        assert (
            by_lane["adf-1.25"].staging_completed_at
            < by_lane["ideal"].staging_completed_at
        )

    def test_adf_keeps_lus_fresher(self, points):
        by_lane = {p.lane: p for p in points}
        assert (
            by_lane["adf-1.25"].mean_lu_delay < by_lane["ideal"].mean_lu_delay
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            staging_study(ExperimentConfig(duration=30.0), n_tasks=0)
        with pytest.raises(ValueError):
            staging_study(ExperimentConfig(duration=30.0), job_start=60.0)
        with pytest.raises(ValueError):
            staging_study(ExperimentConfig(duration=30.0), bandwidth_bps=0.0)

    def test_huge_bandwidth_staging_is_instant(self):
        points = staging_study(
            ExperimentConfig(duration=20.0, dth_factors=(1.0,)),
            bandwidth_bps=1e9,
            n_tasks=3,
            task_bytes=10_000,
            job_start=5.0,
        )
        for p in points:
            assert p.staging_completed_at - 5.0 < 0.5
            assert p.mean_lu_delay < 0.01
