"""Tests for the congestion study."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.congestion import congestion_study


@pytest.fixture(scope="module")
def points():
    return congestion_study(
        ExperimentConfig(duration=30.0, dth_factors=(1.25,)),
        bandwidth_bps=60_000.0,
    )


class TestCongestionStudy:
    def test_point_per_lane(self, points):
        assert {p.lane for p in points} == {"ideal", "adf-1.25"}

    def test_offered_matches_lane_totals(self, points):
        ideal = next(p for p in points if p.lane == "ideal")
        assert ideal.offered == 140 * 30

    def test_ideal_saturates(self, points):
        ideal = next(p for p in points if p.lane == "ideal")
        assert ideal.utilisation > 0.9

    def test_adf_relieves_the_link(self, points):
        ideal = next(p for p in points if p.lane == "ideal")
        adf = next(p for p in points if p.lane == "adf-1.25")
        assert adf.mean_delay < ideal.mean_delay
        assert adf.drop_rate <= ideal.drop_rate

    def test_generous_bandwidth_no_congestion(self):
        points = congestion_study(
            ExperimentConfig(duration=15.0, dth_factors=(1.0,)),
            bandwidth_bps=10_000_000.0,
        )
        for p in points:
            assert p.drop_rate == 0.0
            assert p.mean_delay < 0.01

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            congestion_study(
                ExperimentConfig(duration=5.0), bandwidth_bps=0.0
            )
