"""Tests for the Fig. 2 mobility pattern classifier."""

import math

import pytest

from repro.core import ClassifierConfig, MobilityClassifier
from repro.mobility.states import MobilityState


@pytest.fixture
def classifier():
    return MobilityClassifier()


def observe_many(classifier, node, samples):
    label = None
    for speed, direction in samples:
        label = classifier.observe(node, speed, direction)
    return label


class TestConfig:
    def test_defaults_valid(self):
        ClassifierConfig()

    def test_window_too_small(self):
        with pytest.raises(ValueError):
            ClassifierConfig(window=1)

    def test_min_observations_bounds(self):
        with pytest.raises(ValueError):
            ClassifierConfig(window=5, min_observations=6)

    def test_negative_stop_speed(self):
        with pytest.raises(ValueError):
            ClassifierConfig(stop_speed=-0.1)


class TestFig2Rules:
    def test_zero_velocity_is_stop(self, classifier):
        label = observe_many(classifier, "n", [(0.0, 0.0)] * 6)
        assert label is MobilityState.STOP

    def test_above_walking_speed_is_linear(self, classifier):
        """V_mn > V_walk: running or vehicle => LMS regardless of wiggle."""
        samples = [(7.0, 0.1 * i) for i in range(8)]
        assert observe_many(classifier, "n", samples) is MobilityState.LINEAR

    def test_slow_constant_velocity_is_linear(self, classifier):
        """0 < V <= V_walk with steady velocity and direction => LMS."""
        samples = [(1.2, 0.5)] * 8
        assert observe_many(classifier, "n", samples) is MobilityState.LINEAR

    def test_slow_erratic_direction_is_random(self, classifier):
        headings = [0.0, 2.5, 5.0, 1.2, 3.9, 0.3, 4.4, 2.0]
        samples = [(0.8, h) for h in headings]
        assert observe_many(classifier, "n", samples) is MobilityState.RANDOM

    def test_slow_erratic_speed_is_random(self, classifier):
        speeds = [0.2, 1.8, 0.1, 1.5, 0.3, 1.9, 0.2, 1.6]
        samples = [(s, 0.5) for s in speeds]
        assert observe_many(classifier, "n", samples) is MobilityState.RANDOM

    def test_noise_below_stop_speed_still_stop(self, classifier):
        samples = [(0.02, 1.0)] * 8
        assert observe_many(classifier, "n", samples) is MobilityState.STOP


class TestWarmup:
    def test_instantaneous_rule_before_window_fills(self, classifier):
        assert classifier.observe("n", 0.0, 0.0) is MobilityState.STOP
        assert classifier.observe("n2", 9.0, 0.0) is MobilityState.LINEAR
        assert classifier.observe("n3", 1.0, 0.0) is MobilityState.RANDOM

    def test_transition_stop_to_linear(self, classifier):
        observe_many(classifier, "n", [(0.0, 0.0)] * 8)
        label = observe_many(classifier, "n", [(3.0, 0.2)] * 10)
        assert label is MobilityState.LINEAR

    def test_transition_linear_to_stop(self, classifier):
        observe_many(classifier, "n", [(3.0, 0.2)] * 10)
        label = observe_many(classifier, "n", [(0.0, 0.0)] * 10)
        assert label is MobilityState.STOP


class TestBookkeeping:
    def test_label_lookup(self, classifier):
        assert classifier.label("ghost") is None
        classifier.observe("n", 5.0, 0.0)
        assert classifier.label("n") is MobilityState.LINEAR

    def test_labels_snapshot(self, classifier):
        classifier.observe("a", 0.0, 0.0)
        classifier.observe("b", 9.0, 0.0)
        labels = classifier.labels()
        assert labels == {
            "a": MobilityState.STOP,
            "b": MobilityState.LINEAR,
        }

    def test_forget(self, classifier):
        classifier.observe("n", 1.0, 0.0)
        classifier.forget("n")
        assert classifier.label("n") is None
        assert "n" not in classifier.node_ids()

    def test_negative_speed_rejected(self, classifier):
        with pytest.raises(ValueError):
            classifier.observe("n", -1.0, 0.0)

    def test_window_access(self, classifier):
        classifier.observe("n", 2.0, 0.5)
        window = classifier.window("n")
        assert window is not None and len(window) == 1
        assert window.mean_speed() == 2.0


class TestObservationWindow:
    def test_direction_std_wrap_safe(self, classifier):
        """Headings straddling +/-pi have small circular spread."""
        samples = [
            (1.0, math.pi - 0.05),
            (1.0, -math.pi + 0.05),
        ] * 4
        observe_many(classifier, "n", samples)
        window = classifier.window("n")
        assert window.direction_std() < 0.2

    def test_mean_direction_wraps(self, classifier):
        samples = [(1.0, math.pi - 0.1), (1.0, -math.pi + 0.1)] * 3
        observe_many(classifier, "n", samples)
        window = classifier.window("n")
        assert abs(abs(window.mean_direction()) - math.pi) < 0.05

    def test_speed_std(self, classifier):
        observe_many(classifier, "n", [(1.0, 0.0), (3.0, 0.0)])
        window = classifier.window("n")
        assert window.speed_std() == pytest.approx(1.0)

    def test_stationary_samples_have_no_direction(self, classifier):
        observe_many(classifier, "n", [(0.0, 0.0)] * 5)
        window = classifier.window("n")
        assert window.direction_std() == 0.0
