"""Tests for cluster lifecycle management."""

import pytest

from repro.core import ClassifierConfig, MobilityClassifier, SequentialClusterer
from repro.core.cluster_manager import ClusterManager


@pytest.fixture
def setup():
    classifier = MobilityClassifier(ClassifierConfig(min_observations=1))
    manager = ClusterManager(classifier, SequentialClusterer(alpha=1.0))
    return manager, classifier


def teach(classifier, node, speed, direction=0.0, n=5):
    for _ in range(n):
        classifier.observe(node, speed, direction)


class TestPlacement:
    def test_unobserved_node_not_placed(self, setup):
        manager, _ = setup
        assert manager.place("ghost") is None

    def test_moving_node_placed(self, setup):
        manager, classifier = setup
        teach(classifier, "n", 3.0)
        cluster = manager.place("n")
        assert cluster is not None and "n" in cluster

    def test_stopped_node_excluded(self, setup):
        """The paper clusters every MN *except* those in SS."""
        manager, classifier = setup
        teach(classifier, "sitter", 0.0)
        assert manager.place("sitter") is None
        assert manager.clusterer.cluster_count() == 0

    def test_node_that_stops_is_evicted(self, setup):
        manager, classifier = setup
        teach(classifier, "n", 3.0)
        manager.place("n")
        teach(classifier, "n", 0.0, n=10)
        assert manager.place("n") is None
        assert manager.cluster_of("n") is None

    def test_reassignment_counted(self, setup):
        manager, classifier = setup
        teach(classifier, "anchor-slow", 2.0)
        manager.place("anchor-slow")
        teach(classifier, "anchor-fast", 8.0)
        manager.place("anchor-fast")
        teach(classifier, "n", 2.0)
        manager.place("n")
        teach(classifier, "n", 8.0, n=15)
        manager.place("n")
        assert manager.reassignments == 1

    def test_feature_of(self, setup):
        manager, classifier = setup
        teach(classifier, "n", 3.0, direction=0.5)
        feature = manager.feature_of("n")
        assert feature is not None
        assert feature.speed == pytest.approx(3.0)
        assert feature.direction == pytest.approx(0.5)


class TestReconstruction:
    def test_reconstruct_rebuilds(self, setup):
        manager, classifier = setup
        for node, speed in (("a", 2.0), ("b", 2.1), ("c", 8.0)):
            teach(classifier, node, speed)
            manager.place(node)
        count = manager.reconstruct()
        assert count == 2
        assert manager.reconstructions == 1

    def test_reconstruct_drops_stopped_nodes(self, setup):
        manager, classifier = setup
        teach(classifier, "n", 3.0)
        manager.place("n")
        teach(classifier, "n", 0.0, n=10)
        manager.reconstruct()
        assert manager.cluster_of("n") is None

    def test_summary(self, setup):
        manager, classifier = setup
        teach(classifier, "a", 2.0)
        manager.place("a")
        summary = manager.summary()
        assert summary["clusters"] == 1.0
        assert summary["clustered_nodes"] == 1.0
        assert summary["mean_size"] == 1.0
