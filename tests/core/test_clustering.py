"""Tests for sequential (BSAS) clustering."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import MotionFeature, SequentialClusterer
from repro.geometry.vec import angle_difference

speeds = st.floats(min_value=0.0, max_value=12.0)
angles = st.floats(min_value=-math.pi, max_value=math.pi)


class TestMotionFeature:
    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            MotionFeature(-1.0, 0.0)

    def test_speed_distance(self):
        a, b = MotionFeature(2.0, 0.0), MotionFeature(5.0, 1.0)
        assert a.distance_to(b, direction_weight=0.0) == 3.0

    def test_direction_weight(self):
        a, b = MotionFeature(2.0, 0.0), MotionFeature(2.0, 1.0)
        assert a.distance_to(b, direction_weight=2.0) == pytest.approx(2.0)

    def test_direction_distance_wraps(self):
        a = MotionFeature(1.0, math.pi - 0.05)
        b = MotionFeature(1.0, -math.pi + 0.05)
        assert a.distance_to(b, direction_weight=1.0) == pytest.approx(0.1, abs=1e-6)


class TestBsasBasics:
    def test_first_node_creates_cluster(self):
        c = SequentialClusterer(alpha=0.5)
        cluster, moved = c.assign("a", MotionFeature(2.0, 0.0))
        assert c.cluster_count() == 1
        assert "a" in cluster
        assert not moved

    def test_similar_nodes_share_cluster(self):
        c = SequentialClusterer(alpha=0.5)
        c.assign("a", MotionFeature(2.0, 0.0))
        cluster, _ = c.assign("b", MotionFeature(2.2, 0.0))
        assert c.cluster_count() == 1
        assert len(cluster) == 2

    def test_distant_nodes_split(self):
        c = SequentialClusterer(alpha=0.5)
        c.assign("walker", MotionFeature(1.5, 0.0))
        c.assign("vehicle", MotionFeature(8.0, 0.0))
        assert c.cluster_count() == 2

    def test_centroid_updates_with_members(self):
        c = SequentialClusterer(alpha=1.0)
        c.assign("a", MotionFeature(2.0, 0.0))
        c.assign("b", MotionFeature(2.8, 0.0))
        cluster = c.cluster_of("a")
        assert cluster.average_speed == pytest.approx(2.4)

    def test_reassign_moves_node(self):
        c = SequentialClusterer(alpha=0.5)
        c.assign("a", MotionFeature(2.0, 0.0))
        c.assign("b", MotionFeature(2.0, 0.0))
        c.assign("a", MotionFeature(9.0, 0.0))
        assert c.cluster_of("a") is not c.cluster_of("b")
        assert len(c.cluster_of("b")) == 1

    def test_empty_clusters_garbage_collected(self):
        c = SequentialClusterer(alpha=0.5)
        c.assign("a", MotionFeature(2.0, 0.0))
        c.assign("a", MotionFeature(9.0, 0.0))
        assert c.cluster_count() == 1

    def test_unassign(self):
        c = SequentialClusterer(alpha=0.5)
        c.assign("a", MotionFeature(2.0, 0.0))
        c.unassign("a")
        assert c.cluster_of("a") is None
        assert c.cluster_count() == 0

    def test_unassign_unknown_is_noop(self):
        SequentialClusterer(alpha=0.5).unassign("ghost")

    def test_clear(self):
        c = SequentialClusterer(alpha=0.5)
        c.assign("a", MotionFeature(2.0, 0.0))
        c.clear()
        assert c.cluster_count() == 0
        assert c.assigned_nodes() == []


class TestMaxClusters:
    def test_cap_respected(self):
        c = SequentialClusterer(alpha=0.1, max_clusters=2)
        for i, speed in enumerate((1.0, 5.0, 9.0, 13.0)):
            c.assign(f"n{i}", MotionFeature(speed, 0.0))
        assert c.cluster_count() == 2

    def test_overflow_joins_nearest(self):
        c = SequentialClusterer(alpha=0.1, max_clusters=2)
        c.assign("slow", MotionFeature(1.0, 0.0))
        c.assign("fast", MotionFeature(9.0, 0.0))
        c.assign("medium-fast", MotionFeature(8.0, 0.0))
        assert c.cluster_of("medium-fast") is c.cluster_of("fast")

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            SequentialClusterer(alpha=0.5, max_clusters=0)


class TestValidation:
    def test_alpha_positive(self):
        with pytest.raises(ValueError):
            SequentialClusterer(alpha=0.0)

    def test_direction_weight_non_negative(self):
        with pytest.raises(ValueError):
            SequentialClusterer(alpha=0.5, direction_weight=-1.0)


class TestInvariants:
    @given(
        st.lists(st.tuples(speeds, angles), min_size=1, max_size=40),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_insertion_within_alpha_of_centroid(self, samples, alpha):
        """BSAS invariant: at insertion, a joined node was within alpha of
        the cluster it joined (or it founded a new one)."""
        c = SequentialClusterer(alpha=alpha)
        for i, (speed, theta) in enumerate(samples):
            feature = MotionFeature(speed, theta)
            before = {cl.cluster_id: cl.centroid for cl in c.clusters}
            cluster, _ = c.assign(f"n{i}", feature)
            if cluster.cluster_id in before and len(cluster) > 1:
                d = feature.distance_to(before[cluster.cluster_id], 0.0)
                assert d < alpha

    @given(st.lists(st.tuples(speeds, angles), min_size=1, max_size=40))
    def test_every_node_in_exactly_one_cluster(self, samples):
        c = SequentialClusterer(alpha=1.0)
        for i, (speed, theta) in enumerate(samples):
            c.assign(f"n{i % 7}", MotionFeature(speed, theta))
        memberships = [m for cl in c.clusters for m in cl.members]
        assert sorted(memberships) == sorted(set(memberships))
        assert set(memberships) == set(c.assigned_nodes())

    @given(
        st.lists(st.tuples(speeds, angles), min_size=1, max_size=40),
        st.floats(min_value=0.2, max_value=3.0),
    )
    def test_cluster_count_bounded_by_speed_range(self, samples, alpha):
        """Clusters partition speed space into intervals no finer than
        roughly alpha, so their count is bounded."""
        c = SequentialClusterer(alpha=alpha)
        for i, (speed, theta) in enumerate(samples):
            c.assign(f"n{i}", MotionFeature(speed, theta))
        speed_span = 12.0
        assert c.cluster_count() <= speed_span / alpha + 2

    @given(st.lists(st.tuples(speeds, angles), min_size=2, max_size=30))
    def test_average_speed_non_negative(self, samples):
        c = SequentialClusterer(alpha=0.7)
        for i, (speed, theta) in enumerate(samples):
            c.assign(f"n{i}", MotionFeature(speed, theta))
        for cluster in c.clusters:
            assert cluster.average_speed >= 0.0


class TestCentroidCache:
    """The cached centroid must always equal a fresh recomputation."""

    def _fresh_centroid(self, cluster):
        n = len(cluster)
        speed = sum(f.speed for f in cluster._members.values()) / n
        x = sum(math.cos(f.direction) for f in cluster._members.values()) / n
        y = sum(math.sin(f.direction) for f in cluster._members.values()) / n
        return max(speed, 0.0), math.atan2(y, x)

    def test_cache_hit_returns_same_object(self):
        c = SequentialClusterer(alpha=1.0)
        cluster, _ = c.assign("a", MotionFeature(1.0, 0.1))
        first = cluster.centroid
        assert cluster.centroid is first

    def test_add_invalidates(self):
        c = SequentialClusterer(alpha=1.0)
        cluster, _ = c.assign("a", MotionFeature(1.0, 0.1))
        before = cluster.centroid
        cluster.add("b", MotionFeature(1.5, 0.3))
        after = cluster.centroid
        assert after is not before
        speed, direction = self._fresh_centroid(cluster)
        assert after.speed == speed
        assert after.direction == direction

    def test_remove_invalidates(self):
        c = SequentialClusterer(alpha=1.0)
        cluster, _ = c.assign("a", MotionFeature(1.0, 0.1))
        cluster.add("b", MotionFeature(1.5, 0.3))
        cluster.centroid  # prime the cache
        cluster.remove("b")
        speed, direction = self._fresh_centroid(cluster)
        assert cluster.centroid.speed == speed
        assert cluster.centroid.direction == direction

    def test_assign_reassignment_invalidates_both_clusters(self):
        c = SequentialClusterer(alpha=0.5)
        first, _ = c.assign("a", MotionFeature(1.0, 0.0))
        c.assign("b", MotionFeature(1.1, 0.0))
        first.centroid  # prime
        second, moved = c.assign("b", MotionFeature(5.0, 0.0))  # moves far away
        assert second is not first
        assert moved
        assert first.centroid.speed == 1.0

    @given(st.lists(st.tuples(speeds, angles), min_size=1, max_size=40))
    def test_cached_centroid_matches_recomputation(self, samples):
        c = SequentialClusterer(alpha=0.8)
        for i, (speed, theta) in enumerate(samples):
            c.assign(f"n{i % 5}", MotionFeature(speed, theta))
        for cluster in c.clusters:
            centroid = cluster.centroid
            speed, direction = self._fresh_centroid(cluster)
            assert centroid.speed == pytest.approx(speed, abs=1e-12)
            # atan2 of a near-cancelled mean heading vector is ill-conditioned:
            # the cluster's incremental sums accumulate in add/remove order while
            # _fresh_centroid sums in dict order, and float addition is not
            # associative.  Only compare directions when the resultant is large
            # enough that both summation orders agree to ~1e-12 in angle.
            n = len(cluster)
            rx = sum(math.cos(f.direction) for f in cluster._members.values()) / n
            ry = sum(math.sin(f.direction) for f in cluster._members.values()) / n
            if math.hypot(rx, ry) > 1e-9:
                delta = angle_difference(centroid.direction, direction)
                assert delta == pytest.approx(0.0, abs=1e-9)
