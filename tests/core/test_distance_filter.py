"""Tests for the Distance Filter."""

import pytest
from hypothesis import given, strategies as st

from repro.core import DistanceFilter, FilterDecision
from repro.geometry import Vec2

coords = st.floats(min_value=-1e3, max_value=1e3)


@pytest.fixture
def df():
    return DistanceFilter()


class TestBasics:
    def test_first_update_always_transmits(self, df):
        decision = df.decide("n", Vec2(0, 0), 0.0, dth=100.0)
        assert decision is FilterDecision.TRANSMIT

    def test_below_threshold_suppressed(self, df):
        df.decide("n", Vec2(0, 0), 0.0, dth=5.0)
        assert df.decide("n", Vec2(3, 0), 1.0, dth=5.0) is FilterDecision.SUPPRESS

    def test_above_threshold_transmits(self, df):
        df.decide("n", Vec2(0, 0), 0.0, dth=5.0)
        assert df.decide("n", Vec2(6, 0), 1.0, dth=5.0) is FilterDecision.TRANSMIT

    def test_exactly_at_threshold_suppressed(self, df):
        """Strict inequality: displacement == DTH does not transmit."""
        df.decide("n", Vec2(0, 0), 0.0, dth=5.0)
        assert df.decide("n", Vec2(5, 0), 1.0, dth=5.0) is FilterDecision.SUPPRESS

    def test_zero_dth_zero_displacement_suppressed(self, df):
        """A stationary node with DTH 0 stays silent after its first LU."""
        df.decide("n", Vec2(1, 1), 0.0, dth=0.0)
        assert df.decide("n", Vec2(1, 1), 1.0, dth=0.0) is FilterDecision.SUPPRESS

    def test_zero_dth_any_movement_transmits(self, df):
        df.decide("n", Vec2(0, 0), 0.0, dth=0.0)
        assert df.decide("n", Vec2(0.01, 0), 1.0, dth=0.0) is FilterDecision.TRANSMIT

    def test_negative_dth_rejected(self, df):
        with pytest.raises(ValueError):
            df.decide("n", Vec2(0, 0), 0.0, dth=-1.0)


class TestReferenceSemantics:
    def test_reference_is_last_transmitted_not_last_seen(self, df):
        """A creeping node must eventually transmit: displacement accumulates
        against the last *transmitted* fix."""
        df.decide("n", Vec2(0, 0), 0.0, dth=5.0)
        decisions = []
        for i in range(1, 10):
            decisions.append(df.decide("n", Vec2(float(i), 0), float(i), dth=5.0))
        assert FilterDecision.TRANSMIT in decisions
        first_tx = decisions.index(FilterDecision.TRANSMIT)
        assert first_tx == 5  # at x=6: 6 > 5

    def test_transmit_refreshes_reference(self, df):
        df.decide("n", Vec2(0, 0), 0.0, dth=2.0)
        df.decide("n", Vec2(3, 0), 1.0, dth=2.0)  # transmits, ref -> (3,0)
        assert df.last_transmitted("n") == Vec2(3, 0)
        assert df.decide("n", Vec2(4, 0), 2.0, dth=2.0) is FilterDecision.SUPPRESS

    def test_displacement_query(self, df):
        assert df.displacement("n", Vec2(0, 0)) is None
        df.decide("n", Vec2(0, 0), 0.0, dth=1.0)
        assert df.displacement("n", Vec2(3, 4)) == 5.0

    def test_forget(self, df):
        df.decide("n", Vec2(0, 0), 0.0, dth=1.0)
        df.forget("n")
        assert df.last_transmitted("n") is None
        assert df.decide("n", Vec2(0, 0), 1.0, dth=1.0) is FilterDecision.TRANSMIT

    def test_nodes_independent(self, df):
        df.decide("a", Vec2(0, 0), 0.0, dth=5.0)
        assert df.decide("b", Vec2(1, 0), 0.0, dth=5.0) is FilterDecision.TRANSMIT


class TestStats:
    def test_counters(self, df):
        df.decide("n", Vec2(0, 0), 0.0, dth=5.0)
        df.decide("n", Vec2(1, 0), 1.0, dth=5.0)
        df.decide("n", Vec2(9, 0), 2.0, dth=5.0)
        assert df.transmitted == 2
        assert df.suppressed == 1
        assert df.total == 3
        assert df.suppression_rate == pytest.approx(1 / 3)

    def test_empty_rate(self, df):
        assert df.suppression_rate == 0.0


class TestInvariants:
    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=60),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_suppressed_implies_within_dth(self, points, dth):
        """The paper's correctness property: while suppressed, the node is
        within DTH of the broker's last known fix."""
        df = DistanceFilter()
        reference = None
        for i, (x, y) in enumerate(points):
            position = Vec2(x, y)
            decision = df.decide("n", position, float(i), dth)
            if decision is FilterDecision.TRANSMIT:
                reference = position
            else:
                assert reference is not None
                assert position.distance_to(reference) <= dth

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=60))
    def test_zero_dth_transmits_every_distinct_position(self, points):
        df = DistanceFilter()
        last_tx = None
        for i, (x, y) in enumerate(points):
            position = Vec2(x, y)
            decision = df.decide("n", position, float(i), 0.0)
            if last_tx is None or position.distance_to(last_tx) > 0:
                assert decision is FilterDecision.TRANSMIT
                last_tx = position
