"""Tests for the ideal-LU and general-DF baselines."""

import pytest

from repro.core import FilterDecision, GeneralDistanceFilterPolicy, IdealLUPolicy
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate


def lu(node, t, x, vx=0.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(vx, 0.0),
        region_id="R1",
    )


class TestIdealLU:
    def test_everything_transmits(self):
        policy = IdealLUPolicy()
        for t in range(10):
            assert policy.process(lu("n", t, 0.0)) is FilterDecision.TRANSMIT
        assert policy.transmitted == 10

    def test_name(self):
        assert IdealLUPolicy().name == "ideal"


class TestGeneralDF:
    def test_name_includes_factor(self):
        assert GeneralDistanceFilterPolicy(1.25).name == "general-df(1.25av)"

    def test_first_update_transmits(self):
        policy = GeneralDistanceFilterPolicy(1.0)
        assert policy.process(lu("n", 0.0, 0.0, vx=2.0)) is FilterDecision.TRANSMIT

    def test_global_average_shared_across_nodes(self):
        """The vehicle's speed inflates the DTH applied to the walker."""
        policy = GeneralDistanceFilterPolicy(1.0)
        # Teach the global average with a fast vehicle.
        for t in range(10):
            policy.process(lu("veh", t, x=9.0 * t, vx=9.0))
        avg = policy.dth_policy.average_speed
        assert avg > 4.0
        # The walker moving 1.5 m/s per step is now under the global DTH...
        policy.process(lu("walk", 0.0, x=0.0, vx=1.5))
        suppressed = 0
        for t in range(1, 4):
            decision = policy.process(lu("walk", t, x=1.5 * t, vx=1.5))
            if decision is FilterDecision.SUPPRESS:
                suppressed += 1
        assert suppressed >= 2  # over-filtered relative to its mobility

    def test_fast_node_underfiltered(self):
        """A node faster than the global average transmits every step."""
        policy = GeneralDistanceFilterPolicy(1.0)
        for t in range(10):
            policy.process(lu("walk", t, x=1.0 * t, vx=1.0))
        decisions = []
        for t in range(10):
            decisions.append(policy.process(lu("veh", t, x=9.0 * t, vx=9.0)))
        assert all(d is FilterDecision.TRANSMIT for d in decisions)

    def test_stats_exposed(self):
        policy = GeneralDistanceFilterPolicy(1.0)
        policy.process(lu("n", 0.0, 0.0))
        policy.process(lu("n", 1.0, 0.0))
        assert policy.distance_filter.total == 2
        assert policy.distance_filter.suppressed == 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            GeneralDistanceFilterPolicy(0.0)
