"""Tests for the full ADF pipeline."""

import pytest

from repro.core import AdaptiveDistanceFilter, AdfConfig, FilterDecision
from repro.geometry import Vec2
from repro.mobility.states import MobilityState
from repro.network.messages import LocationUpdate


def lu(node, t, x, y=0.0, vx=0.0, vy=0.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, y),
        velocity=Vec2(vx, vy),
        region_id="R1",
    )


@pytest.fixture
def adf():
    return AdaptiveDistanceFilter(
        AdfConfig(dth_factor=1.0, alpha=0.75, recluster_interval=10.0)
    )


class TestConfig:
    def test_defaults(self):
        cfg = AdfConfig()
        assert cfg.dth_factor == 1.0
        assert cfg.report_interval == 1.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            AdfConfig(dth_factor=0.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            AdfConfig(alpha=-1.0)

    def test_name_includes_factor(self):
        adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=1.25))
        assert adf.name == "adf(1.25av)"


class TestPipeline:
    def test_first_update_transmits(self, adf):
        assert adf.process(lu("n", 0.0, 0.0, vx=2.0)) is FilterDecision.TRANSMIT

    def test_stationary_node_suppressed_after_first(self, adf):
        adf.process(lu("sitter", 0.0, 5.0))
        for t in range(1, 8):
            decision = adf.process(lu("sitter", float(t), 5.0))
            assert decision is FilterDecision.SUPPRESS
        assert adf.label_of("sitter") is MobilityState.STOP

    def test_constant_speed_node_filtered_at_own_pace(self, adf):
        """At factor 1.0 a node clustered with itself transmits roughly
        every other step (displacement == DTH is suppressed, 2x is not)."""
        decisions = []
        for t in range(20):
            decisions.append(
                adf.process(lu("w", float(t), x=2.0 * t, vx=2.0))
            )
        transmitted = sum(1 for d in decisions if d is FilterDecision.TRANSMIT)
        assert 8 <= transmitted <= 12

    def test_fast_node_gets_larger_dth(self, adf):
        for t in range(6):
            adf.process(lu("fast", float(t), x=8.0 * t, vx=8.0))
            adf.process(lu("slow", float(t), x=1.0 * t, vx=1.0))
        assert adf.dth_of("fast") > adf.dth_of("slow") > 0.0

    def test_forward_callback_on_transmit_only(self):
        forwarded = []
        adf = AdaptiveDistanceFilter(
            AdfConfig(dth_factor=1.0), forward=forwarded.append
        )
        adf.process(lu("sitter", 0.0, 5.0))
        adf.process(lu("sitter", 1.0, 5.0))
        assert len(forwarded) == 1

    def test_stats_accumulate(self, adf):
        adf.process(lu("sitter", 0.0, 5.0))
        adf.process(lu("sitter", 1.0, 5.0))
        assert adf.stats.received == 2
        assert adf.stats.transmitted == 1
        assert adf.stats.suppressed == 1
        assert adf.stats.suppression_rate == 0.5
        assert adf.stats.transmission_rate == 0.5

    def test_label_of_unknown(self, adf):
        assert adf.label_of("ghost") is None

    def test_dth_of_unknown_is_zero(self, adf):
        assert adf.dth_of("ghost") == 0.0


class TestRecluster:
    def test_tick_respects_interval(self, adf):
        for t in range(3):
            adf.process(lu("w", float(t), x=2.0 * t, vx=2.0))
        assert not adf.tick(5.0)
        assert adf.tick(10.0)
        assert not adf.tick(15.0)
        assert adf.tick(20.0)

    def test_reconstruction_counted(self, adf):
        adf.process(lu("w", 0.0, 0.0, vx=2.0))
        adf.tick(100.0)
        assert adf.cluster_manager.reconstructions == 1

    def test_summary_merges_filter_and_clusters(self, adf):
        adf.process(lu("w", 0.0, 0.0, vx=2.0))
        summary = adf.summary()
        assert "received" in summary
        assert "clusters" in summary


class TestPaperScenario:
    def test_mixed_population_reduction(self):
        """A toy fleet: 2 sitters, 2 walkers, 2 vehicles; the ADF must cut
        traffic substantially while keeping every displacement bounded."""
        adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=1.0))
        for t in range(40):
            for i in range(2):
                adf.process(lu(f"sit{i}", t, x=float(i) * 50))
                adf.process(lu(f"walk{i}", t, x=1.5 * t + i * 100, vx=1.5))
                adf.process(lu(f"veh{i}", t, x=7.0 * t + i * 200, vx=7.0))
        assert 0.3 <= adf.stats.suppression_rate <= 0.8
        # Sitters almost silent, vehicles filtered at their own scale.
        assert adf.dth_of("veh0") > adf.dth_of("walk0")


class TestConfigPropagation:
    def test_direction_weight_reaches_clusterer(self):
        adf = AdaptiveDistanceFilter(AdfConfig(direction_weight=1.5))
        assert adf.cluster_manager.clusterer.direction_weight == 1.5

    def test_max_clusters_bounds_growth(self):
        adf = AdaptiveDistanceFilter(
            AdfConfig(alpha=0.01, max_clusters=4)
        )
        # 30 nodes with 30 distinct speeds would want 30 singleton
        # clusters; the cap must hold.
        for i in range(30):
            speed = 0.5 + 0.3 * i
            for t in range(4):
                adf.process(
                    lu(f"n{i}", float(t), x=speed * t, vx=speed)
                )
        assert adf.cluster_manager.clusterer.cluster_count() <= 4

    def test_report_interval_scales_dth(self):
        fast_report = AdaptiveDistanceFilter(AdfConfig(report_interval=1.0))
        slow_report = AdaptiveDistanceFilter(AdfConfig(report_interval=5.0))
        for adf in (fast_report, slow_report):
            for t in range(6):
                adf.process(lu("n", float(t), x=2.0 * t, vx=2.0))
        assert slow_report.dth_of("n") == pytest.approx(
            5.0 * fast_report.dth_of("n"), rel=0.01
        )
