"""Tests for the battery-aware DTH extension."""

import pytest

from repro.core import FixedDth
from repro.core.battery_aware import BatteryAwareDth


def lookup(levels):
    return lambda node_id: levels[node_id]


class TestMultiplier:
    @pytest.fixture
    def policy(self):
        return BatteryAwareDth(
            FixedDth(2.0), lookup({}), max_boost=3.0, critical_level=0.2
        )

    def test_full_battery_unchanged(self, policy):
        assert policy.multiplier_for(1.0) == 1.0

    def test_critical_battery_max_boost(self, policy):
        assert policy.multiplier_for(0.2) == 3.0
        assert policy.multiplier_for(0.05) == 3.0

    def test_linear_in_between(self, policy):
        assert policy.multiplier_for(0.6) == pytest.approx(2.0)

    def test_monotone_in_drain(self, policy):
        levels = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0]
        multipliers = [policy.multiplier_for(b) for b in levels]
        assert multipliers == sorted(multipliers)

    def test_invalid_battery(self, policy):
        with pytest.raises(ValueError):
            policy.multiplier_for(1.5)


class TestPolicy:
    def test_scales_base_dth(self):
        policy = BatteryAwareDth(
            FixedDth(2.0),
            lookup({"fresh": 1.0, "dying": 0.1}),
            max_boost=3.0,
        )
        assert policy.dth_for("fresh") == 2.0
        assert policy.dth_for("dying") == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryAwareDth(FixedDth(1.0), lookup({}), max_boost=0.5)
        with pytest.raises(ValueError):
            BatteryAwareDth(FixedDth(1.0), lookup({}), critical_level=1.5)


class TestEndToEnd:
    def test_dying_node_transmits_less(self):
        """Same movement, different battery: the dying node sends fewer LUs."""
        from repro.core import DistanceFilter, FilterDecision
        from repro.geometry import Vec2

        policy = BatteryAwareDth(
            FixedDth(1.5), lookup({"fresh": 1.0, "dying": 0.1}), max_boost=3.0
        )
        counts = {}
        for node in ("fresh", "dying"):
            df = DistanceFilter()
            sent = 0
            for t in range(60):
                position = Vec2(2.0 * t, 0.0)
                decision = df.decide(node, position, float(t), policy.dth_for(node))
                if decision is FilterDecision.TRANSMIT:
                    sent += 1
            counts[node] = sent
        assert counts["dying"] < counts["fresh"]
