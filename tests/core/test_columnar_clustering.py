"""Parity and quality tests for the struct-of-arrays BSAS clusterer.

The :class:`ColumnarClusterer` in *exact* mode must be bit-identical to
:class:`SequentialClusterer` — same cluster ids, same creation order,
same membership and bit-equal centroids — on any op stream.  The
hypothesis suites here drive both side by side through random assign /
unassign / clear cycles, under every search regime (scalar scan,
forced vectorised argmin, direction-weighted variants) and through
``max_clusters`` saturation, and compare the full observable state
after every operation.

*Batched* mode is not bit-identical by design; its quality gate bounds
the LU-reduction and RMSE drift against exact mode at 10k nodes by the
declared tolerances.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MotionFeature, SequentialClusterer
from repro.core.columnar.clustering import (
    BATCHED_REDUCTION_TOLERANCE,
    BATCHED_RMSE_TOLERANCE,
    ColumnarClusterer,
)

speeds = st.floats(min_value=0.0, max_value=12.0)
angles = st.floats(min_value=-math.pi, max_value=math.pi)

#: (columnar kwargs, scalar kwargs) pairs covering every search regime:
#: the scalar scan (default scan_limit), the forced vectorised argmin
#: (scan_limit=0), both direction-weighted variants, saturation, and a
#: mixed regime that crosses the scan threshold as clusters appear.
CONFIGS = [
    pytest.param({"alpha": 0.75}, id="scan"),
    pytest.param({"alpha": 0.75, "scan_limit": 0}, id="argmin"),
    pytest.param({"alpha": 0.3, "max_clusters": 3}, id="saturated"),
    pytest.param({"alpha": 0.75, "direction_weight": 0.5}, id="weighted-scan"),
    pytest.param(
        {"alpha": 0.75, "direction_weight": 0.5, "scan_limit": 0},
        id="weighted-argmin",
    ),
    pytest.param(
        {"alpha": 0.05, "max_clusters": 6, "scan_limit": 2}, id="mixed-regime"
    ),
]


def make_pair(config, capacity=32):
    """A (scalar, columnar) clusterer pair from one config dict."""
    scalar_kwargs = {
        k: v
        for k, v in config.items()
        if k in ("direction_weight", "max_clusters")
    }
    seq = SequentialClusterer(config["alpha"], **scalar_kwargs)
    col = ColumnarClusterer(config["alpha"], capacity=capacity, **config_extras(config))
    return seq, col


def config_extras(config):
    return {k: v for k, v in config.items() if k != "alpha"}


def assert_parity(seq, col, capacity):
    """Full observable-state equality, centroids compared bit-for-bit."""
    clusters = seq.clusters
    assert col.cluster_count() == len(clusters)
    assert col.cluster_ids() == [c.cluster_id for c in clusters]
    assert col.cluster_sizes() == [len(c) for c in clusters]
    assert col.assigned_count() == len(seq.assigned_nodes())
    for cluster in clusters:
        # Bit-equality, not approx: the whole point of exact mode.
        assert col.centroid_speed(cluster.cluster_id) == cluster.average_speed
        if col.track_directions:
            assert (
                col.centroid_direction(cluster.cluster_id)
                == cluster.centroid.direction
            )
    for node in range(capacity):
        expected = seq.cluster_of(f"n{node}")
        if expected is None:
            assert col.cluster_of(node) is None
        else:
            assert col.cluster_of(node) == expected.cluster_id


class TestConstruction:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            ColumnarClusterer(0.0, capacity=4)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ColumnarClusterer(0.5, capacity=0)

    def test_bad_max_clusters(self):
        with pytest.raises(ValueError):
            ColumnarClusterer(0.5, capacity=4, max_clusters=0)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ColumnarClusterer(0.5, capacity=4, mode="bulk")

    def test_bad_scan_limit(self):
        with pytest.raises(ValueError):
            ColumnarClusterer(0.5, capacity=4, scan_limit=-1)

    def test_weighted_needs_directions(self):
        with pytest.raises(ValueError):
            ColumnarClusterer(
                0.5, capacity=4, direction_weight=1.0, track_directions=False
            )

    def test_directions_tracked_iff_weighted_by_default(self):
        assert not ColumnarClusterer(0.5, capacity=4).track_directions
        assert ColumnarClusterer(
            0.5, capacity=4, direction_weight=0.1
        ).track_directions

    def test_place_all_requires_directions_when_tracked(self):
        col = ColumnarClusterer(0.5, capacity=4, track_directions=True)
        with pytest.raises(ValueError):
            col.place_all(np.zeros(4, bool), np.ones(4), None)


class TestMovedFlag:
    def test_first_assignment_is_not_a_move(self):
        col = ColumnarClusterer(0.5, capacity=4)
        cid, moved = col.assign(0, 2.0, 0.0)
        assert cid == 1
        assert not moved

    def test_reassign_to_same_cluster_is_not_a_move(self):
        col = ColumnarClusterer(0.5, capacity=4)
        col.assign(0, 2.0, 0.0)
        col.assign(1, 2.1, 0.0)
        cid, moved = col.assign(0, 2.2, 0.0)
        assert cid == 1
        assert not moved

    def test_landing_in_a_different_cluster_is_a_move(self):
        col = ColumnarClusterer(0.5, capacity=4)
        col.assign(0, 2.0, 0.0)
        col.assign(1, 8.0, 0.0)
        cid, moved = col.assign(0, 8.1, 0.0)
        assert cid == 2
        assert moved

    def test_unassigned_node_never_moves(self):
        col = ColumnarClusterer(0.5, capacity=4)
        col.assign(0, 2.0, 0.0)
        col.unassign(0)
        _, moved = col.assign(0, 8.0, 0.0)
        assert not moved

    def test_matches_scalar_moved_semantics(self):
        seq = SequentialClusterer(0.5)
        col = ColumnarClusterer(0.5, capacity=4)
        stream = [(0, 2.0), (1, 8.0), (0, 8.1), (0, 2.0), (1, 8.2)]
        for node, speed in stream:
            cluster, seq_moved = seq.assign(f"n{node}", MotionFeature(speed, 0.0))
            cid, col_moved = col.assign(node, speed, 0.0)
            assert cid == cluster.cluster_id
            assert col_moved == seq_moved


class TestAssignParity:
    @pytest.mark.parametrize("config", CONFIGS)
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=15), speeds, angles),
            max_size=60,
        )
    )
    def test_random_streams(self, config, ops):
        seq, col = make_pair(config, capacity=16)
        for node, speed, angle in ops:
            cluster, seq_moved = seq.assign(
                f"n{node}", MotionFeature(speed, angle)
            )
            cid, col_moved = col.assign(node, speed, angle)
            assert cid == cluster.cluster_id
            assert col_moved == seq_moved
        assert_parity(seq, col, 16)

    @pytest.mark.parametrize("config", CONFIGS)
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["assign", "unassign", "clear"]),
                st.integers(min_value=0, max_value=11),
                speeds,
                angles,
            ),
            max_size=80,
        )
    )
    def test_unassign_clear_recluster_cycles(self, config, ops):
        seq, col = make_pair(config, capacity=12)
        for op, node, speed, angle in ops:
            if op == "assign":
                cluster, _ = seq.assign(f"n{node}", MotionFeature(speed, angle))
                cid, _ = col.assign(node, speed, angle)
                assert cid == cluster.cluster_id
            elif op == "unassign":
                seq.unassign(f"n{node}")
                col.unassign(node)
            else:
                seq.clear()
                col.clear()
            assert_parity(seq, col, 12)

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0]),
            ),
            max_size=60,
        )
    )
    def test_tie_heavy_duplicate_speeds(self, ops):
        """Equal distances must break to the earliest-created cluster."""
        seq = SequentialClusterer(0.5)
        col = ColumnarClusterer(0.5, capacity=16, scan_limit=0)
        for node, speed in ops:
            cluster, _ = seq.assign(f"n{node}", MotionFeature(speed, 0.0))
            cid, _ = col.assign(node, speed, 0.0)
            assert cid == cluster.cluster_id
        assert_parity(seq, col, 16)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rounds=st.integers(min_value=1, max_value=6),
    )
    def test_max_clusters_saturation_forces_joins(self, seed, rounds):
        """At the cap, out-of-range nodes join their nearest cluster."""
        rng = np.random.default_rng(seed)
        seq = SequentialClusterer(0.2, max_clusters=4)
        col = ColumnarClusterer(0.2, capacity=24, max_clusters=4)
        for _ in range(rounds):
            for node in range(24):
                speed = float(rng.uniform(0.0, 12.0))
                cluster, _ = seq.assign(f"n{node}", MotionFeature(speed, 0.0))
                cid, _ = col.assign(node, speed, 0.0)
                assert cid == cluster.cluster_id
            assert col.cluster_count() <= 4
            assert_parity(seq, col, 24)


class TestCompaction:
    def test_tombstone_churn_compacts_and_preserves_parity(self):
        """Kill clusters until compaction fires; parity must survive it."""
        seq = SequentialClusterer(0.1)
        col = ColumnarClusterer(0.1, capacity=8)
        # Each round parks every node in its own far-apart cluster, then
        # moves them all, tombstoning the previous generation of slots.
        for generation in range(40):
            base = 20.0 * generation
            for node in range(8):
                speed = base + 2.0 * node
                cluster, _ = seq.assign(f"n{node}", MotionFeature(speed, 0.0))
                cid, _ = col.assign(node, speed, 0.0)
                assert cid == cluster.cluster_id
            assert_parity(seq, col, 8)
        # Far fewer slots than the ~320 clusters ever created.
        assert col._nslots < 60


class TestPlaceAllParity:
    @pytest.mark.parametrize("config", CONFIGS)
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        steps=st.integers(min_value=1, max_value=8),
    )
    def test_bulk_sweep_matches_scalar_loop(self, config, seed, steps):
        """place_all == the object engine's per-node loop, bit-for-bit."""
        n = 40
        rng = np.random.default_rng(seed)
        seq, col = make_pair(config, capacity=n)
        for step in range(steps):
            stop = rng.random(n) < 0.25
            speed = rng.uniform(0.0, 12.0, n)
            direction = rng.uniform(-math.pi, math.pi, n)
            avg = np.zeros(n)
            want_avg = np.zeros(n)
            want_moves = 0
            for i in range(n):
                if stop[i]:
                    seq.unassign(f"n{i}")
                    continue
                feature = MotionFeature(float(speed[i]), float(direction[i]))
                cluster, moved = seq.assign(f"n{i}", feature)
                if moved:
                    want_moves += 1
                want_avg[i] = cluster.average_speed
            directions = direction if col.track_directions else None
            moves = col.place_all(stop, speed, directions, avg)
            assert moves == want_moves
            assert np.array_equal(avg, want_avg)
            assert_parity(seq, col, n)

    def test_clear_then_bulk_resweep(self):
        """Reconstruction: clear() then place_all reports zero moves."""
        n = 30
        rng = np.random.default_rng(7)
        col = ColumnarClusterer(0.75, capacity=n)
        stop = np.zeros(n, bool)
        speed = rng.uniform(0.0, 12.0, n)
        col.place_all(stop, speed, None)
        before = col.cluster_sizes()
        col.clear()
        assert col.cluster_count() == 0
        assert col.place_all(stop, speed, None) == 0
        assert col.cluster_sizes() == before


class TestBatchedMode:
    def test_batched_bulk_sweep_reasonable(self):
        """Batched placement lands every moving node, none of the stopped."""
        n = 5_000
        rng = np.random.default_rng(11)
        col = ColumnarClusterer(0.75, capacity=n, mode="batched")
        for _ in range(5):
            stop = rng.random(n) < 0.2
            speed = rng.uniform(0.0, 12.0, n)
            avg = np.zeros(n)
            col.place_all(stop, speed, None, avg)
            assert col.assigned_count() == int(np.count_nonzero(~stop))
            assert np.all(avg[stop] == 0.0)
            assert np.all(avg[~stop] >= 0.0)

    def test_single_assign_stays_exact_in_batched_mode(self):
        seq = SequentialClusterer(0.5)
        col = ColumnarClusterer(0.5, capacity=8, mode="batched")
        for node, speed in [(0, 2.0), (1, 8.0), (2, 2.1), (0, 8.2)]:
            cluster, _ = seq.assign(f"n{node}", MotionFeature(speed, 0.0))
            cid, _ = col.assign(node, speed, 0.0)
            assert cid == cluster.cluster_id
        assert_parity(seq, col, 8)

    def test_quality_vs_exact_at_10k_nodes(self):
        """The declared tolerances: batched mode must stay within
        BATCHED_REDUCTION_TOLERANCE (absolute LU-reduction drift) and
        BATCHED_RMSE_TOLERANCE (relative with-LE RMSE drift) of exact
        mode on a real 10k-node sweep."""
        from repro.campus import default_campus
        from repro.core.columnar import (
            ColumnarMobilitySource,
            run_columnar_experiment,
        )
        from repro.core.columnar.kernels import FAST_KERNEL
        from repro.experiments.config import ExperimentConfig
        from repro.mobility.population import table1_spec

        campus = default_campus()
        spec = table1_spec()
        base = spec.total_for(len(campus.roads()), len(campus.buildings()))
        factor = max(1, round(10_000 / base))
        config = ExperimentConfig(duration=8.0, dth_factors=(1.0,), seed=42)
        results = {}
        for mode in ("exact", "batched"):
            source = ColumnarMobilitySource(campus, spec.scaled(factor), seed=42)
            results[mode] = run_columnar_experiment(
                config,
                campus=campus,
                source=source,
                kernel=FAST_KERNEL,
                cluster_mode=mode,
            )
        exact, batched = results["exact"], results["batched"]
        assert batched.node_count == exact.node_count >= 9_000
        red_e = exact.reduction_vs_ideal("adf-1")
        red_b = batched.reduction_vs_ideal("adf-1")
        assert abs(red_b - red_e) <= BATCHED_REDUCTION_TOLERANCE
        rmse_e = exact.lanes["adf-1"].mean_rmse(with_le=True)
        rmse_b = batched.lanes["adf-1"].mean_rmse(with_le=True)
        assert abs(rmse_b - rmse_e) <= BATCHED_RMSE_TOLERANCE * rmse_e
