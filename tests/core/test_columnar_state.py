"""Columnar node state: conversions, round-trips and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campus import default_campus
from repro.core.columnar.state import (
    NO_PATTERN,
    PATTERN_CODES,
    PATTERN_FROM_CODE,
    ColumnarNodeState,
    NodeSnapshot,
)
from repro.geometry import Vec2
from repro.mobility.population import build_population, table1_spec
from repro.mobility.states import MobilityState
from repro.util.rng import RngRegistry

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
patterns = st.sampled_from([None, *PATTERN_CODES])


@st.composite
def snapshots(draw, index: int) -> NodeSnapshot:
    has_fix = draw(st.booleans())
    return NodeSnapshot(
        node_id=f"node-{index:04d}",
        position=Vec2(draw(finite), draw(finite)),
        velocity=Vec2(draw(finite), draw(finite)),
        heading=draw(finite),
        pattern=draw(patterns),
        dth=draw(finite),
        last_fix=Vec2(draw(finite), draw(finite)) if has_fix else None,
        last_fix_time=draw(finite) if has_fix else None,
    )


@st.composite
def snapshot_lists(draw) -> list[NodeSnapshot]:
    count = draw(st.integers(min_value=1, max_value=12))
    return [draw(snapshots(i)) for i in range(count)]


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(snapshot_lists())
    def test_snapshots_round_trip_exactly(self, snaps):
        state = ColumnarNodeState.from_snapshots(snaps)
        back = state.to_snapshots()
        assert back == snaps

    @settings(max_examples=150, deadline=None)
    @given(snapshot_lists())
    def test_from_snapshots_columns(self, snaps):
        state = ColumnarNodeState.from_snapshots(snaps)
        assert len(state) == len(snaps)
        for i, snap in enumerate(snaps):
            assert state.x[i] == snap.position.x
            assert state.vy[i] == snap.velocity.y
            code = (
                PATTERN_CODES[snap.pattern]
                if snap.pattern is not None
                else NO_PATTERN
            )
            assert state.pattern[i] == code
            assert bool(state.has_fix[i]) == (snap.last_fix is not None)

    def test_double_round_trip_is_stable(self):
        snaps = [
            NodeSnapshot(
                node_id="a",
                position=Vec2(1.5, -2.25),
                velocity=Vec2(0.0, 0.0),
                heading=0.75,
                pattern=MobilityState.LINEAR,
                dth=3.0,
                last_fix=Vec2(1.0, 1.0),
                last_fix_time=4.0,
            )
        ]
        once = ColumnarNodeState.from_snapshots(snaps).to_snapshots()
        twice = ColumnarNodeState.from_snapshots(once).to_snapshots()
        assert once == twice == snaps


class TestFromNodes:
    def test_population_positions_and_patterns(self):
        campus = default_campus()
        config_rng = RngRegistry(42)
        nodes = build_population(campus, table1_spec(), config_rng)
        state = ColumnarNodeState.from_nodes(nodes)
        assert len(state) == len(nodes)
        for i, node in enumerate(nodes):
            assert state.x[i] == node.position.x
            assert state.y[i] == node.position.y
            expected_heading = (
                0.0
                if node.velocity.x == 0.0 and node.velocity.y == 0.0
                else math.atan2(node.velocity.y, node.velocity.x)
            )
            assert state.heading[i] == expected_heading
            if node.true_state is not None:
                assert (
                    PATTERN_FROM_CODE[int(state.pattern[i])] == node.true_state
                )
        assert not state.has_fix.any()
        assert np.all(state.dth == 0.0)


class TestInvariants:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ColumnarNodeState(["a", "b", "a"])

    def test_index_of_matches_order(self):
        state = ColumnarNodeState(["x", "y", "z"])
        assert [state.index_of[nid] for nid in state.node_ids] == [0, 1, 2]

    def test_pattern_codes_bijective(self):
        assert sorted(PATTERN_CODES.values()) == [0, 1, 2]
        for state_, code in PATTERN_CODES.items():
            assert PATTERN_FROM_CODE[code] is state_
        assert PATTERN_FROM_CODE[NO_PATTERN] is None
