"""Tests for DTH policies."""

import pytest

from repro.core import (
    ClusterAverageDth,
    ClassifierConfig,
    FixedDth,
    GlobalAverageDth,
    MobilityClassifier,
    SequentialClusterer,
)
from repro.core.cluster_manager import ClusterManager


class TestFixedDth:
    def test_constant(self):
        policy = FixedDth(3.0)
        assert policy.dth_for("anyone") == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedDth(-1.0)


class TestGlobalAverageDth:
    def test_zero_before_observations(self):
        policy = GlobalAverageDth(1.0)
        assert policy.dth_for("n") == 0.0

    def test_running_average(self):
        policy = GlobalAverageDth(1.0)
        policy.observe_speed(2.0)
        policy.observe_speed(4.0)
        assert policy.average_speed == 3.0
        assert policy.dth_for("n") == 3.0

    def test_factor_scales(self):
        policy = GlobalAverageDth(0.5)
        policy.observe_speed(4.0)
        assert policy.dth_for("n") == 2.0

    def test_report_interval_scales(self):
        policy = GlobalAverageDth(1.0, report_interval=2.0)
        policy.observe_speed(3.0)
        assert policy.dth_for("n") == 6.0

    def test_same_for_all_nodes(self):
        policy = GlobalAverageDth(1.0)
        policy.observe_speed(5.0)
        assert policy.dth_for("a") == policy.dth_for("b")

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            GlobalAverageDth(1.0).observe_speed(-1.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            GlobalAverageDth(0.0)


@pytest.fixture
def manager():
    classifier = MobilityClassifier(ClassifierConfig(min_observations=1))
    return ClusterManager(classifier, SequentialClusterer(alpha=1.0)), classifier


class TestClusterAverageDth:
    def test_unclustered_node_gets_zero(self, manager):
        mgr, _ = manager
        policy = ClusterAverageDth(1.0, mgr)
        assert policy.dth_for("ghost") == 0.0

    def test_cluster_average_drives_dth(self, manager):
        mgr, classifier = manager
        for speed, node in ((6.0, "a"), (6.5, "b")):
            for _ in range(5):
                classifier.observe(node, speed, 0.0)
            mgr.place(node)
        policy = ClusterAverageDth(1.0, mgr)
        assert policy.dth_for("a") == pytest.approx(6.25, abs=0.01)

    def test_different_clusters_different_dth(self, manager):
        mgr, classifier = manager
        for speed, node in ((6.0, "fast"), (2.5, "slow")):
            for _ in range(5):
                classifier.observe(node, speed, 0.0)
            mgr.place(node)
        policy = ClusterAverageDth(1.0, mgr)
        assert policy.dth_for("fast") == pytest.approx(6.0, abs=0.01)
        assert policy.dth_for("slow") == pytest.approx(2.5, abs=0.01)

    def test_stopped_node_gets_zero(self, manager):
        mgr, classifier = manager
        for _ in range(5):
            classifier.observe("sitter", 0.0, 0.0)
        mgr.place("sitter")
        policy = ClusterAverageDth(1.0, mgr)
        assert policy.dth_for("sitter") == 0.0

    def test_factor_and_interval_scale(self, manager):
        mgr, classifier = manager
        for _ in range(5):
            classifier.observe("n", 4.0, 0.0)
        mgr.place("n")
        policy = ClusterAverageDth(1.25, mgr, report_interval=2.0)
        assert policy.dth_for("n") == pytest.approx(10.0, abs=0.05)
