"""Tests for rectangles and segments."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import Rect, Segment, Vec2

coords = st.floats(min_value=-1e4, max_value=1e4)


class TestRect:
    def test_basic_properties(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12
        assert r.center == Vec2(2, 1.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_zero_area_allowed(self):
        r = Rect(1, 1, 1, 1)
        assert r.area == 0.0
        assert r.contains(Vec2(1, 1))

    def test_from_center(self):
        r = Rect.from_center(Vec2(5, 5), 4, 2)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (3, 4, 7, 6)

    def test_contains_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(Vec2(0, 0))
        assert r.contains(Vec2(1, 1))
        assert not r.contains(Vec2(1.01, 0.5))

    def test_contains_with_tolerance(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(Vec2(1.05, 0.5), tol=0.1)

    def test_clamp(self):
        r = Rect(0, 0, 1, 1)
        assert r.clamp(Vec2(5, -3)) == Vec2(1, 0)
        assert r.clamp(Vec2(0.5, 0.5)) == Vec2(0.5, 0.5)

    def test_random_point_inside(self, rng):
        r = Rect(10, 20, 30, 40)
        for _ in range(100):
            assert r.contains(r.random_point(rng))

    def test_random_point_covers_area(self, rng):
        r = Rect(0, 0, 1, 1)
        points = [r.random_point(rng) for _ in range(500)]
        xs = np.array([p.x for p in points])
        assert xs.mean() == pytest.approx(0.5, abs=0.1)

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rect(2.1, 2.1, 3, 3))

    def test_expanded(self):
        r = Rect(0, 0, 1, 1).expanded(1.0)
        assert (r.x_min, r.y_max) == (-1.0, 2.0)


class TestSegment:
    def test_length_and_direction(self):
        s = Segment(Vec2(0, 0), Vec2(3, 4))
        assert s.length == 5.0
        assert s.direction == pytest.approx(math.atan2(4, 3))

    def test_point_at_clamps(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.point_at(-5) == Vec2(0, 0)
        assert s.point_at(5) == Vec2(5, 0)
        assert s.point_at(20) == Vec2(10, 0)

    def test_midpoint(self):
        assert Segment(Vec2(0, 0), Vec2(2, 2)).midpoint() == Vec2(1, 1)

    def test_project_interior(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        arc, closest = s.project(Vec2(4, 3))
        assert arc == pytest.approx(4.0)
        assert closest == Vec2(4, 0)

    def test_project_beyond_ends(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        arc, closest = s.project(Vec2(-5, 1))
        assert arc == 0.0
        assert closest == Vec2(0, 0)

    def test_distance_to_point(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.distance_to_point(Vec2(5, 3)) == pytest.approx(3.0)

    def test_degenerate_segment(self):
        s = Segment(Vec2(1, 1), Vec2(1, 1))
        assert s.length == 0.0
        arc, closest = s.project(Vec2(5, 5))
        assert arc == 0.0
        assert closest == Vec2(1, 1)


class TestProperties:
    @given(coords, coords, coords, coords)
    def test_clamped_point_is_inside(self, x, y, px, py):
        r = Rect(min(x, y), min(x, y), max(x, y) + 1, max(x, y) + 1)
        assert r.contains(r.clamp(Vec2(px, py)), tol=1e-9)

    @given(coords, coords, coords, coords, st.floats(min_value=0, max_value=100))
    def test_point_at_is_on_segment(self, x1, y1, x2, y2, s):
        seg = Segment(Vec2(x1, y1), Vec2(x2, y2))
        p = seg.point_at(s)
        assert seg.distance_to_point(p) < 1e-6
