"""Tests for 2-D vectors and angle arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Vec2, angle_difference, normalize_angle

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
angles = st.floats(min_value=-50.0, max_value=50.0)


class TestArithmetic:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_mul_div(self):
        assert Vec2(1, 2) * 2 == Vec2(2, 4)
        assert 2 * Vec2(1, 2) == Vec2(2, 4)
        assert Vec2(2, 4) / 2 == Vec2(1, 2)

    def test_neg(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_immutability(self):
        v = Vec2(1, 2)
        with pytest.raises(AttributeError):
            v.x = 5  # type: ignore[misc]


class TestMetrics:
    def test_norm(self):
        assert Vec2(3, 4).norm() == 5.0
        assert Vec2(3, 4).norm_squared() == 25.0

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == 5.0

    def test_dot_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0

    def test_angle(self):
        assert Vec2(1, 0).angle() == 0.0
        assert Vec2(0, 1).angle() == pytest.approx(math.pi / 2)
        assert Vec2(-1, 0).angle() == pytest.approx(math.pi)

    def test_zero_vector_angle_is_zero(self):
        assert Vec2.zero().angle() == 0.0

    def test_unit(self):
        u = Vec2(3, 4).unit()
        assert u.norm() == pytest.approx(1.0)

    def test_unit_of_zero_raises(self):
        with pytest.raises(ValueError):
            Vec2.zero().unit()

    def test_rotation(self):
        r = Vec2(1, 0).rotated(math.pi / 2)
        assert r.is_close(Vec2(0, 1), tol=1e-12)

    def test_lerp(self):
        assert Vec2(0, 0).lerp(Vec2(10, 20), 0.5) == Vec2(5, 10)

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi / 2)
        assert v.is_close(Vec2(0, 2), tol=1e-12)

    def test_as_tuple(self):
        assert Vec2(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestAngleHelpers:
    @pytest.mark.parametrize(
        "theta,expected",
        [
            (0.0, 0.0),
            (math.pi, math.pi),
            (-math.pi, math.pi),
            (3 * math.pi, math.pi),
            (2 * math.pi, 0.0),
        ],
    )
    def test_normalize_angle(self, theta, expected):
        assert normalize_angle(theta) == pytest.approx(expected)

    def test_angle_difference_sign(self):
        assert angle_difference(0.1, 0.0) == pytest.approx(0.1)
        assert angle_difference(0.0, 0.1) == pytest.approx(-0.1)

    def test_angle_difference_across_seam(self):
        a, b = math.pi - 0.05, -math.pi + 0.05
        assert abs(angle_difference(a, b)) == pytest.approx(0.1, abs=1e-9)


class TestProperties:
    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b = Vec2(x1, y1), Vec2(x2, y2)
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(angles)
    def test_normalize_angle_in_range(self, theta):
        n = normalize_angle(theta)
        assert -math.pi < n <= math.pi + 1e-12

    @given(angles, angles)
    def test_angle_difference_bounded(self, a, b):
        d = angle_difference(a, b)
        assert abs(d) <= math.pi + 1e-9

    @given(finite, finite, angles)
    def test_rotation_preserves_norm(self, x, y, theta):
        v = Vec2(x, y)
        assert v.rotated(theta).norm() == pytest.approx(v.norm(), rel=1e-6, abs=1e-6)
