"""Tests for arc-length parametrised paths."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Path, Vec2

coords = st.floats(min_value=-1e3, max_value=1e3)
waypoint_lists = st.lists(
    st.tuples(coords, coords), min_size=1, max_size=12
).map(lambda pts: [Vec2(x, y) for x, y in pts])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Path([])

    def test_single_point(self):
        p = Path([Vec2(1, 2)])
        assert p.length == 0.0
        assert p.point_at(10) == Vec2(1, 2)
        assert p.direction_at(0) == 0.0

    def test_duplicates_collapsed(self):
        p = Path([Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)])
        assert p.segment_count() == 1

    def test_length(self):
        p = Path([Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)])
        assert p.length == 7.0

    def test_start_end(self):
        p = Path([Vec2(0, 0), Vec2(5, 0)])
        assert p.start == Vec2(0, 0)
        assert p.end == Vec2(5, 0)


class TestParametrisation:
    def test_point_at_interior(self):
        p = Path([Vec2(0, 0), Vec2(10, 0)])
        assert p.point_at(4.0) == Vec2(4, 0)

    def test_point_at_vertex(self):
        p = Path([Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)])
        assert p.point_at(3.0) == Vec2(3, 0)

    def test_point_at_across_segments(self):
        p = Path([Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)])
        assert p.point_at(5.0) == Vec2(3, 2)

    def test_point_at_clamps(self):
        p = Path([Vec2(0, 0), Vec2(10, 0)])
        assert p.point_at(-1) == Vec2(0, 0)
        assert p.point_at(99) == Vec2(10, 0)

    def test_direction_changes_at_corner(self):
        p = Path([Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)])
        assert p.direction_at(1.0) == pytest.approx(0.0)
        assert p.direction_at(5.0) == pytest.approx(1.5707963, abs=1e-6)

    def test_remaining(self):
        p = Path([Vec2(0, 0), Vec2(10, 0)])
        assert p.remaining(4.0) == 6.0
        assert p.remaining(15.0) == 0.0


class TestComposition:
    def test_reversed(self):
        p = Path([Vec2(0, 0), Vec2(10, 0)])
        r = p.reversed()
        assert r.start == Vec2(10, 0)
        assert r.length == p.length

    def test_concat(self):
        a = Path([Vec2(0, 0), Vec2(1, 0)])
        b = Path([Vec2(1, 0), Vec2(1, 1)])
        c = a.concat(b)
        assert c.length == pytest.approx(2.0)
        assert c.segment_count() == 2


class TestProperties:
    @given(waypoint_lists)
    def test_reversed_preserves_length(self, waypoints):
        p = Path(waypoints)
        assert p.reversed().length == pytest.approx(p.length, rel=1e-9, abs=1e-9)

    @given(waypoint_lists, st.floats(min_value=0, max_value=1))
    def test_point_at_is_monotone_along_path(self, waypoints, frac):
        p = Path(waypoints)
        s = frac * p.length
        # Distance travelled from the start never exceeds arc length.
        assert p.start.distance_to(p.point_at(s)) <= s + 1e-6

    @given(waypoint_lists)
    def test_endpoints(self, waypoints):
        p = Path(waypoints)
        assert p.point_at(0.0).is_close(p.start, tol=1e-9)
        assert p.point_at(p.length).is_close(p.end, tol=1e-6)
