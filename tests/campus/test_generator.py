"""Tests for the parameterised grid-campus generator."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campus import generate_grid_campus
from repro.mobility.population import PopulationSpec, build_population
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def city():
    return generate_grid_campus(
        blocks_x=3, blocks_y=2, rng=np.random.default_rng(7)
    )


class TestStructure:
    def test_road_count(self, city):
        # (blocks_y + 1) horizontal + (blocks_x + 1) vertical roads.
        assert len(city.roads()) == 3 + 4

    def test_buildings_bounded_by_blocks(self, city):
        assert 0 <= len(city.buildings()) <= 6

    def test_graph_connected(self, city):
        assert nx.is_connected(city.graph)

    def test_all_buildings_reachable(self, city):
        for building in city.buildings():
            path = city.route("J0_0", f"{building.region_id}.door")
            assert path.length > 0

    def test_building_probability_zero(self):
        empty = generate_grid_campus(
            blocks_x=2, blocks_y=2, building_probability=0.0
        )
        assert empty.buildings() == []

    def test_building_probability_one(self):
        full = generate_grid_campus(
            blocks_x=2, blocks_y=2, building_probability=1.0
        )
        assert len(full.buildings()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_grid_campus(blocks_x=0)
        with pytest.raises(ValueError):
            generate_grid_campus(block_size=-5.0)

    def test_network_access_semantics(self, city):
        for road in city.roads():
            assert not road.has_wlan()
        for building in city.buildings():
            assert building.has_wlan()


class TestPopulationOnGeneratedCampus:
    def test_table1_style_population_builds(self):
        city = generate_grid_campus(
            blocks_x=2, blocks_y=2, building_probability=1.0
        )
        spec = PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        )
        nodes = build_population(city, spec, RngRegistry(5))
        # (3 horizontal + 3 vertical) roads x 2 + 4 buildings x 3
        assert len(nodes) == 6 * 2 + 4 * 3
        for node in nodes[:20]:
            node.advance(1.0)


class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        bx=st.integers(min_value=1, max_value=4),
        by=st.integers(min_value=1, max_value=4),
        prob=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_any_size_is_connected(self, bx, by, prob):
        city = generate_grid_campus(
            blocks_x=bx,
            blocks_y=by,
            building_probability=prob,
            rng=np.random.default_rng(1),
        )
        assert nx.is_connected(city.graph)
        assert len(city.roads()) == (bx + 1) + (by + 1)
