"""Tests for the Campus container and navigation graph."""

import pytest

from repro.campus import Campus
from repro.geometry import Vec2

from tests.campus.test_region import make_building, make_road


@pytest.fixture
def small_campus():
    campus = Campus([make_road("R1"), make_building("B1")])
    campus.add_node("a", Vec2(0, 5))
    campus.add_node("b", Vec2(100, 5))
    campus.add_node("door", Vec2(0, 25))
    campus.add_edge("a", "b", "R1")
    campus.add_edge("a", "door", "R1")
    return campus


class TestRegions:
    def test_duplicate_region_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Campus([make_road("R1"), make_road("R1")])

    def test_lookup(self, small_campus):
        assert small_campus.region("R1").region_id == "R1"
        with pytest.raises(KeyError):
            small_campus.region("R9")

    def test_roads_and_buildings(self, small_campus):
        assert [r.region_id for r in small_campus.roads()] == ["R1"]
        assert [b.region_id for b in small_campus.buildings()] == ["B1"]

    def test_region_at_prefers_buildings(self, small_campus):
        # (0..50, 0..50) building overlaps the road strip (0..100, 0..10).
        inside_both = Vec2(5, 5)
        region = small_campus.region_at(inside_both)
        assert region is not None and region.region_id == "B1"

    def test_region_at_none_outside(self, small_campus):
        assert small_campus.region_at(Vec2(999, 999)) is None

    def test_random_point_in(self, small_campus, rng):
        p = small_campus.random_point_in("B1", rng)
        assert small_campus.region("B1").contains(p)


class TestNavigation:
    def test_duplicate_node_rejected(self, small_campus):
        with pytest.raises(ValueError):
            small_campus.add_node("a", Vec2(1, 1))

    def test_edge_requires_nodes(self, small_campus):
        with pytest.raises(KeyError):
            small_campus.add_edge("a", "ghost", "R1")

    def test_edge_validates_region(self, small_campus):
        small_campus.add_node("c", Vec2(50, 5))
        with pytest.raises(KeyError):
            small_campus.add_edge("a", "c", "R99")

    def test_node_pos(self, small_campus):
        assert small_campus.node_pos("b") == Vec2(100, 5)
        with pytest.raises(KeyError):
            small_campus.node_pos("ghost")

    def test_nearest_node(self, small_campus):
        assert small_campus.nearest_node(Vec2(99, 6)) == "b"

    def test_route(self, small_campus):
        path = small_campus.route("door", "b")
        assert path.start == Vec2(0, 25)
        assert path.end == Vec2(100, 5)

    def test_route_no_path(self, small_campus):
        small_campus.add_node("island", Vec2(500, 500))
        with pytest.raises(ValueError, match="no route"):
            small_campus.route("a", "island")

    def test_route_between_points(self, small_campus):
        path = small_campus.route_between_points(Vec2(2, 6), Vec2(98, 6))
        assert path.start == Vec2(2, 6)
        assert path.end == Vec2(98, 6)
        assert path.length >= Vec2(2, 6).distance_to(Vec2(98, 6)) - 1e-9
