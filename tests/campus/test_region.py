"""Tests for campus regions."""

import pytest

from repro.campus import NetworkAccess, Region, RegionKind
from repro.geometry import Path, Rect, Vec2


def make_road(region_id="R1"):
    return Region(
        region_id=region_id,
        name="test road",
        kind=RegionKind.ROAD,
        bounds=Rect(0, 0, 100, 10),
        access=NetworkAccess.CELLULAR,
        centerline=Path([Vec2(0, 5), Vec2(100, 5)]),
    )


def make_building(region_id="B1"):
    return Region(
        region_id=region_id,
        name="test building",
        kind=RegionKind.BUILDING,
        bounds=Rect(0, 0, 50, 50),
        access=NetworkAccess.CELLULAR | NetworkAccess.WLAN,
        entrance=Vec2(0, 25),
    )


class TestValidation:
    def test_road_requires_centerline(self):
        with pytest.raises(ValueError, match="centerline"):
            Region(
                region_id="R9",
                name="bad",
                kind=RegionKind.ROAD,
                bounds=Rect(0, 0, 1, 1),
                access=NetworkAccess.CELLULAR,
            )

    def test_building_requires_entrance(self):
        with pytest.raises(ValueError, match="entrance"):
            Region(
                region_id="B9",
                name="bad",
                kind=RegionKind.BUILDING,
                bounds=Rect(0, 0, 1, 1),
                access=NetworkAccess.CELLULAR,
            )

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Region(
                region_id="",
                name="bad",
                kind=RegionKind.ROAD,
                bounds=Rect(0, 0, 1, 1),
                access=NetworkAccess.CELLULAR,
                centerline=Path([Vec2(0, 0), Vec2(1, 0)]),
            )


class TestPredicates:
    def test_kind_flags(self):
        assert make_road().is_road
        assert not make_road().is_building
        assert make_building().is_building

    def test_network_access(self):
        road, building = make_road(), make_building()
        assert road.has_cellular() and not road.has_wlan()
        assert building.has_cellular() and building.has_wlan()

    def test_contains(self):
        assert make_road().contains(Vec2(50, 5))
        assert not make_road().contains(Vec2(50, 50))
