"""Tests for the default 11-region campus (paper Fig. 1 topology)."""

import networkx as nx
import pytest

from repro.campus import default_campus
from repro.campus.builder import BUILDING_IDS, GATE_A, GATE_B, ROAD_IDS


@pytest.fixture(scope="module")
def built():
    return default_campus()


class TestInventory:
    def test_eleven_regions(self, built):
        assert len(built.regions) == 11

    def test_five_roads_six_buildings(self, built):
        assert {r.region_id for r in built.roads()} == set(ROAD_IDS)
        assert {b.region_id for b in built.buildings()} == set(BUILDING_IDS)

    def test_roads_have_centerlines(self, built):
        for road in built.roads():
            assert road.centerline is not None
            assert road.centerline.length > 0

    def test_buildings_have_entrances_and_corridors(self, built):
        for building in built.buildings():
            assert building.entrance is not None
            assert len(building.corridors) >= 2

    def test_network_access_per_paper(self, built):
        """Cellular everywhere; WLAN only in the 6 buildings."""
        for road in built.roads():
            assert road.has_cellular() and not road.has_wlan()
        for building in built.buildings():
            assert building.has_cellular() and building.has_wlan()


class TestTopology:
    def test_graph_is_connected(self, built):
        assert nx.is_connected(built.graph)

    def test_gates_present(self, built):
        assert built.node_pos("gateA") == GATE_A
        assert built.node_pos("gateB") == GATE_B

    def test_every_building_reachable_from_both_gates(self, built):
        for building in BUILDING_IDS:
            for gate in ("gateA", "gateB"):
                path = built.route(gate, f"{building}.door")
                assert path.length > 0

    def test_toms_route_gateb_to_library_uses_r2(self, built):
        """Tom's case (1): gate B -> R2 -> library (B4)."""
        path = built.route("gateB", "B4.door")
        assert "R2" in built.regions_on_route(path)

    def test_library_to_b3_changes_direction_twice(self, built):
        """Tom's case (8): B4 -> R2 -> R1 -> R3 -> B3 with two turns."""
        path = built.route("B4.door", "B3.door")
        regions = built.regions_on_route(path)
        for expected in ("R1", "R3"):
            assert expected in regions
        # at least two interior vertices => at least two direction changes
        assert path.segment_count() >= 3

    def test_b3_to_gate_a_uses_r4(self, built):
        """Tom's case (11): B3 -> ... -> R4 -> gate A."""
        path = built.route("B3.door", "gateA")
        assert "R4" in built.regions_on_route(path)

    def test_centerline_endpoints_inside_road_bounds(self, built):
        for road in built.roads():
            assert road.contains(road.centerline.start, tol=1e-6)
            assert road.contains(road.centerline.end, tol=1e-6)

    def test_entrances_inside_building_bounds(self, built):
        for building in built.buildings():
            assert building.contains(building.entrance, tol=1e-6)

    def test_corridors_inside_buildings(self, built):
        for building in built.buildings():
            for corridor in building.corridors:
                for wp in corridor.waypoints:
                    assert building.contains(wp, tol=1e-6)

    def test_buildings_do_not_overlap_each_other(self, built):
        buildings = built.buildings()
        for i, a in enumerate(buildings):
            for b in buildings[i + 1 :]:
                assert not a.bounds.intersects(b.bounds)
