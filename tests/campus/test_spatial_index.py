"""The spatial region index vs. the linear-scan reference semantics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.campus import default_campus
from repro.campus.campus import Campus
from repro.campus.region import NetworkAccess, Region, RegionKind
from repro.geometry import Path, Rect, Vec2


def _road(region_id: str, bounds: Rect) -> Region:
    centerline = Path(
        [
            Vec2(bounds.x_min, (bounds.y_min + bounds.y_max) / 2.0),
            Vec2(bounds.x_max, (bounds.y_min + bounds.y_max) / 2.0),
        ]
    )
    return Region(
        region_id=region_id,
        name=region_id,
        kind=RegionKind.ROAD,
        bounds=bounds,
        access=NetworkAccess.CELLULAR,
        centerline=centerline,
    )


def _building(region_id: str, bounds: Rect) -> Region:
    return Region(
        region_id=region_id,
        name=region_id,
        kind=RegionKind.BUILDING,
        bounds=bounds,
        access=NetworkAccess.CELLULAR | NetworkAccess.WLAN,
        entrance=bounds.center,
    )


_rects = st.builds(
    lambda x, y, w, h: Rect(x, y, x + w, y + h),
    x=st.floats(-50.0, 450.0),
    y=st.floats(-50.0, 450.0),
    w=st.floats(1.0, 200.0),
    h=st.floats(1.0, 200.0),
)


@st.composite
def _campuses(draw):
    """A random campus: 1-8 roads and 0-8 buildings, freely overlapping."""
    road_rects = draw(st.lists(_rects, min_size=1, max_size=8))
    building_rects = draw(st.lists(_rects, min_size=0, max_size=8))
    regions = [_road(f"road-{i}", r) for i, r in enumerate(road_rects)]
    regions += [_building(f"bldg-{i}", r) for i, r in enumerate(building_rects)]
    return Campus(regions)


_points = st.builds(
    Vec2,
    st.floats(-200.0, 800.0),
    st.floats(-200.0, 800.0),
)


class TestIndexMatchesLinearScan:
    """region_at (grid index) must agree with region_at_linear everywhere."""

    @settings(max_examples=200, deadline=None)
    @given(campus=_campuses(), points=st.lists(_points, min_size=1, max_size=20))
    def test_random_campuses(self, campus, points):
        for point in points:
            assert campus.region_at(point) is campus.region_at_linear(point)

    @settings(max_examples=100, deadline=None)
    @given(campus=_campuses())
    def test_region_corners_and_edges(self, campus):
        """Boundary points (where cell rounding bites) agree too."""
        for region in campus.regions.values():
            b = region.bounds
            for point in (
                Vec2(b.x_min, b.y_min),
                Vec2(b.x_max, b.y_max),
                Vec2(b.x_min, b.y_max),
                Vec2(b.x_max, b.y_min),
                b.center,
                Vec2(b.x_min, (b.y_min + b.y_max) / 2.0),
            ):
                assert campus.region_at(point) is campus.region_at_linear(point)

    def test_default_campus_dense_grid(self):
        campus = default_campus()
        xs = [i * 7.3 - 30.0 for i in range(70)]
        ys = [j * 6.1 - 30.0 for j in range(70)]
        for x in xs:
            for y in ys:
                point = Vec2(x, y)
                assert campus.region_at(point) is campus.region_at_linear(point)


class TestPrecedence:
    def test_building_wins_over_road_on_overlap(self):
        road = _road("r", Rect(0.0, 0.0, 100.0, 20.0))
        building = _building("b", Rect(40.0, 0.0, 60.0, 20.0))
        campus = Campus([road, building])
        inside_both = Vec2(50.0, 10.0)
        assert campus.region_at(inside_both) is building
        assert campus.region_at_linear(inside_both) is building
        road_only = Vec2(10.0, 10.0)
        assert campus.region_at(road_only) is road

    def test_first_road_wins_among_roads(self):
        first = _road("first", Rect(0.0, 0.0, 100.0, 20.0))
        second = _road("second", Rect(0.0, 0.0, 100.0, 20.0))
        campus = Campus([first, second])
        assert campus.region_at(Vec2(50.0, 10.0)) is first

    def test_outside_everything_is_none(self):
        campus = default_campus()
        assert campus.region_at(Vec2(1e6, 1e6)) is None
        assert campus.region_at(Vec2(-1e6, -1e6)) is None
        assert campus.region_at(Vec2(math.nan, math.nan)) is None


class TestIndexStructure:
    def test_grid_shape_and_candidates(self):
        campus = default_campus()
        index = campus.spatial_index
        cols, rows = index.grid_shape
        assert cols >= 1 and rows >= 1
        assert index.max_candidates() >= 1
        # Candidate sets are supersets of the true containing regions.
        point = campus.regions["R1"].bounds.center
        hit = campus.region_at(point)
        assert hit in index.candidates_at(point)

    def test_index_is_lazy_and_cached(self):
        campus = default_campus()
        assert campus._spatial_index is None
        first = campus.spatial_index
        assert campus.spatial_index is first


class TestRegionsView:
    def test_regions_mapping_is_read_only(self):
        campus = default_campus()
        with pytest.raises(TypeError):
            campus.regions["x"] = None  # type: ignore[index]
        with pytest.raises(AttributeError):
            campus.regions.pop("R1")  # type: ignore[attr-defined]

    def test_regions_view_tracks_registry(self):
        campus = default_campus()
        assert set(campus.regions) == set(campus._regions)


class TestNearestNodeCache:
    def test_matches_min_over_nodes(self):
        campus = default_campus()
        point = Vec2(123.0, 45.0)
        expected = min(
            campus.graph.nodes,
            key=lambda n: campus.node_pos(n).distance_to(point),
        )
        assert campus.nearest_node(point) == expected

    def test_cache_invalidated_by_add_node(self):
        campus = default_campus()
        probe = Vec2(-500.0, -500.0)
        campus.nearest_node(probe)  # prime the cache
        campus.add_node("brand-new", Vec2(-499.0, -499.0))
        assert campus.nearest_node(probe) == "brand-new"

    def test_empty_graph_raises(self):
        road = _road("r", Rect(0.0, 0.0, 10.0, 10.0))
        campus = Campus([road])
        with pytest.raises(ValueError):
            campus.nearest_node(Vec2(0.0, 0.0))
