"""Tests for the RTI kernel: federation/declaration/object services."""

import pytest

from repro.hla import FederateAmbassador, FederationObjectModel, RTIError, RTIKernel


class Recorder(FederateAmbassador):
    """An ambassador that logs every callback."""

    def __init__(self):
        self.discovered = []
        self.removed = []
        self.reflections = []
        self.interactions = []
        self.grants = []

    def discover_object_instance(self, instance, class_name, instance_name):
        self.discovered.append((instance, class_name, instance_name))

    def remove_object_instance(self, instance):
        self.removed.append(instance)

    def reflect_attribute_values(self, instance, attributes, timestamp):
        self.reflections.append((instance, attributes, timestamp))

    def receive_interaction(self, class_name, parameters, timestamp):
        self.interactions.append((class_name, parameters, timestamp))

    def time_advance_grant(self, time):
        self.grants.append(time)


@pytest.fixture
def fom():
    model = FederationObjectModel()
    model.add_object_class("MN", ("x", "y"))
    model.add_interaction_class("LU", ("node", "x"))
    return model


@pytest.fixture
def rti(fom):
    return RTIKernel("test", fom)


class TestFederationManagement:
    def test_join_returns_handles(self, rti):
        a = rti.join("a", Recorder())
        b = rti.join("b", Recorder())
        assert a != b
        assert rti.federate_names() == ["a", "b"]

    def test_duplicate_name_rejected(self, rti):
        rti.join("a", Recorder())
        with pytest.raises(RTIError):
            rti.join("a", Recorder())

    def test_resign_removes(self, rti):
        handle = rti.join("a", Recorder())
        rti.resign(handle)
        assert rti.federate_names() == []

    def test_resign_deletes_owned_instances(self, rti):
        amb_a, amb_b = Recorder(), Recorder()
        a = rti.join("a", amb_a)
        b = rti.join("b", amb_b)
        rti.publish_object_class(a, "MN")
        rti.subscribe_object_class(b, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        rti.resign(a)
        assert amb_b.removed == [instance]

    def test_unknown_handle_rejected(self, rti):
        with pytest.raises(RTIError):
            rti.publish_object_class(99, "MN")


class TestObjectManagement:
    def test_register_requires_publish(self, rti):
        a = rti.join("a", Recorder())
        with pytest.raises(RTIError, match="without publishing"):
            rti.register_object_instance(a, "MN", "mn-1")

    def test_subscriber_discovers_new_instances(self, rti):
        amb_b = Recorder()
        a = rti.join("a", Recorder())
        b = rti.join("b", amb_b)
        rti.publish_object_class(a, "MN")
        rti.subscribe_object_class(b, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        assert amb_b.discovered == [(instance, "MN", "mn-1")]

    def test_late_subscriber_discovers_existing(self, rti):
        amb_b = Recorder()
        a = rti.join("a", Recorder())
        rti.publish_object_class(a, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        b = rti.join("b", amb_b)
        rti.subscribe_object_class(b, "MN")
        assert amb_b.discovered == [(instance, "MN", "mn-1")]

    def test_owner_does_not_discover_own_instance(self, rti):
        amb = Recorder()
        a = rti.join("a", amb)
        rti.publish_object_class(a, "MN")
        rti.subscribe_object_class(a, "MN")
        rti.register_object_instance(a, "MN", "mn-1")
        assert amb.discovered == []

    def test_updates_reflected_to_subscribers(self, rti):
        amb_b = Recorder()
        a = rti.join("a", Recorder())
        b = rti.join("b", amb_b)
        rti.publish_object_class(a, "MN")
        rti.subscribe_object_class(b, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        rti.update_attribute_values(a, instance, {"x": 1.0, "y": 2.0})
        assert amb_b.reflections == [(instance, {"x": 1.0, "y": 2.0}, None)]

    def test_update_unknown_attribute_rejected(self, rti):
        a = rti.join("a", Recorder())
        rti.publish_object_class(a, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        with pytest.raises(RTIError, match="not declared"):
            rti.update_attribute_values(a, instance, {"z": 1.0})

    def test_non_owner_cannot_update(self, rti):
        a = rti.join("a", Recorder())
        b = rti.join("b", Recorder())
        rti.publish_object_class(a, "MN")
        rti.publish_object_class(b, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        with pytest.raises(RTIError, match="owned by"):
            rti.update_attribute_values(b, instance, {"x": 1.0})

    def test_get_attribute_values_snapshot(self, rti):
        a = rti.join("a", Recorder())
        rti.publish_object_class(a, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        rti.update_attribute_values(a, instance, {"x": 3.0})
        assert rti.get_attribute_values(instance) == {"x": 3.0}

    def test_delete_notifies_subscribers(self, rti):
        amb_b = Recorder()
        a = rti.join("a", Recorder())
        b = rti.join("b", amb_b)
        rti.publish_object_class(a, "MN")
        rti.subscribe_object_class(b, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        rti.delete_object_instance(a, instance)
        assert amb_b.removed == [instance]

    def test_delete_requires_ownership(self, rti):
        a = rti.join("a", Recorder())
        b = rti.join("b", Recorder())
        rti.publish_object_class(a, "MN")
        instance = rti.register_object_instance(a, "MN", "mn-1")
        with pytest.raises(RTIError):
            rti.delete_object_instance(b, instance)


class TestInteractions:
    def test_send_requires_publish(self, rti):
        a = rti.join("a", Recorder())
        with pytest.raises(RTIError, match="without publishing"):
            rti.send_interaction(a, "LU", {"node": "m"})

    def test_delivered_to_subscribers_only(self, rti):
        amb_b, amb_c = Recorder(), Recorder()
        a = rti.join("a", Recorder())
        b = rti.join("b", amb_b)
        rti.join("c", amb_c)
        rti.publish_interaction_class(a, "LU")
        rti.subscribe_interaction_class(b, "LU")
        rti.send_interaction(a, "LU", {"node": "m", "x": 1.0})
        assert amb_b.interactions == [("LU", {"node": "m", "x": 1.0}, None)]
        assert amb_c.interactions == []

    def test_sender_does_not_receive_own(self, rti):
        amb = Recorder()
        a = rti.join("a", amb)
        rti.publish_interaction_class(a, "LU")
        rti.subscribe_interaction_class(a, "LU")
        rti.send_interaction(a, "LU", {"node": "m"})
        assert amb.interactions == []

    def test_undeclared_parameter_rejected(self, rti):
        a = rti.join("a", Recorder())
        rti.publish_interaction_class(a, "LU")
        with pytest.raises(RTIError, match="not declared"):
            rti.send_interaction(a, "LU", {"bogus": 1})
