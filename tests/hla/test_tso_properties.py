"""Property-based tests of the RTI's conservative-delivery guarantees.

These generate random interleavings of TSO sends and time-advance
requests and assert the two invariants everything else rests on:

1. a constrained federate never receives a TSO message with a timestamp
   greater than its logical time at delivery ("no message from the
   future"), and deliveries arrive in timestamp order;
2. a granted TAR implies no regulating federate can still send a message
   with a timestamp below the granted time.
"""

from hypothesis import given, settings, strategies as st

from repro.hla import FederateAmbassador, FederationObjectModel, RTIKernel


class OrderRecorder(FederateAmbassador):
    """Checks HLA's callback ordering: TSO deliveries for a step arrive
    *before* the TAG that completes it, so each pending delivery must be
    validated against the grant that follows it."""

    def __init__(self):
        self.deliveries: list[float] = []  # all delivered timestamps
        self.pending: list[float] = []  # delivered since the last grant
        self.logical_time = 0.0
        self.violations: list[tuple[float, float]] = []

    def receive_interaction(self, class_name, parameters, timestamp):
        self.deliveries.append(timestamp)
        # A delivery outside a grant cycle must already be in the past.
        self.pending.append(timestamp)

    def time_advance_grant(self, time):
        self.logical_time = time
        for ts in self.pending:
            if ts > time + 1e-9:
                self.violations.append((ts, time))
        self.pending.clear()


def build():
    fom = FederationObjectModel()
    fom.add_interaction_class("LU", ("k",))
    rti = RTIKernel("prop", fom)
    sender_amb = OrderRecorder()
    receiver_amb = OrderRecorder()
    sender = rti.join("sender", sender_amb)
    receiver = rti.join("receiver", receiver_amb)
    rti.publish_interaction_class(sender, "LU")
    rti.subscribe_interaction_class(receiver, "LU")
    rti.enable_time_regulation(sender, lookahead=1.0)
    rti.enable_time_constrained(receiver)
    rti.enable_time_regulation(receiver, lookahead=1.0)
    rti.enable_time_constrained(sender)
    return rti, sender, receiver, sender_amb, receiver_amb


#: A step is (send_offset, advance_delta): the sender sends a message
#: `lookahead + send_offset` ahead of its time, then both advance by delta.
steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.25, max_value=3.0),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(steps)
def test_deliveries_in_timestamp_order_and_never_from_future(script):
    rti, sender, receiver, sender_amb, receiver_amb = build()
    sender_time = 0.0
    receiver_time = 0.0
    for send_offset, delta in script:
        rti.send_interaction(
            sender,
            "LU",
            {"k": 1},
            timestamp=sender_time + 1.0 + send_offset,
        )
        sender_time += delta
        receiver_time += delta
        rti.time_advance_request(sender, sender_time)
        rti.time_advance_request(receiver, receiver_time)

    assert receiver_amb.deliveries == sorted(receiver_amb.deliveries)
    # Conservative guarantee: every delivery is covered by the grant that
    # completes its cycle (equal is allowed, never greater).
    assert receiver_amb.violations == []


@settings(max_examples=60, deadline=None)
@given(steps)
def test_no_tso_left_behind(script):
    """After both federates advance past every sent timestamp, the TSO
    queue must be empty — conservative delivery may delay, never lose."""
    rti, sender, receiver, _, receiver_amb = build()
    sender_time = 0.0
    receiver_time = 0.0
    sent = 0
    max_ts = 0.0
    for send_offset, delta in script:
        ts = sender_time + 1.0 + send_offset
        rti.send_interaction(sender, "LU", {"k": 1}, timestamp=ts)
        sent += 1
        max_ts = max(max_ts, ts)
        sender_time += delta
        receiver_time += delta
        rti.time_advance_request(sender, sender_time)
        rti.time_advance_request(receiver, receiver_time)
    # Drain: advance both comfortably past the largest timestamp.
    final = max_ts + 10.0
    rti.time_advance_request(sender, final)
    rti.time_advance_request(receiver, final)
    assert len(receiver_amb.deliveries) == sent
    assert rti.pending_tso(receiver) == 0
