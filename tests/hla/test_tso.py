"""Tests for timestamp-ordered delivery under time management."""

import pytest

from repro.hla import FederateAmbassador, FederationObjectModel, RTIError, RTIKernel


class Recorder(FederateAmbassador):
    def __init__(self):
        self.events = []
        self.grants = []

    def receive_interaction(self, class_name, parameters, timestamp):
        self.events.append(("interaction", parameters.get("k"), timestamp))

    def reflect_attribute_values(self, instance, attributes, timestamp):
        self.events.append(("reflect", attributes, timestamp))

    def time_advance_grant(self, time):
        self.grants.append(time)


@pytest.fixture
def setup():
    fom = FederationObjectModel()
    fom.add_object_class("MN", ("x",))
    fom.add_interaction_class("LU", ("k",))
    rti = RTIKernel("tso", fom)
    sender_amb, receiver_amb = Recorder(), Recorder()
    sender = rti.join("sender", sender_amb)
    receiver = rti.join("receiver", receiver_amb)
    rti.publish_interaction_class(sender, "LU")
    rti.subscribe_interaction_class(receiver, "LU")
    rti.enable_time_regulation(sender, lookahead=1.0)
    rti.enable_time_constrained(receiver)
    return rti, sender, receiver, sender_amb, receiver_amb


class TestLookahead:
    def test_tso_requires_regulation(self):
        fom = FederationObjectModel()
        fom.add_interaction_class("LU", ("k",))
        rti = RTIKernel("t", fom)
        amb = Recorder()
        sender = rti.join("s", amb)
        rti.join("r", Recorder())
        rti.publish_interaction_class(sender, "LU")
        with pytest.raises(RTIError, match="not regulating"):
            rti.send_interaction(sender, "LU", {"k": 1}, timestamp=1.0)

    def test_lookahead_violation_rejected(self, setup):
        rti, sender, *_ = setup
        with pytest.raises(RTIError, match="lookahead"):
            rti.send_interaction(sender, "LU", {"k": 1}, timestamp=0.5)

    def test_send_at_exact_lookahead_allowed(self, setup):
        rti, sender, *_ = setup
        rti.send_interaction(sender, "LU", {"k": 1}, timestamp=1.0)


class TestDelivery:
    def test_tso_queued_until_grant(self, setup):
        rti, sender, receiver, _, receiver_amb = setup
        rti.send_interaction(sender, "LU", {"k": 1}, timestamp=2.0)
        assert receiver_amb.events == []
        assert rti.pending_tso(receiver) == 1
        # The receiver cannot be granted 2.0 while the sender might still
        # send messages before it; advance the sender first.
        rti.time_advance_request(sender, 5.0)
        rti.time_advance_request(receiver, 2.0)
        assert receiver_amb.events == [("interaction", 1, 2.0)]
        assert receiver_amb.grants == [2.0]

    def test_tso_released_in_timestamp_order(self, setup):
        rti, sender, receiver, _, receiver_amb = setup
        rti.send_interaction(sender, "LU", {"k": "late"}, timestamp=5.0)
        rti.send_interaction(sender, "LU", {"k": "early"}, timestamp=3.0)
        rti.time_advance_request(sender, 10.0)
        rti.time_advance_request(receiver, 10.0)
        keys = [e[1] for e in receiver_amb.events]
        assert keys == ["early", "late"]

    def test_partial_release(self, setup):
        rti, sender, receiver, _, receiver_amb = setup
        rti.send_interaction(sender, "LU", {"k": 1}, timestamp=2.0)
        rti.send_interaction(sender, "LU", {"k": 2}, timestamp=7.0)
        rti.time_advance_request(sender, 10.0)
        rti.time_advance_request(receiver, 3.0)
        assert [e[1] for e in receiver_amb.events] == [1]
        assert rti.pending_tso(receiver) == 1

    def test_unconstrained_receiver_gets_tso_immediately(self):
        fom = FederationObjectModel()
        fom.add_interaction_class("LU", ("k",))
        rti = RTIKernel("t", fom)
        receiver_amb = Recorder()
        sender = rti.join("s", Recorder())
        receiver = rti.join("r", receiver_amb)
        rti.publish_interaction_class(sender, "LU")
        rti.subscribe_interaction_class(receiver, "LU")
        rti.enable_time_regulation(sender, lookahead=1.0)
        rti.send_interaction(sender, "LU", {"k": 1}, timestamp=9.0)
        assert receiver_amb.events == [("interaction", 1, 9.0)]

    def test_no_message_delivered_into_receivers_past(self, setup):
        """The conservative guarantee: deliveries never precede logical time."""
        rti, sender, receiver, _, receiver_amb = setup
        rti.time_advance_request(receiver, 5.0)  # immediately granted (lbts inf? no)
        # sender is regulating at time 0 with lookahead 1 => lbts = 1 < 5,
        # so the receiver is NOT granted yet.
        assert receiver_amb.grants == []
        rti.send_interaction(sender, "LU", {"k": 1}, timestamp=2.0)
        # Sender advances, raising LBTS beyond 5; receiver gets its grant and
        # the message, in that causal order.
        rti.time_advance_request(sender, 10.0)
        assert receiver_amb.grants == [5.0]
        assert receiver_amb.events == [("interaction", 1, 2.0)]


class TestLockstepFederation:
    def test_three_federates_advance_in_lockstep(self):
        fom = FederationObjectModel()
        fom.add_interaction_class("LU", ("k",))
        rti = RTIKernel("t", fom)
        ambs = [Recorder() for _ in range(3)]
        handles = [rti.join(f"f{i}", amb) for i, amb in enumerate(ambs)]
        for h in handles:
            rti.enable_time_regulation(h, lookahead=1.0)
            rti.enable_time_constrained(h)
        for step in (1.0, 2.0, 3.0):
            for h in handles:
                rti.time_advance_request(h, step)
            for amb in ambs:
                assert amb.grants[-1] == step

    def test_resign_unblocks_waiters(self):
        fom = FederationObjectModel()
        fom.add_interaction_class("LU", ("k",))
        rti = RTIKernel("t", fom)
        amb_a, amb_b = Recorder(), Recorder()
        a = rti.join("a", amb_a)
        b = rti.join("b", amb_b)
        for h in (a, b):
            rti.enable_time_regulation(h, lookahead=1.0)
            rti.enable_time_constrained(h)
        rti.time_advance_request(a, 5.0)
        assert amb_a.grants == []
        rti.resign(b)
        assert amb_a.grants == [5.0]
