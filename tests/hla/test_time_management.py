"""Tests for conservative time management."""

import math

import pytest

from repro.hla.time_management import TimeManager


@pytest.fixture
def tm():
    manager = TimeManager()
    for handle in (1, 2):
        manager.add_federate(handle)
    return manager


class TestRegistration:
    def test_duplicate_rejected(self, tm):
        with pytest.raises(ValueError):
            tm.add_federate(1)

    def test_remove_unknown_is_noop(self, tm):
        tm.remove_federate(99)


class TestModes:
    def test_lookahead_must_be_positive(self, tm):
        with pytest.raises(ValueError):
            tm.enable_time_regulation(1, 0.0)

    def test_unregulated_guarantee_is_infinite(self, tm):
        assert tm.status(1).guarantee() == math.inf


class TestLbts:
    def test_no_regulators_means_infinite_lbts(self, tm):
        assert tm.lbts_for(1) == math.inf

    def test_lbts_excludes_self(self, tm):
        tm.enable_time_regulation(1, 1.0)
        assert tm.lbts_for(1) == math.inf
        assert tm.lbts_for(2) == 1.0

    def test_lbts_is_minimum_over_others(self, tm):
        tm.add_federate(3)
        tm.enable_time_regulation(1, 1.0)
        tm.enable_time_regulation(2, 5.0)
        assert tm.lbts_for(3) == 1.0

    def test_pending_request_raises_guarantee(self, tm):
        tm.enable_time_regulation(1, 1.0)
        tm.request_advance(1, 10.0)
        # Federate 1 promised nothing earlier than 10 + lookahead.
        assert tm.lbts_for(2) == 11.0


class TestGrants:
    def test_unconstrained_granted_immediately(self, tm):
        tm.request_advance(1, 50.0)
        assert (1, 50.0) in tm.grantable()

    def test_constrained_blocked_by_lbts(self, tm):
        tm.enable_time_constrained(1)
        tm.enable_time_regulation(2, 1.0)
        tm.request_advance(1, 50.0)
        assert tm.grantable() == []

    def test_constrained_granted_when_lbts_reaches(self, tm):
        tm.enable_time_constrained(1)
        tm.enable_time_regulation(2, 1.0)
        tm.request_advance(2, 49.0)  # guarantee becomes 50
        tm.request_advance(1, 50.0)
        grantable = dict(tm.grantable())
        assert grantable.get(1) == 50.0

    def test_grant_updates_logical_time(self, tm):
        tm.request_advance(1, 7.0)
        tm.grant(1, 7.0)
        assert tm.status(1).logical_time == 7.0
        assert tm.status(1).pending_request is None

    def test_grant_mismatch_rejected(self, tm):
        tm.request_advance(1, 7.0)
        with pytest.raises(ValueError):
            tm.grant(1, 8.0)

    def test_double_request_rejected(self, tm):
        tm.request_advance(1, 7.0)
        with pytest.raises(ValueError):
            tm.request_advance(1, 8.0)

    def test_backwards_request_rejected(self, tm):
        tm.request_advance(1, 7.0)
        tm.grant(1, 7.0)
        with pytest.raises(ValueError):
            tm.request_advance(1, 6.0)

    def test_grant_at_lbts_equality(self, tm):
        """A TAR to exactly LBTS is grantable (equal-timestamp delivery is
        still causally safe under our delivery rule)."""
        for h in (1, 2):
            tm.enable_time_regulation(h, 1.0)
            tm.enable_time_constrained(h)
        tm.request_advance(1, 1.0)  # LBTS for 1 is 0 + lookahead(2) = 1.0
        assert dict(tm.grantable()) == {1: 1.0}

    def test_lockstep_two_federates(self, tm):
        """Requests beyond the partner's guarantee block until it also asks."""
        for h in (1, 2):
            tm.enable_time_regulation(h, 1.0)
            tm.enable_time_constrained(h)
        tm.request_advance(1, 1.5)
        assert tm.grantable() == []  # 2 has only promised up to 1.0
        tm.request_advance(2, 1.5)
        granted = dict(tm.grantable())
        assert granted == {1: 1.5, 2: 1.5}

    def test_min_constrained_time(self, tm):
        tm.enable_time_constrained(1)
        assert tm.min_constrained_time() == 0.0
        tm.request_advance(1, 3.0)
        tm.grant(1, 3.0)
        assert tm.min_constrained_time() == 3.0
