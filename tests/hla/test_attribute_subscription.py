"""Tests for attribute-level subscription."""

import pytest

from repro.hla import FederationObjectModel, RTIError, RTIKernel

from tests.hla.test_rti import Recorder


@pytest.fixture
def setup():
    fom = FederationObjectModel()
    fom.add_object_class("MN", ("x", "y", "battery"))
    rti = RTIKernel("attr", fom)
    owner_amb, sub_amb = Recorder(), Recorder()
    owner = rti.join("owner", owner_amb)
    subscriber = rti.join("subscriber", sub_amb)
    rti.publish_object_class(owner, "MN")
    return rti, owner, subscriber, sub_amb


class TestAttributeSubscription:
    def test_filtered_reflection(self, setup):
        rti, owner, subscriber, sub_amb = setup
        rti.subscribe_object_class(subscriber, "MN", attributes=("x", "y"))
        instance = rti.register_object_instance(owner, "MN", "mn-1")
        rti.update_attribute_values(
            owner, instance, {"x": 1.0, "y": 2.0, "battery": 0.5}
        )
        assert sub_amb.reflections == [(instance, {"x": 1.0, "y": 2.0}, None)]

    def test_irrelevant_update_not_delivered(self, setup):
        rti, owner, subscriber, sub_amb = setup
        rti.subscribe_object_class(subscriber, "MN", attributes=("battery",))
        instance = rti.register_object_instance(owner, "MN", "mn-1")
        rti.update_attribute_values(owner, instance, {"x": 1.0})
        assert sub_amb.reflections == []

    def test_unknown_attribute_rejected(self, setup):
        rti, _, subscriber, _ = setup
        with pytest.raises(RTIError, match="not declared"):
            rti.subscribe_object_class(subscriber, "MN", attributes=("ghost",))

    def test_full_subscription_unchanged(self, setup):
        rti, owner, subscriber, sub_amb = setup
        rti.subscribe_object_class(subscriber, "MN")
        instance = rti.register_object_instance(owner, "MN", "mn-1")
        rti.update_attribute_values(owner, instance, {"battery": 0.9})
        assert sub_amb.reflections == [(instance, {"battery": 0.9}, None)]

    def test_resubscription_widens(self, setup):
        rti, owner, subscriber, sub_amb = setup
        rti.subscribe_object_class(subscriber, "MN", attributes=("x",))
        rti.subscribe_object_class(subscriber, "MN")  # widen to all
        instance = rti.register_object_instance(owner, "MN", "mn-1")
        rti.update_attribute_values(owner, instance, {"y": 3.0})
        assert sub_amb.reflections == [(instance, {"y": 3.0}, None)]

    def test_discovery_still_happens(self, setup):
        rti, owner, subscriber, sub_amb = setup
        instance = rti.register_object_instance(owner, "MN", "mn-1")
        rti.subscribe_object_class(subscriber, "MN", attributes=("x",))
        assert sub_amb.discovered == [(instance, "MN", "mn-1")]
