"""Tests for federation synchronization points."""

import pytest

from repro.hla import FederateAmbassador, FederationObjectModel, RTIError, RTIKernel


class Recorder(FederateAmbassador):
    def __init__(self):
        self.announced = []
        self.synchronized = []

    def announce_synchronization_point(self, label, tag):
        self.announced.append((label, tag))

    def federation_synchronized(self, label):
        self.synchronized.append(label)


@pytest.fixture
def federation():
    rti = RTIKernel("sync", FederationObjectModel())
    ambs = [Recorder() for _ in range(3)]
    handles = [rti.join(f"f{i}", amb) for i, amb in enumerate(ambs)]
    return rti, handles, ambs


class TestRegistration:
    def test_announced_to_everyone(self, federation):
        rti, handles, ambs = federation
        rti.register_synchronization_point(handles[0], "ready", tag={"x": 1})
        for amb in ambs:
            assert amb.announced == [("ready", {"x": 1})]

    def test_duplicate_label_rejected(self, federation):
        rti, handles, _ = federation
        rti.register_synchronization_point(handles[0], "ready")
        with pytest.raises(RTIError, match="already registered"):
            rti.register_synchronization_point(handles[1], "ready")

    def test_empty_label_rejected(self, federation):
        rti, handles, _ = federation
        with pytest.raises(RTIError, match="non-empty"):
            rti.register_synchronization_point(handles[0], "")

    def test_unknown_federate_rejected(self, federation):
        rti, *_ = federation
        with pytest.raises(RTIError):
            rti.register_synchronization_point(99, "ready")


class TestAchievement:
    def test_synchronized_when_all_achieve(self, federation):
        rti, handles, ambs = federation
        rti.register_synchronization_point(handles[0], "go")
        for handle in handles[:-1]:
            rti.synchronization_point_achieved(handle, "go")
            assert all(amb.synchronized == [] for amb in ambs)
        rti.synchronization_point_achieved(handles[-1], "go")
        for amb in ambs:
            assert amb.synchronized == ["go"]

    def test_pending_query(self, federation):
        rti, handles, _ = federation
        rti.register_synchronization_point(handles[0], "go")
        assert rti.pending_synchronization("go") == set(handles)
        rti.synchronization_point_achieved(handles[0], "go")
        assert rti.pending_synchronization("go") == set(handles[1:])

    def test_unknown_label_rejected(self, federation):
        rti, handles, _ = federation
        with pytest.raises(RTIError, match="unknown"):
            rti.synchronization_point_achieved(handles[0], "ghost")

    def test_double_achievement_rejected(self, federation):
        rti, handles, _ = federation
        rti.register_synchronization_point(handles[0], "go")
        rti.synchronization_point_achieved(handles[0], "go")
        with pytest.raises(RTIError, match="already achieved"):
            rti.synchronization_point_achieved(handles[0], "go")

    def test_resign_completes_point(self, federation):
        """A resigning federate must not deadlock the federation."""
        rti, handles, ambs = federation
        rti.register_synchronization_point(handles[0], "go")
        rti.synchronization_point_achieved(handles[0], "go")
        rti.synchronization_point_achieved(handles[1], "go")
        rti.resign(handles[2])
        assert ambs[0].synchronized == ["go"]
        assert ambs[1].synchronized == ["go"]

    def test_multiple_points_independent(self, federation):
        rti, handles, ambs = federation
        rti.register_synchronization_point(handles[0], "init")
        rti.register_synchronization_point(handles[0], "teardown")
        for handle in handles:
            rti.synchronization_point_achieved(handle, "init")
        assert ambs[0].synchronized == ["init"]
        assert rti.pending_synchronization("teardown") == set(handles)
