"""Tests for FOM declarations."""

import pytest

from repro.hla import FederationObjectModel, InteractionClass, ObjectClass


class TestObjectClass:
    def test_attributes(self):
        cls = ObjectClass("MobileNode", ("x", "y"))
        assert cls.has_attribute("x")
        assert not cls.has_attribute("z")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ObjectClass("", ("x",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            ObjectClass("C", ("x", "x"))


class TestInteractionClass:
    def test_parameters(self):
        cls = InteractionClass("LU", ("node", "x"))
        assert cls.parameters == ("node", "x")

    def test_no_parameters_ok(self):
        assert InteractionClass("Ping").parameters == ()

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError):
            InteractionClass("I", ("a", "a"))


class TestFom:
    def test_declare_and_lookup(self):
        fom = FederationObjectModel()
        fom.add_object_class("MN", ("x",))
        fom.add_interaction_class("LU", ("node",))
        assert fom.object_class("MN").name == "MN"
        assert fom.interaction_class("LU").name == "LU"

    def test_duplicate_object_class_rejected(self):
        fom = FederationObjectModel()
        fom.add_object_class("MN", ("x",))
        with pytest.raises(ValueError):
            fom.add_object_class("MN", ("y",))

    def test_duplicate_interaction_rejected(self):
        fom = FederationObjectModel()
        fom.add_interaction_class("LU")
        with pytest.raises(ValueError):
            fom.add_interaction_class("LU")

    def test_unknown_lookup_raises(self):
        fom = FederationObjectModel()
        with pytest.raises(KeyError, match="not in the FOM"):
            fom.object_class("Ghost")
        with pytest.raises(KeyError, match="not in the FOM"):
            fom.interaction_class("Ghost")
