"""The crash-recovery convergence gate, end to end on recorded traces.

These are the tests the durability layer exists for: a mid-replay crash
and restart must converge to the uncrashed run's exact store state
outside the explicitly-accounted loss window — on more than one seed,
because sharding, crash placement, and queue contents all move with the
trace.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import (
    ReplayConfig,
    ServingConfig,
    record_trace,
    run_recovery_gate,
    write_filtered_export,
)
from tests.serving.conftest import tiny_config


@pytest.fixture(scope="module")
def second_trace():
    """A second seed so convergence isn't an accident of one stream."""
    return record_trace(tiny_config(seed=7))


def gate(trace, tmp_path, **kw):
    meta, records = trace
    # flush_interval well under the crash offset, so the crash hits a
    # WAL that has real flushed state behind it (not an empty cold start).
    defaults = dict(
        replay=ReplayConfig(
            rate=2000.0,
            sweep_interval=1.0,
            serving=ServingConfig(shards=4, flush_interval=0.005),
        ),
        snapshot_every=8,
        crash_fraction=0.4,
        restart_fraction=0.7,
        trace_meta=meta,
    )
    defaults.update(kw)
    return run_recovery_gate(records, tmp_path, **defaults)


class TestConvergence:
    def test_seed_11_converges(self, tiny_trace, tmp_path):
        report, golden, crashed = gate(tiny_trace, tmp_path)
        assert report.converged
        assert report.divergent_nodes == ()
        assert report.compared_nodes > 0
        # The crash actually bit: the shard went down mid-stream...
        assert report.crashed.crashes == 1
        assert report.crashed.recoveries == 1
        # ...and recovery rebuilt it from the snapshot it had taken.
        assert report.snapshot_lsn > 0

    def test_seed_7_converges(self, second_trace, tmp_path):
        report, golden, crashed = gate(second_trace, tmp_path)
        assert report.converged
        assert report.crashed.crashes == 1

    def test_filtered_exports_byte_identical(self, tiny_trace, tmp_path):
        report, golden, crashed = gate(tiny_trace, tmp_path / "wal")
        a = write_filtered_export(
            golden, report.affected_nodes, tmp_path / "golden.json"
        )
        b = write_filtered_export(
            crashed, report.affected_nodes, tmp_path / "crashed.json"
        )
        assert a.read_bytes() == b.read_bytes()
        # The export is real content, not a vacuous empty set.
        assert len(json.loads(a.read_text())) == report.compared_nodes

    def test_no_snapshot_still_converges_via_full_log_replay(
        self, tiny_trace, tmp_path
    ):
        report, *_ = gate(tiny_trace, tmp_path, snapshot_every=0)
        assert report.converged
        assert report.snapshot_lsn == 0
        assert report.replayed > 0  # everything came back from the WAL

    def test_trace_time_replay_converges(self, tiny_trace, tmp_path):
        report, *_ = gate(
            tiny_trace,
            tmp_path,
            replay=ReplayConfig(
                rate=0.0, sweep_interval=1.0, serving=ServingConfig(shards=2)
            ),
        )
        assert report.converged

    def test_accounting_is_self_consistent(self, tiny_trace, tmp_path):
        report, golden, crashed = gate(tiny_trace, tmp_path)
        # Affected nodes cover every loss the crash inflicted; the
        # crashed run can never have applied MORE than the golden one.
        assert report.crashed_applied <= report.golden_applied
        assert report.recovery_wall_s >= 0.0
        assert set(report.divergent_nodes).isdisjoint(report.affected_nodes)

    def test_report_json_round_trips(self, tiny_trace, tmp_path):
        report, *_ = gate(tiny_trace, tmp_path / "wal")
        out = report.write_json(tmp_path / "gate.json")
        document = json.loads(out.read_text())
        assert document["converged"] is True
        assert document["records"] == report.records
        assert document["golden"]["applied"] == report.golden_applied


class TestValidation:
    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            run_recovery_gate([], tmp_path)

    def test_bad_fractions_rejected(self, tiny_trace, tmp_path):
        _, records = tiny_trace
        with pytest.raises(ValueError, match="fraction"):
            run_recovery_gate(
                records, tmp_path, crash_fraction=0.8, restart_fraction=0.5
            )
