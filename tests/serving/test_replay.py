"""Tests for open-loop trace replay and its byte-reproducible report."""

import json

import pytest

from repro.serving import ReplayConfig, ServingConfig, replay_trace
from repro.serving.loadgen import _arrival_times
from repro.telemetry import Telemetry, TelemetryConfig


class TestArrivalTimes:
    def test_fixed_rate_spacing(self):
        from tests.serving.test_trace import make_record

        records = [make_record(seq=s) for s in range(4)]
        assert _arrival_times(records, 2.0) == [0.0, 0.5, 1.0, 1.5]

    def test_as_recorded_uses_trace_offsets(self):
        from tests.serving.test_trace import make_record

        records = [make_record(time=10.0), make_record(time=12.5)]
        assert _arrival_times(records, 0.0) == [0.0, 2.5]


class TestDeterminism:
    def test_same_trace_same_config_byte_identical(self, tiny_trace):
        meta, records = tiny_trace
        config = ReplayConfig(rate=800.0, sweep_interval=1.0)
        a = replay_trace(records, config, trace_meta=meta)
        b = replay_trace(records, config, trace_meta=meta)
        assert a.to_json() == b.to_json()

    def test_export_round_trips_as_sorted_json(self, tmp_path, tiny_trace):
        meta, records = tiny_trace
        report = replay_trace(records, ReplayConfig(rate=500.0), trace_meta=meta)
        path = report.write_json(tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded == report.to_json_dict()
        assert path.read_text() == report.to_json() + "\n"

    def test_telemetry_metrics_ride_in_the_report(self, tiny_trace):
        meta, records = tiny_trace
        telemetry = Telemetry(TelemetryConfig(enabled=True))
        report = replay_trace(
            records, ReplayConfig(rate=500.0), telemetry=telemetry
        )
        assert report.metrics is not None
        latency = report.metrics["serving.ingest.latency{service=serving}"]
        assert latency["count"] == report.latency_count
        assert latency["quantiles"]["0.99"] == report.latency_p99
        assert "serving.ingest.shed{service=serving}" in report.metrics

    def test_metrics_absent_without_telemetry(self, tiny_trace):
        _, records = tiny_trace
        assert replay_trace(records, ReplayConfig()).metrics is None


class TestWorkloadShape:
    def test_all_records_offered(self, tiny_trace):
        meta, records = tiny_trace
        report = replay_trace(records, ReplayConfig(rate=1000.0))
        assert report.records == len(records)
        assert report.offered == len(records)
        assert report.offered == report.accepted + report.shed

    def test_latency_bounded_by_flush_interval_when_unloaded(self, tiny_trace):
        _, records = tiny_trace
        serving = ServingConfig(queue_capacity=100_000, batch_size=100_000)
        report = replay_trace(
            records, ReplayConfig(rate=1000.0, serving=serving)
        )
        assert report.shed == 0
        # Worst case: arrive just after a window opens (one window of
        # queueing to the submit event) plus one flush interval.
        assert report.latency_max <= 2 * serving.flush_interval + 1e-9
        assert 0.0 < report.latency_p50 <= 2 * serving.flush_interval

    def test_saturation_sheds_not_buffers(self, tiny_trace):
        _, records = tiny_trace
        serving = ServingConfig(
            shards=2, queue_capacity=8, batch_size=4, flush_interval=0.05
        )
        report = replay_trace(
            records, ReplayConfig(rate=1_000_000.0, serving=serving)
        )
        assert report.shed > 0
        assert report.shed_rate > 0.5
        # Bounded queues: depth never exceeded capacity * shards.
        assert report.max_queue_depth <= serving.queue_capacity

    def test_higher_rate_shorter_replay(self, tiny_trace):
        _, records = tiny_trace
        slow = replay_trace(records, ReplayConfig(rate=500.0))
        fast = replay_trace(records, ReplayConfig(rate=5000.0))
        assert fast.replay_seconds < slow.replay_seconds
        assert fast.offered_rate > slow.offered_rate

    def test_as_recorded_rate_follows_trace_span(self, tiny_trace):
        meta, records = tiny_trace
        report = replay_trace(records, ReplayConfig(rate=0.0))
        span = records[-1].time - records[0].time
        assert report.replay_seconds >= span

    def test_sweeps_exercise_degradation_machinery(self, tiny_trace):
        _, records = tiny_trace
        without = replay_trace(records, ReplayConfig(rate=500.0))
        with_sweeps = replay_trace(
            records, ReplayConfig(rate=500.0, sweep_interval=1.0)
        )
        assert without.estimates_made == 0
        assert with_sweeps.estimates_made > 0

    def test_empty_trace(self):
        report = replay_trace([], ReplayConfig(rate=100.0))
        assert report.records == 0
        assert report.offered == 0
        assert report.replay_seconds == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError, match="rate"):
            ReplayConfig(rate=-1.0)
        with pytest.raises(ValueError, match="sweep_interval"):
            ReplayConfig(sweep_interval=-0.1)
