"""Shared fixtures for the serving-layer tests."""

import pytest

from repro.experiments import ExperimentConfig
from repro.mobility.population import PopulationSpec
from repro.serving import record_trace


def tiny_config(duration=15.0, seed=11):
    """A reduced-population experiment config for fast trace capture."""
    return ExperimentConfig(
        duration=duration,
        seed=seed,
        population=PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        ),
    )


@pytest.fixture(scope="session")
def tiny_trace():
    """One recorded (meta, records) pair, shared across the session."""
    return record_trace(tiny_config())
