"""Tests for the LU trace format and the harness capture hook."""

import json

import pytest

from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.serving import (
    ColumnarTraceRecorder,
    TraceError,
    TraceRecord,
    TraceRecorder,
    read_trace,
    record_columnar_trace,
    record_trace,
    write_trace,
)

from tests.serving.conftest import tiny_config


def make_record(time=1.0, seq=0, node="n1", region="road-1"):
    return TraceRecord(
        time=time,
        seq=seq,
        node_id=node,
        x=10.0,
        y=20.0,
        vx=1.5,
        vy=-0.5,
        region_id=region,
        dth=4.0,
    )


class TestRoundTrip:
    def test_update_round_trip(self):
        update = LocationUpdate(
            sender="n1",
            timestamp=3.25,
            seq=17,
            node_id="n1",
            position=Vec2(1.125, 2.5),
            velocity=Vec2(-0.75, 0.25),
            region_id="bldg-2",
            dth=6.0,
        )
        rebuilt = TraceRecord.from_update(update).to_update()
        assert rebuilt == update

    def test_row_round_trip_exact_floats(self):
        record = make_record(time=0.1 + 0.2)  # a float with an ugly repr
        row = json.loads(json.dumps(record.to_row()))
        assert TraceRecord.from_row(row) == record

    def test_file_round_trip(self, tmp_path):
        records = [make_record(time=float(t), seq=t) for t in range(5)]
        path = write_trace(records, tmp_path / "t.jsonl", meta={"seed": 1})
        meta, loaded = read_trace(path)
        assert meta == {"seed": 1}
        assert loaded == records

    def test_write_is_byte_deterministic(self, tmp_path):
        records = [make_record(seq=s) for s in range(3)]
        a = write_trace(records, tmp_path / "a.jsonl", meta={"z": 1, "a": 2})
        b = write_trace(records, tmp_path / "b.jsonl", meta={"a": 2, "z": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_parsed_records_carry_canonical_row_bytes(self, tmp_path):
        """Rows loaded from disk remember their canonical encoding and
        hand it to the rebuilt LU — the WAL logs these bytes verbatim."""
        record = make_record(time=0.1 + 0.2, seq=3)
        path = write_trace([record], tmp_path / "t.jsonl")
        _, [loaded] = read_trace(path)
        canonical = json.dumps(
            record.to_row(), separators=(",", ":")
        ).encode("utf-8")
        assert loaded.encoded == canonical
        assert loaded.to_update().wire == canonical
        # Non-canonical whitespace in the source still parses to the
        # canonical bytes, so downstream encodings never vary.
        spaced = path.read_text().splitlines()
        spaced[1] = spaced[1].replace(",", ", ")
        path.write_text("\n".join(spaced) + "\n")
        _, [reloaded] = read_trace(path)
        assert reloaded.encoded == canonical
        # In-memory captures have no received bytes to reuse.
        assert record.encoded is None and record.to_update().wire is None


class TestValidation:
    def test_row_arity_checked(self):
        with pytest.raises(TraceError, match="9 fields"):
            TraceRecord.from_row([1.0, 2])

    def test_row_id_types_checked(self):
        row = make_record().to_row()
        row[2] = 42  # node_id must be a string
        with pytest.raises(TraceError, match="ids must be strings"):
            TraceRecord.from_row(row)

    def test_row_seq_type_checked(self):
        row = make_record().to_row()
        row[1] = "7"
        with pytest.raises(TraceError, match="seq must be an int"):
            TraceRecord.from_row(row)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(TraceError, match="not a repro-lu-trace"):
            read_trace(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text(
            '{"format":"repro-lu-trace","meta":{},"records":0,"version":99}\n'
        )
        with pytest.raises(TraceError, match="version"):
            read_trace(path)

    def test_truncation_detected(self, tmp_path):
        records = [make_record(time=float(t), seq=t) for t in range(4)]
        path = write_trace(records, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last row
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_torn_final_row_recoverable_with_allow_partial(self, tmp_path):
        """A writer killed mid-row leaves a torn tail; ``allow_partial``
        recovers the valid prefix instead of refusing the whole file."""
        records = [make_record(time=float(t), seq=t) for t in range(4)]
        path = write_trace(records, tmp_path / "t.jsonl")
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # tear the last row
        with pytest.raises(TraceError, match="allow_partial"):
            read_trace(path)
        meta, got = read_trace(path, allow_partial=True)
        assert [r.seq for r in got] == [0, 1, 2]
        assert meta == {}

    def test_allow_partial_does_not_mask_mid_file_damage(self, tmp_path):
        records = [make_record(time=float(t), seq=t) for t in range(4)]
        path = write_trace(records, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-4]  # damage a row that is NOT the last one
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="unreadable row"):
            read_trace(path, allow_partial=True)

    def test_allow_partial_tolerates_missing_rows(self, tmp_path):
        # Declared count 4, only 2 intact rows left: strict mode refuses,
        # partial mode returns what survived.
        records = [make_record(time=float(t), seq=t) for t in range(4)]
        path = write_trace(records, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)
        _, got = read_trace(path, allow_partial=True)
        assert len(got) == 2


class TestRecorder:
    def test_lane_filtering(self):
        recorder = TraceRecorder("adf-1")
        update = LocationUpdate(sender="n", timestamp=0.0, seq=0, node_id="n")
        recorder("ideal", update)
        recorder("adf-1", update)
        assert len(recorder.records) == 1

    def test_unknown_lane_fails_fast(self):
        with pytest.raises(KeyError):
            record_trace(tiny_config(duration=5.0), lane="no-such-lane")


class TestRecordTrace:
    def test_capture_is_seed_deterministic(self, tmp_path, tiny_trace):
        meta, records = tiny_trace
        path = tmp_path / "again.jsonl"
        meta2, records2 = record_trace(tiny_config(), path=path)
        assert meta2 == meta
        assert records2 == records
        # and the on-disk form round-trips the in-memory capture
        meta3, records3 = read_trace(path)
        assert (meta3, records3) == (meta, records)

    def test_meta_provenance(self, tiny_trace):
        meta, records = tiny_trace
        assert meta["lane"] == "adf-1"
        assert meta["seed"] == 11
        assert meta["node_count"] > 0
        assert records, "the ADF lane should transmit at least some LUs"

    def test_per_node_time_and_seq_monotone(self, tiny_trace):
        """The trace invariant the store's duplicate gate relies on."""
        _, records = tiny_trace
        last = {}
        for record in records:
            if record.node_id in last:
                prev_seq, prev_time = last[record.node_id]
                assert record.seq > prev_seq
                assert record.time >= prev_time
            last[record.node_id] = (record.seq, record.time)

    def test_ideal_lane_records_superset(self):
        config = tiny_config(duration=6.0)
        _, adf = record_trace(config, lane="adf-1")
        _, ideal = record_trace(config, lane="ideal")
        assert len(ideal) > len(adf)


class TestRecordColumnarTrace:
    def test_capture_is_seed_deterministic(self, tmp_path):
        config = tiny_config(duration=6.0)
        path = tmp_path / "columnar.jsonl"
        meta, records = record_columnar_trace(config, path=path)
        meta2, records2 = record_columnar_trace(config)
        assert meta2 == meta
        assert records2 == records
        meta3, records3 = read_trace(path)
        assert (meta3, records3) == (meta, records)

    def test_meta_provenance(self):
        meta, records = record_columnar_trace(tiny_config(duration=6.0))
        assert meta["engine"] == "columnar"
        assert meta["cluster_mode"] == "exact"
        assert meta["lane"] == "adf-1"
        assert meta["node_count"] > 0
        assert records, "the ADF lane should transmit at least some LUs"

    def test_per_node_time_and_seq_monotone(self):
        """The synthesised seq must satisfy the store's duplicate gate."""
        _, records = record_columnar_trace(tiny_config(duration=6.0))
        last = {}
        for record in records:
            if record.node_id in last:
                prev_seq, prev_time = last[record.node_id]
                assert record.seq > prev_seq
                assert record.time >= prev_time
            last[record.node_id] = (record.seq, record.time)

    def test_unknown_lane_fails_fast(self):
        with pytest.raises(ValueError):
            record_columnar_trace(tiny_config(duration=5.0), lane="nope")

    def test_unbound_recorder_fails_loudly(self):
        import numpy as np

        recorder = ColumnarTraceRecorder("adf-1")
        with pytest.raises(TraceError):
            recorder(
                "adf-1", 1.0, np.arange(1), np.zeros(1), np.zeros(1),
                np.zeros(1), np.zeros(1), np.zeros(1, dtype=np.int64),
                np.zeros(1),
            )

    def test_matches_object_recorder_on_exact_kernel(self):
        """Same config, same lane: the columnar capture transmits the
        same (time, node) events as the object harness (seq numbering
        differs by design — the columnar engine synthesises it)."""
        config = tiny_config(duration=6.0)
        _, obj = record_trace(config, lane="adf-1")
        _, col = record_columnar_trace(config, lane="adf-1")
        obj_events = [(r.time, r.node_id, r.x, r.y, r.region_id) for r in obj]
        col_events = [(r.time, r.node_id, r.x, r.y, r.region_id) for r in col]
        assert sorted(col_events) == sorted(obj_events)
