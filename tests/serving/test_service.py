"""Tests for the bounded-queue ingest service."""

import pytest

from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.serving import IngestService, ServingConfig
from repro.simkernel import Simulator
from repro.telemetry import Telemetry, TelemetryConfig


def lu(node="n1", t=0.0, seq=0, region="road-1"):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(1.0, 2.0),
        velocity=Vec2(1.0, 0.0),
        region_id=region,
        dth=4.0,
    )


class TestConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.drain_rate == pytest.approx(
            config.shards * config.batch_size / config.flush_interval
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_capacity": 0},
            {"batch_size": 0},
            {"flush_interval": 0.0},
            {"report_interval": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestSubmitAndFlush:
    def test_submit_applies_after_flush(self):
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=2))
        assert service.submit(lu(t=1.0, seq=1))
        assert service.backlog == 1
        assert service.store.applied == 0  # queued, not yet applied
        sim.run()
        assert service.backlog == 0
        assert service.store.applied == 1
        assert service.stats.batches == 1

    def test_flush_stops_when_drained(self):
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=1))
        service.submit(lu(t=1.0, seq=1))
        sim.run()
        assert sim.pending_events() == 0  # no self-perpetuating idle flushes

    def test_batch_size_bounds_per_flush(self):
        sim = Simulator()
        service = IngestService(
            sim,
            ServingConfig(
                shards=1, batch_size=2, queue_capacity=100, flush_interval=0.1
            ),
        )
        for i in range(5):
            service.submit(lu(t=float(i), seq=i))
        sim.run_until(0.1)
        assert service.store.applied == 2  # one flush, batch-limited
        sim.run()
        assert service.store.applied == 5
        assert service.stats.batches == 3

    def test_latency_measured_from_arrival(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=1, flush_interval=0.5)
        )
        service.submit(lu(t=1.0, seq=1), arrival=0.0)
        sim.run()
        # The flush fires 0.5 s after submission (at sim time 0).
        assert service.latency.count == 1
        assert service.latency.max == pytest.approx(0.5)
        assert service.latency_quantile(0.5) == pytest.approx(0.5)


class TestBackpressure:
    def test_full_queue_sheds(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=1, queue_capacity=2)
        )
        results = [service.submit(lu(t=float(i), seq=i)) for i in range(4)]
        assert results == [True, True, False, False]
        assert service.stats.shed == 2
        assert service.stats.shed_rate == pytest.approx(0.5)
        assert service.stats.shed_per_shard == [2]

    def test_has_capacity_tracks_queue(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=1, queue_capacity=1)
        )
        probe = lu(t=9.0, seq=9)
        assert service.has_capacity(probe)
        service.submit(lu(t=1.0, seq=1))
        assert not service.has_capacity(probe)
        sim.run()
        assert service.has_capacity(probe)

    def test_conservation_law(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=2, queue_capacity=3, batch_size=2)
        )
        for i in range(20):
            service.submit(lu(node=f"n{i % 5}", t=float(i), seq=i))
        sim.run()
        stats = service.stats
        store = service.store
        assert stats.offered == stats.accepted + stats.shed
        assert stats.accepted == (
            store.applied + store.duplicates + store.reordered
        )

    def test_queue_depth_high_water_mark(self):
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=1))
        for i in range(7):
            service.submit(lu(t=float(i), seq=i))
        assert service.stats.max_queue_depth == 7
        assert service.stats.max_total_depth == 0  # measured at flush
        sim.run()
        assert service.stats.max_total_depth == 7


class TestTelemetry:
    def test_metrics_registered_and_counted(self):
        telemetry = Telemetry(TelemetryConfig(enabled=True))
        sim = Simulator()
        service = IngestService(
            sim,
            ServingConfig(shards=1, queue_capacity=1),
            telemetry=telemetry,
        )
        service.submit(lu(t=1.0, seq=1))
        service.submit(lu(t=2.0, seq=2))  # shed
        sim.run()
        registry = telemetry.registry
        assert registry.get(
            "serving.ingest.offered", service="serving"
        ).value == 2
        assert registry.get(
            "serving.ingest.shed", service="serving"
        ).value == 1
        histogram = registry.get("serving.ingest.latency", service="serving")
        assert histogram is service.latency
        assert histogram.count == 1

    def test_quantiles_without_telemetry(self):
        """p50/p99 must be computable even with telemetry disabled."""
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=1))
        service.submit(lu(t=1.0, seq=1))
        sim.run()
        assert service.latency_quantile(0.99) > 0.0
