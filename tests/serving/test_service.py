"""Tests for the bounded-queue ingest service."""

import pytest

from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.serving import IngestService, ServingConfig
from repro.simkernel import Simulator
from repro.telemetry import Telemetry, TelemetryConfig


def lu(node="n1", t=0.0, seq=0, region="road-1"):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(1.0, 2.0),
        velocity=Vec2(1.0, 0.0),
        region_id=region,
        dth=4.0,
    )


class TestConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.drain_rate == pytest.approx(
            config.shards * config.batch_size / config.flush_interval
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_capacity": 0},
            {"batch_size": 0},
            {"flush_interval": 0.0},
            {"report_interval": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestSubmitAndFlush:
    def test_submit_applies_after_flush(self):
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=2))
        assert service.submit(lu(t=1.0, seq=1))
        assert service.backlog == 1
        assert service.store.applied == 0  # queued, not yet applied
        sim.run()
        assert service.backlog == 0
        assert service.store.applied == 1
        assert service.stats.batches == 1

    def test_flush_stops_when_drained(self):
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=1))
        service.submit(lu(t=1.0, seq=1))
        sim.run()
        assert sim.pending_events() == 0  # no self-perpetuating idle flushes

    def test_batch_size_bounds_per_flush(self):
        sim = Simulator()
        service = IngestService(
            sim,
            ServingConfig(
                shards=1, batch_size=2, queue_capacity=100, flush_interval=0.1
            ),
        )
        for i in range(5):
            service.submit(lu(t=float(i), seq=i))
        sim.run_until(0.1)
        assert service.store.applied == 2  # one flush, batch-limited
        sim.run()
        assert service.store.applied == 5
        assert service.stats.batches == 3

    def test_latency_measured_from_arrival(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=1, flush_interval=0.5)
        )
        service.submit(lu(t=1.0, seq=1), arrival=0.0)
        sim.run()
        # The flush fires 0.5 s after submission (at sim time 0).
        assert service.latency.count == 1
        assert service.latency.max == pytest.approx(0.5)
        assert service.latency_quantile(0.5) == pytest.approx(0.5)


class TestBackpressure:
    def test_full_queue_sheds(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=1, queue_capacity=2)
        )
        results = [service.submit(lu(t=float(i), seq=i)) for i in range(4)]
        assert results == [True, True, False, False]
        assert service.stats.shed == 2
        assert service.stats.shed_rate == pytest.approx(0.5)
        assert service.stats.shed_per_shard == [2]

    def test_has_capacity_tracks_queue(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=1, queue_capacity=1)
        )
        probe = lu(t=9.0, seq=9)
        assert service.has_capacity(probe)
        service.submit(lu(t=1.0, seq=1))
        assert not service.has_capacity(probe)
        sim.run()
        assert service.has_capacity(probe)

    def test_conservation_law(self):
        sim = Simulator()
        service = IngestService(
            sim, ServingConfig(shards=2, queue_capacity=3, batch_size=2)
        )
        for i in range(20):
            service.submit(lu(node=f"n{i % 5}", t=float(i), seq=i))
        sim.run()
        stats = service.stats
        store = service.store
        assert stats.offered == stats.accepted + stats.shed
        assert stats.accepted == (
            store.applied + store.duplicates + store.reordered
        )

    def test_queue_depth_high_water_mark(self):
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=1))
        for i in range(7):
            service.submit(lu(t=float(i), seq=i))
        assert service.stats.max_queue_depth == 7
        assert service.stats.max_total_depth == 0  # measured at flush
        sim.run()
        assert service.stats.max_total_depth == 7


class TestTelemetry:
    def test_metrics_registered_and_counted(self):
        telemetry = Telemetry(TelemetryConfig(enabled=True))
        sim = Simulator()
        service = IngestService(
            sim,
            ServingConfig(shards=1, queue_capacity=1),
            telemetry=telemetry,
        )
        service.submit(lu(t=1.0, seq=1))
        service.submit(lu(t=2.0, seq=2))  # shed
        sim.run()
        registry = telemetry.registry
        assert registry.get(
            "serving.ingest.offered", service="serving"
        ).value == 2
        assert registry.get(
            "serving.ingest.shed", service="serving"
        ).value == 1
        histogram = registry.get("serving.ingest.latency", service="serving")
        assert histogram is service.latency
        assert histogram.count == 1

    def test_quantiles_without_telemetry(self):
        """p50/p99 must be computable even with telemetry disabled."""
        sim = Simulator()
        service = IngestService(sim, ServingConfig(shards=1))
        service.submit(lu(t=1.0, seq=1))
        sim.run()
        assert service.latency_quantile(0.99) > 0.0


class TestCrashRecovery:
    def make_service(self, sim, tmp_path, **kw):
        from repro.serving import DurabilityManager

        return IngestService(
            sim,
            ServingConfig(shards=2, flush_interval=0.01, **kw),
            durability=DurabilityManager(tmp_path),
        )

    def test_crash_without_durability_rejected(self):
        service = IngestService(Simulator(), ServingConfig(shards=1))
        with pytest.raises(ValueError, match="durability"):
            service.crash_shard(0)
        with pytest.raises(ValueError, match="durability"):
            service.restart_shard(0)

    def test_crash_drops_queue_and_restart_recovers(self, tmp_path):
        sim = Simulator()
        service = self.make_service(sim, tmp_path)
        # Flushed state: two LUs applied and durable.
        service.submit(lu(t=1.0, seq=1))
        service.submit(lu(node="n2", t=1.0, seq=1))
        sim.run()
        index = service.shard_index(lu())
        # Queued-but-unflushed window: submitted, crash before the drain.
        service.submit(lu(t=2.0, seq=2))
        dropped = service.crash_shard(index)
        assert dropped == 1
        assert service.stats.crashes == 1
        assert service.stats.crash_dropped_queued == 1
        assert service.store.shard_is_down(index)
        # While down: sheds are accounted to the crash window.
        assert not service.submit(lu(node="n3", t=3.0, seq=1))
        assert service.stats.shed_down == 1
        recovery = service.restart_shard(index)
        assert not service.store.shard_is_down(index)
        assert recovery.shard == index
        assert recovery.dropped_queued == 1
        assert recovery.shed_while_down == 1
        assert "n1" in recovery.affected_nodes
        assert "n3" in recovery.affected_nodes
        assert recovery.replayed >= 1  # the flushed LUs came back
        # The flushed fix survived the crash.
        latest = service.store.latest("n1")
        assert latest is not None and latest.time == 1.0
        assert service.affected_nodes() >= {"n1", "n3"}

    def test_has_capacity_false_while_down(self, tmp_path):
        sim = Simulator()
        service = self.make_service(sim, tmp_path)
        probe = lu(t=1.0, seq=1)
        assert service.has_capacity(probe)
        service.crash_shard(service.shard_index(probe))
        assert not service.has_capacity(probe)

    def test_recovery_wall_clock_injected_not_ambient(self, tmp_path):
        sim = Simulator()
        from repro.serving import DurabilityManager

        ticks = iter([10.0, 10.25])
        service = IngestService(
            sim,
            ServingConfig(shards=1, flush_interval=0.01),
            durability=DurabilityManager(tmp_path),
            recovery_clock=lambda: next(ticks),
        )
        service.submit(lu(t=1.0, seq=1))
        sim.run()
        service.crash_shard(0)
        recovery = service.restart_shard(0)
        assert recovery.wall_s == pytest.approx(0.25)

    def test_report_carries_durability_counters(self, tmp_path):
        from repro.serving import ServingReport

        sim = Simulator()
        service = self.make_service(sim, tmp_path)
        for i in range(1, 6):
            service.submit(lu(t=float(i), seq=i))
        sim.run()
        service.crash_shard(0)
        service.restart_shard(0)
        report = ServingReport.from_service(
            service, records=5, rate=0.0, replay_seconds=5.0
        )
        assert report.wal_appended >= 5
        assert report.wal_flushes >= 1
        assert report.crashes == 1
        assert report.recoveries == 1
        assert report.recovery_replayed >= 1
        assert report.snapshots_written >= 1  # post-recovery snapshot
