"""Tests for the ARQ ingest client (shed → retransmit backpressure)."""

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.network.channel import WirelessChannel
from repro.network.messages import LocationUpdate, SequenceSource
from repro.serving import IngestService, ReliableIngestClient, ServingConfig
from repro.simkernel import Simulator


def lu(node="n1", t=0.0, seq=0, region="road-1"):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(1.0, 0.0),
        velocity=Vec2(1.0, 0.0),
        region_id=region,
        dth=4.0,
    )


def make_stack(sim, *, loss=0.0, serving=None, seed=3):
    channel = WirelessChannel(
        sim, np.random.default_rng(seed), loss_probability=loss
    )
    service = IngestService(sim, serving or ServingConfig(shards=2))
    client = ReliableIngestClient(
        sim, service, channel, seq_source=SequenceSource()
    )
    return service, client


class TestDelivery:
    def test_clean_channel_delivers_and_applies(self):
        sim = Simulator()
        service, client = make_stack(sim)
        for i in range(5):
            client.send(lu(t=float(i), seq=i))
        sim.run()
        assert client.stats.delivered == 5
        assert service.store.applied == 5
        assert client.in_flight == 0

    def test_lossy_channel_retransmits_until_applied(self):
        sim = Simulator()
        service, client = make_stack(sim, loss=0.4)
        for i in range(10):
            client.send(lu(t=float(i), seq=i))
        sim.run()
        assert client.stats.retransmits > 0
        # No silent loss: every offered LU was delivered or explicitly
        # given up (a delivered message can *also* count as given up when
        # all of its acks were lost — the sender can't know better).
        assert client.stats.delivered + client.stats.gave_up >= 10
        assert client.in_flight == 0
        # Retransmits can reorder delivery; the store's duplicate gate
        # absorbs late-arriving older seqs rather than losing anything.
        store = service.store
        assert (
            store.applied + store.duplicates + store.reordered
            == client.stats.delivered
        )


class TestBackpressurePropagation:
    def test_saturated_service_withholds_acks(self):
        """A full queue refuses the message before acking → retransmit."""
        sim = Simulator()
        # Capacity 1 and a slow drain: the second LU finds the queue full.
        service, client = make_stack(
            sim,
            serving=ServingConfig(
                shards=1, queue_capacity=1, flush_interval=2.0
            ),
        )
        client.send(lu(t=1.0, seq=1))
        client.send(lu(t=2.0, seq=2))
        sim.run()
        # The refused LU was eventually retried into a drained queue:
        # nothing was lost, and the pressure shows up as retransmits.
        assert client.stats.retransmits > 0
        assert service.store.applied == 2
        assert service.stats.shed == 0  # gate refused pre-ack, not post
        assert client.shed_after_accept == 0

    def test_outage_longer_than_retry_budget_gives_up(self):
        sim = Simulator()
        service, client = make_stack(
            sim,
            serving=ServingConfig(
                # flush_interval far beyond the total backoff window
                shards=1,
                queue_capacity=1,
                flush_interval=1000.0,
            ),
        )
        client.send(lu(t=1.0, seq=1))
        client.send(lu(t=2.0, seq=2))  # queue stays full past all retries
        sim.run_until(500.0)
        assert client.stats.gave_up == 1
        assert service.stats.offered == 1

    def test_conservation_under_loss_and_pressure(self):
        sim = Simulator()
        service, client = make_stack(
            sim,
            loss=0.2,
            serving=ServingConfig(
                shards=2, queue_capacity=4, flush_interval=0.3
            ),
        )
        for i in range(30):
            client.send(lu(node=f"n{i % 3}", t=float(i), seq=i))
        sim.run()
        stats = client.stats
        assert stats.delivered + stats.gave_up == stats.offered
        store = service.store
        assert service.stats.accepted == (
            store.applied + store.duplicates + store.reordered
        )

    def test_non_lu_messages_pass_the_gate(self):
        sim = Simulator()
        service, client = make_stack(sim)
        from repro.network.messages import Message

        probe = Message(sender="x", timestamp=0.0, seq=99)
        assert client._accept(probe)  # only LUs consult service capacity
        client._deliver(probe)  # and non-LUs are ignored by the sink
        assert service.stats.offered == 0
