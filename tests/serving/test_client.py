"""Tests for the ARQ ingest client (shed → retransmit backpressure)."""

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.network.channel import WirelessChannel
from repro.network.messages import LocationUpdate, SequenceSource
from repro.serving import IngestService, ReliableIngestClient, ServingConfig
from repro.simkernel import Simulator


def lu(node="n1", t=0.0, seq=0, region="road-1"):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(1.0, 0.0),
        velocity=Vec2(1.0, 0.0),
        region_id=region,
        dth=4.0,
    )


def make_stack(sim, *, loss=0.0, serving=None, seed=3):
    channel = WirelessChannel(
        sim, np.random.default_rng(seed), loss_probability=loss
    )
    service = IngestService(sim, serving or ServingConfig(shards=2))
    client = ReliableIngestClient(
        sim, service, channel, seq_source=SequenceSource()
    )
    return service, client


class TestDelivery:
    def test_clean_channel_delivers_and_applies(self):
        sim = Simulator()
        service, client = make_stack(sim)
        for i in range(5):
            client.send(lu(t=float(i), seq=i))
        sim.run()
        assert client.stats.delivered == 5
        assert service.store.applied == 5
        assert client.in_flight == 0

    def test_lossy_channel_retransmits_until_applied(self):
        sim = Simulator()
        service, client = make_stack(sim, loss=0.4)
        for i in range(10):
            client.send(lu(t=float(i), seq=i))
        sim.run()
        assert client.stats.retransmits > 0
        # No silent loss: every offered LU was delivered or explicitly
        # given up (a delivered message can *also* count as given up when
        # all of its acks were lost — the sender can't know better).
        assert client.stats.delivered + client.stats.gave_up >= 10
        assert client.in_flight == 0
        # Retransmits can reorder delivery; the store's duplicate gate
        # absorbs late-arriving older seqs rather than losing anything.
        store = service.store
        assert (
            store.applied + store.duplicates + store.reordered
            == client.stats.delivered
        )


class TestBackpressurePropagation:
    def test_saturated_service_withholds_acks(self):
        """A full queue refuses the message before acking → retransmit."""
        sim = Simulator()
        # Capacity 1 and a slow drain: the second LU finds the queue full.
        service, client = make_stack(
            sim,
            serving=ServingConfig(
                shards=1, queue_capacity=1, flush_interval=2.0
            ),
        )
        client.send(lu(t=1.0, seq=1))
        client.send(lu(t=2.0, seq=2))
        sim.run()
        # The refused LU was eventually retried into a drained queue:
        # nothing was lost, and the pressure shows up as retransmits.
        assert client.stats.retransmits > 0
        assert service.store.applied == 2
        assert service.stats.shed == 0  # gate refused pre-ack, not post
        assert client.shed_after_accept == 0

    def test_outage_longer_than_retry_budget_gives_up(self):
        sim = Simulator()
        service, client = make_stack(
            sim,
            serving=ServingConfig(
                # flush_interval far beyond the total backoff window
                shards=1,
                queue_capacity=1,
                flush_interval=1000.0,
            ),
        )
        client.send(lu(t=1.0, seq=1))
        client.send(lu(t=2.0, seq=2))  # queue stays full past all retries
        sim.run_until(500.0)
        assert client.stats.gave_up == 1
        assert service.stats.offered == 1

    def test_conservation_under_loss_and_pressure(self):
        sim = Simulator()
        service, client = make_stack(
            sim,
            loss=0.2,
            serving=ServingConfig(
                shards=2, queue_capacity=4, flush_interval=0.3
            ),
        )
        for i in range(30):
            client.send(lu(node=f"n{i % 3}", t=float(i), seq=i))
        sim.run()
        stats = client.stats
        assert stats.delivered + stats.gave_up == stats.offered
        store = service.store
        assert service.stats.accepted == (
            store.applied + store.duplicates + store.reordered
        )

    def test_non_lu_messages_pass_the_gate(self):
        sim = Simulator()
        service, client = make_stack(sim)
        from repro.network.messages import Message

        probe = Message(sender="x", timestamp=0.0, seq=99)
        assert client._accept(probe)  # only LUs consult service capacity
        client._deliver(probe)  # and non-LUs are ignored by the sink
        assert service.stats.offered == 0


class TestCircuitBreaker:
    """Give-ups against a crashed shard open the breaker; acks close it."""

    def make_crashed_stack(self, sim, tmp_path, **client_kw):
        from repro.serving import DurabilityManager

        channel = WirelessChannel(
            sim, np.random.default_rng(3), loss_probability=0.0
        )
        service = IngestService(
            sim,
            ServingConfig(shards=1, flush_interval=0.05),
            durability=DurabilityManager(tmp_path),
        )
        defaults = dict(
            ack_timeout=0.1,
            max_retries=1,
            failure_threshold=2,
            breaker_cooldown=5.0,
            breaker_backoff=2.0,
        )
        defaults.update(client_kw)
        client = ReliableIngestClient(
            sim, service, channel, seq_source=SequenceSource(), **defaults
        )
        service.crash_shard(0)
        return service, client

    def test_consecutive_give_ups_open_the_breaker(self, tmp_path):
        sim = Simulator()
        service, client = self.make_crashed_stack(sim, tmp_path)
        # Each send burns its retry budget against the down shard.
        for i in range(2):
            assert client.send(lu(t=float(i), seq=i))
            sim.run()
        assert client.stats.gave_up == 2
        assert client.breaker_opens == 1
        assert client.breaker_is_open(0)
        # An open breaker sheds locally instead of transmitting.
        offered_before = client.stats.offered
        assert not client.send(lu(t=9.0, seq=9))
        assert client.shed_by_breaker == 1
        assert client.stats.offered == offered_before
        acct = client.accounting()
        assert acct["breaker_opens"] == 1
        assert acct["shed_by_breaker"] == 1

    def test_probe_failure_reopens_with_longer_cooldown(self, tmp_path):
        sim = Simulator()
        service, client = self.make_crashed_stack(sim, tmp_path)
        for i in range(2):
            client.send(lu(t=float(i), seq=i))
            sim.run()
        first_open_until = client._breakers[0].open_until
        # Wait out the cooldown; the next send is the half-open probe.
        sim.schedule_at(first_open_until + 0.01, lambda: None)
        sim.run()
        assert not client.breaker_is_open(0)
        assert client.send(lu(t=10.0, seq=10))  # the probe transmits
        sim.run()
        # One more give-up reopened immediately, cooldown doubled.
        assert client.breaker_opens == 2
        assert client._breakers[0].reopenings == 2
        second_window = client._breakers[0].open_until - sim.now
        assert second_window == pytest.approx(10.0, abs=0.5)

    def test_ack_after_restart_closes_the_breaker(self, tmp_path):
        sim = Simulator()
        service, client = self.make_crashed_stack(sim, tmp_path)
        for i in range(2):
            client.send(lu(t=float(i), seq=i))
            sim.run()
        assert client.breaker_is_open(0)
        service.restart_shard(0)
        breaker_deadline = client._breakers[0].open_until
        sim.schedule_at(breaker_deadline + 0.01, lambda: None)
        sim.run()
        assert client.send(lu(t=20.0, seq=20))  # probe against live shard
        sim.run()
        assert client.stats.delivered >= 1
        breaker = client._breakers[0]
        assert breaker.consecutive_failures == 0
        assert breaker.reopenings == 0
        assert not client.breaker_is_open(0)
        # Fully closed: further sends flow without shedding.
        assert client.send(lu(t=21.0, seq=21))
        sim.run()
        assert client.shed_by_breaker == 0

    def test_breaker_param_validation(self):
        sim = Simulator()
        channel = WirelessChannel(
            sim, np.random.default_rng(3), loss_probability=0.0
        )
        service = IngestService(sim, ServingConfig(shards=1))
        for bad in (
            dict(failure_threshold=0),
            dict(breaker_cooldown=0.0),
            dict(breaker_backoff=0.5),
            dict(breaker_cooldown=2.0, breaker_max_cooldown=1.0),
        ):
            with pytest.raises(ValueError):
                ReliableIngestClient(sim, service, channel, **bad)
