"""WAL framing, snapshots, and snapshot+tail-replay equivalence.

The framing properties are the load-bearing ones: recovery's whole
contract rests on ``scan_frames`` returning exactly the longest valid
prefix of a possibly-torn file, never decoding a corrupt frame and never
discarding an intact one.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.serving import IngestOutcome, ShardedLocationStore
from repro.serving.durability import (
    DurabilityConfig,
    DurabilityManager,
    WalError,
    WriteAheadLog,
    frame,
    read_wal,
    scan_frames,
    write_snapshot,
)

# JSON documents a WAL frame might carry: entry-shaped arrays of scalars.
_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)
_entries = st.lists(st.lists(_scalars, max_size=6), max_size=8)


def _encode(entries):
    return b"".join(
        frame(json.dumps(e, sort_keys=True).encode("utf-8")) for e in entries
    )


def lu(node="n1", t=0.0, seq=0, x=0.0, region="road-1", vx=1.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(vx, 0.0),
        region_id=region,
        dth=4.0,
    )


class TestFraming:
    @settings(max_examples=60, deadline=None)
    @given(_entries)
    def test_round_trip(self, entries):
        data = _encode(entries)
        payloads, valid = scan_frames(data)
        assert payloads == entries
        assert valid == len(data)

    @settings(max_examples=60, deadline=None)
    @given(_entries, st.data())
    def test_truncation_at_any_offset_yields_longest_valid_prefix(
        self, entries, data
    ):
        """Crash-at-every-byte-offset: the scan never loses an intact
        frame and never fabricates one from a torn tail."""
        encoded = _encode(entries)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded)))
        payloads, valid = scan_frames(encoded[:cut])
        # The survivors are a prefix of the original entries...
        assert payloads == entries[: len(payloads)]
        # ...the valid offset is consistent (rescanning reproduces it)...
        assert scan_frames(encoded[:valid]) == (payloads, valid)
        # ...and every frame wholly inside the cut survived: the valid
        # prefix can only fall short of the cut by less than one frame.
        assert valid <= cut
        whole, _ = scan_frames(encoded)
        frame_ends = []
        offset = 0
        for entry in whole:
            offset += 8 + len(json.dumps(entry, sort_keys=True).encode())
            frame_ends.append(offset)
        assert valid == max(
            [end for end in frame_ends if end <= cut], default=0
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.lists(_scalars, max_size=6), min_size=1, max_size=8),
        st.data(),
    )
    def test_single_byte_corruption_never_decodes_past_it(
        self, entries, data
    ):
        """CRC32 catches any single-byte flip: frames before the damage
        survive untouched, nothing at or past it is ever returned."""
        encoded = bytearray(_encode(entries))
        pos = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1)
        )
        flip = data.draw(st.integers(min_value=1, max_value=255))
        encoded[pos] ^= flip
        payloads, valid = scan_frames(bytes(encoded))
        assert payloads == entries[: len(payloads)]
        assert valid <= pos  # the corrupt frame itself never validates

    def test_empty_and_header_only_inputs(self):
        assert scan_frames(b"") == ([], 0)
        assert scan_frames(b"\x07\x00\x00") == ([], 0)  # short header

    def test_non_json_payload_rejected_even_with_valid_crc(self):
        import zlib

        payload = b"\xff\xfe not json"
        bogus = (
            len(payload).to_bytes(4, "little")
            + zlib.crc32(payload).to_bytes(4, "little")
            + payload
        )
        assert scan_frames(bogus) == ([], 0)


class TestWriteAheadLog:
    def test_append_flush_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "s.wal", shard=3)
        assert wal.append_update(lu(t=1.0, seq=1)) == 1
        assert wal.append_tick(2.0) == 2
        wal.flush()
        wal.close()
        contents = read_wal(tmp_path / "s.wal")
        assert contents.shard == 3
        assert contents.base_lsn == 0
        assert contents.torn_bytes == 0
        assert contents.entries[0][:4] == ["lu", 1.0, 1, "n1"]
        assert contents.entries[1] == ["tick", 2.0]
        assert contents.next_lsn == 3

    def test_unflushed_entries_die_with_the_buffer(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "s.wal")
        wal.append_update(lu(seq=1))
        wal.flush()
        wal.append_update(lu(seq=2))
        wal.append_update(lu(seq=3))
        assert wal.drop_buffer() == 2
        assert wal.last_lsn == 1
        wal.close()
        assert len(read_wal(tmp_path / "s.wal").entries) == 1

    def test_torn_tail_tolerated_on_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "s.wal")
        wal.append_update(lu(seq=1))
        wal.close()
        with (tmp_path / "s.wal").open("ab") as fh:
            fh.write(b"\x40\x00\x00\x00 torn")  # header promising 64 bytes
        contents = read_wal(tmp_path / "s.wal")
        assert len(contents.entries) == 1
        assert contents.torn_bytes == len(b"\x40\x00\x00\x00 torn")

    def test_compaction_preserves_absolute_lsns(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "s.wal")
        for seq in range(1, 6):
            wal.append_update(lu(seq=seq, t=float(seq)))
        wal.flush()
        assert wal.compact(3) == 3  # entries with LSN 1..3 dropped
        wal.append_update(lu(seq=6, t=6.0))
        assert wal.last_lsn == 6
        wal.close()
        contents = read_wal(tmp_path / "s.wal")
        assert contents.base_lsn == 3
        assert [e[2] for e in contents.entries] == [4, 5, 6]  # seqs
        assert contents.next_lsn == 7

    def test_compact_past_end_is_bounded(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "s.wal")
        wal.append_update(lu(seq=1))
        assert wal.compact(99) == 1
        assert wal.base_lsn == 1
        wal.close()
        assert read_wal(tmp_path / "s.wal").entries == []

    def test_not_a_wal_rejected(self, tmp_path):
        (tmp_path / "junk.wal").write_bytes(b"not framed at all")
        with pytest.raises(WalError, match="no intact WAL header"):
            read_wal(tmp_path / "junk.wal")
        (tmp_path / "other.wal").write_bytes(
            frame(b'{"format":"something-else"}')
        )
        with pytest.raises(WalError, match="not a repro-shard-wal"):
            read_wal(tmp_path / "other.wal")

    def test_wire_and_fallback_encodings_byte_identical(self, tmp_path):
        """An LU carrying its received row bytes must log the exact same
        frame as one serialized field by field — whichever path a record
        took in, recovery and the determinism gates see one encoding."""
        updates = [
            lu(node=f"n{i}", t=0.1 + i / 3.0, seq=i, x=i / 7.0, vx=-i / 11.0)
            for i in range(5)
        ]
        plain = WriteAheadLog(tmp_path / "plain.wal")
        for update in updates:
            plain.append_update(update)
        plain.flush()
        plain.close()
        from dataclasses import replace

        wired = WriteAheadLog(tmp_path / "wired.wal")
        for update in updates:
            row = [
                update.timestamp,
                update.seq,
                update.node_id,
                update.position.x,
                update.position.y,
                update.velocity.x,
                update.velocity.y,
                update.region_id,
                update.dth,
            ]
            encoded = json.dumps(row, separators=(",", ":")).encode("utf-8")
            wired.append_update(replace(update, wire=encoded))
        wired.flush()
        wired.close()
        assert (
            (tmp_path / "plain.wal").read_bytes()
            == (tmp_path / "wired.wal").read_bytes()
        )


class TestSnapshotTailReplay:
    """Snapshot + WAL-tail replay reproduces a shard bit-exactly."""

    def _stream(self, n=30):
        # Two nodes reporting interleaved, region pinned to one shard.
        return [
            lu(
                node=f"n{i % 2}",
                t=1.0 + i * 0.5,
                seq=1 + i // 2,
                x=float(i),
                vx=0.5,
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("snapshot_after", [0, 10, 29])
    def test_recovered_shard_matches_uncrashed(
        self, tmp_path, snapshot_after
    ):
        golden = ShardedLocationStore(1)
        durable = ShardedLocationStore(1)
        manager = DurabilityManager(tmp_path, DurabilityConfig())
        manager.bind(1)
        stream = self._stream()
        for i, update in enumerate(stream):
            golden.apply(update)
            if durable.apply(update) is IngestOutcome.APPLIED:
                manager.log_applied(0, update)
            if i % 7 == 6:
                now = update.timestamp + 0.1
                golden.tick(now)
                durable.tick(now)
                manager.log_tick(0, now)
            manager.flush_shard(0)
            if snapshot_after and i == snapshot_after:
                manager.snapshot_now(
                    0,
                    state=durable.shard(0).state_dict(),
                    gates=durable.shard_gates(0),
                )

        # Crash and recover from disk only.
        recovered_store = ShardedLocationStore(1)
        recovered_store.crash_shard(0)
        recovered = manager.recover_shard(0)
        recovered_store.restore_shard(
            0,
            state=recovered.state,
            gates=recovered.gates,
            entries=recovered.entries,
        )
        manager.close()

        assert (
            recovered_store.shard(0).state_dict()
            == golden.shard(0).state_dict()
        )
        assert recovered_store.export_state() == golden.export_state()
        if snapshot_after:
            assert recovered.snapshot_lsn > 0
            assert recovered.replayed < len(stream)

    def test_unflushed_window_is_the_only_loss(self, tmp_path):
        manager = DurabilityManager(tmp_path, DurabilityConfig())
        manager.bind(1)
        store = ShardedLocationStore(1)
        stream = self._stream(10)
        for update in stream[:6]:
            store.apply(update)
            manager.log_applied(0, update)
        manager.flush_shard(0)
        for update in stream[6:]:
            store.apply(update)
            manager.log_applied(0, update)
        # Crash before the second flush: exactly 4 entries evaporate.
        assert manager.on_crash(0) == 4
        assert manager.stats.dropped_unflushed == 4
        recovered = manager.recover_shard(0)
        assert recovered.replayed == 6
        manager.close()

    def test_snapshot_cadence_compacts(self, tmp_path):
        manager = DurabilityManager(
            tmp_path, DurabilityConfig(snapshot_every=5)
        )
        manager.bind(1)
        store = ShardedLocationStore(1)
        took = 0
        for update in self._stream(12):
            store.apply(update)
            manager.log_applied(0, update)
            manager.flush_shard(0)
            if manager.maybe_snapshot(
                0,
                lambda: (store.shard(0).state_dict(), store.shard_gates(0)),
            ):
                took += 1
        assert took == 2
        assert manager.stats.snapshots_written == 2
        assert manager.stats.compacted_entries == 10
        contents = read_wal(manager.wal_path(0))
        assert contents.base_lsn == 10
        assert len(contents.entries) == 2
        manager.close()

    def test_bad_snapshot_rejected(self, tmp_path):
        from repro.serving.durability import load_snapshot

        path = tmp_path / "s.snap.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(WalError, match="unreadable"):
            load_snapshot(path)
        write_snapshot(path, shard=0, lsn=3, state={}, gates={})
        document = load_snapshot(path)
        assert document["lsn"] == 3

    def test_double_bind_rejected(self, tmp_path):
        manager = DurabilityManager(tmp_path)
        manager.bind(2)
        with pytest.raises(RuntimeError, match="already bound"):
            manager.bind(2)
        manager.close()
