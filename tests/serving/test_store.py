"""Tests for the region-sharded location store."""

import pytest

from repro.broker.broker import BrokerConfig, GridBroker
from repro.broker.location_db import RecordSource
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.serving import IngestOutcome, ShardedLocationStore, shard_for


def lu(node="n1", t=0.0, seq=0, x=0.0, region="road-1", vx=1.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(vx, 0.0),
        region_id=region,
        dth=4.0,
    )


class TestSharding:
    def test_shard_for_in_range_and_stable(self):
        for region in ("road-1", "bldg-2", "", "λ-region"):
            index = shard_for(region, 4)
            assert 0 <= index < 4
            assert shard_for(region, 4) == index  # pure function

    def test_known_assignment(self):
        # CRC32 is specified byte math, so the assignment is a constant —
        # across processes, platforms, and PYTHONHASHSEED values.
        import zlib

        assert shard_for("road-1", 8) == zlib.crc32(b"road-1") % 8

    def test_records_land_in_region_shard(self):
        store = ShardedLocationStore(4)
        store.apply(lu(region="road-1"))
        index = shard_for("road-1", 4)
        assert store.shard(index).location_db.latest("n1") is not None

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="shard_count"):
            ShardedLocationStore(0)


class TestIngestGates:
    def test_fresh_update_applied(self):
        store = ShardedLocationStore(2)
        assert store.apply(lu(t=1.0, seq=1)) is IngestOutcome.APPLIED
        assert store.applied == 1
        assert store.node_count == 1

    def test_duplicate_seq_suppressed(self):
        store = ShardedLocationStore(2)
        store.apply(lu(t=1.0, seq=5))
        assert store.apply(lu(t=1.0, seq=5)) is IngestOutcome.DUPLICATE
        assert store.apply(lu(t=2.0, seq=4)) is IngestOutcome.DUPLICATE
        assert store.duplicates == 2
        assert store.applied == 1

    def test_cross_shard_reorder_suppressed(self):
        """A node's older LU drained from another shard is a duplicate."""
        store = ShardedLocationStore(4)
        newer = lu(t=2.0, seq=2, region="bldg-9", x=5.0)
        older = lu(t=1.0, seq=1, region="road-1", x=1.0)
        store.apply(newer)
        assert store.apply(older) is IngestOutcome.DUPLICATE
        latest = store.latest("n1")
        assert latest is not None and latest.time == 2.0

    def test_time_regression_dropped_as_stale(self):
        store = ShardedLocationStore(2)
        store.apply(lu(t=5.0, seq=1))
        assert store.apply(lu(t=4.0, seq=2)) is IngestOutcome.STALE
        assert store.reordered == 1

    def test_equal_time_new_seq_applied(self):
        store = ShardedLocationStore(2)
        store.apply(lu(t=1.0, seq=1, x=1.0))
        assert store.apply(lu(t=1.0, seq=2, x=2.0)) is IngestOutcome.APPLIED
        latest = store.latest("n1")
        assert latest is not None and latest.position == Vec2(2.0, 0.0)

    def test_apply_batch_returns_per_outcome_tallies(self):
        store = ShardedLocationStore(2)
        batch = [
            lu(t=1.0, seq=1),
            lu(t=1.0, seq=1),  # duplicate seq
            lu(t=2.0, seq=2),
            lu(t=1.5, seq=3),  # fresher seq, older stamp -> stale
        ]
        tally = store.apply_batch(batch)
        assert tally.applied == 2
        assert tally.duplicates == 1
        assert tally.stale == 1
        assert tally.down == 0
        assert tally.total == len(batch)
        assert tally.as_dict() == {
            "applied": 2,
            "down": 0,
            "duplicates": 1,
            "stale": 1,
        }


class TestDbMonotonicity:
    """Out-of-order delivery can never corrupt a shard's LocationDB."""

    def test_db_time_monotone_under_shuffled_delivery(self):
        store = ShardedLocationStore(3)
        updates = [
            lu(node=f"n{i % 4}", t=float(i), seq=i, region=f"r{i % 5}")
            for i in range(20)
        ]
        # Deterministically mangle the order: reversed pairs + a repeat.
        shuffled = []
        for i in range(0, len(updates), 2):
            pair = updates[i : i + 2]
            shuffled.extend(reversed(pair))
            shuffled.append(pair[0])
        for update in shuffled:
            store.apply(update)  # must never raise
        for index in range(3):
            db = store.shard(index).location_db
            for node in db.node_ids():
                times = [r.time for r in db.history(node)]
                assert times == sorted(times)

    def test_estimate_then_old_fix_matches_broker_skip_db(self):
        """The store inherits the PR 4 ``skip_db`` path verbatim.

        After a shard broker stores an *estimated* record, a real fix
        with an older timestamp must feed the tracker (resync) but skip
        the DB write — identical to a lone degraded GridBroker.
        """
        config = BrokerConfig(
            report_interval=1.0,
            max_extrapolation_age=10.0,
            quarantine_age=30.0,
        )
        lone = GridBroker(config)
        store = ShardedLocationStore(
            1,
            report_interval=1.0,
            max_extrapolation_intervals=10.0,
            quarantine_intervals=30.0,
        )
        first = lu(t=1.0, seq=1, x=0.0)
        late = lu(t=3.0, seq=2, x=2.0)
        for target, tick in ((lone, lone.tick), (store, store.tick)):
            receive = (
                target.receive_update
                if isinstance(target, GridBroker)
                else target.apply
            )
            receive(first)
            tick(2.0)  # clears the updated-this-interval set
            tick(4.0)  # estimates a record at t=4 > late fix's t=3
            receive(late)

        def db_of(target):
            if isinstance(target, GridBroker):
                return target.location_db
            return target.shard(0).location_db

        for target in (lone, store):
            db = db_of(target)
            history = db.history("n1")
            assert [r.time for r in history] == sorted(
                r.time for r in history
            )
            # The late real fix skipped the DB: latest is the estimate.
            latest = db.latest("n1")
            assert latest is not None
            assert latest.source is RecordSource.ESTIMATED
        assert (
            db_of(store).stored_received == db_of(lone).stored_received
        )
        assert (
            db_of(store).stored_estimated == db_of(lone).stored_estimated
        )

    def test_parity_with_lone_broker_on_in_order_stream(self):
        """Single shard + in-order stream ⇒ byte-for-byte broker parity."""
        config = BrokerConfig(
            report_interval=1.0,
            max_extrapolation_age=10.0,
            quarantine_age=30.0,
        )
        lone = GridBroker(config)
        store = ShardedLocationStore(1)
        stream = [lu(t=float(t), seq=t, x=float(t)) for t in range(1, 8)]
        for update in stream:
            lone.receive_update(update)
            store.apply(update)
        lone_db = lone.location_db
        store_db = store.shard(0).location_db
        assert [
            (r.time, r.position, r.source) for r in lone_db.history("n1")
        ] == [(r.time, r.position, r.source) for r in store_db.history("n1")]


class TestDegradationSweep:
    def test_tick_extrapolates_silent_nodes(self):
        store = ShardedLocationStore(2, report_interval=1.0)
        store.apply(lu(t=1.0, seq=1, vx=2.0))
        store.tick(2.0)  # the LU's own interval: nothing to estimate yet
        made = store.tick(3.0)
        assert made == 1
        assert store.estimates_made == 1

    def test_quarantine_and_resync(self):
        store = ShardedLocationStore(
            2,
            report_interval=1.0,
            max_extrapolation_intervals=3.0,
            quarantine_intervals=5.0,
        )
        store.apply(lu(t=1.0, seq=1))
        store.tick(2.0)
        store.tick(10.0)  # silent for 9 intervals > quarantine age 5
        assert store.quarantines == 1
        store.apply(lu(t=11.0, seq=2))
        assert store.resyncs == 1

    def test_believed_position_follows_owning_shard(self):
        store = ShardedLocationStore(4)
        store.apply(lu(t=1.0, seq=1, region="road-1", x=3.0))
        store.apply(lu(t=2.0, seq=2, region="bldg-9", x=7.0))
        assert store.believed_position("n1", 2.0) == Vec2(7.0, 0.0)
        assert store.believed_position("ghost") is None
        assert store.latest("ghost") is None


class TestThreadSafety:
    def test_locked_store_same_semantics(self):
        plain = ShardedLocationStore(2)
        locked = ShardedLocationStore(2, thread_safe=True)
        stream = [lu(t=float(t), seq=t) for t in range(1, 6)]
        for update in stream:
            assert plain.apply(update) == locked.apply(update)
        assert locked.tick(10.0) == plain.tick(10.0)
        assert locked.applied == plain.applied

    def test_shard_accounting(self):
        store = ShardedLocationStore(2)
        store.apply(lu(node="a", t=1.0, seq=1, region="r1"))
        store.apply(lu(node="b", t=1.0, seq=2, region="r2"))
        assert sum(store.shard_sizes()) == 2
        assert sum(store.shard_received()) == 2
