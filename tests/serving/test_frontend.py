"""Conservation-law tests for the threaded ingest front end.

Interleavings are scheduler-dependent, so these tests assert *counts*
(nothing lost, nothing double-counted), never ordering or byte-level
output — that discipline belongs to the single-threaded replay path.
"""

import threading

import pytest

from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.serving import ShardedLocationStore, ThreadedFrontEnd


def lu(node="n1", t=0.0, seq=0, region="road-1"):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        seq=seq,
        node_id=node,
        position=Vec2(1.0, 0.0),
        velocity=Vec2(1.0, 0.0),
        region_id=region,
        dth=4.0,
    )


class TestLifecycle:
    def test_context_manager_drains_before_exit(self):
        with ThreadedFrontEnd(workers=2, shards=2) as frontend:
            for i in range(50):
                frontend.submit(lu(node=f"n{i % 4}", t=float(i), seq=i))
        # stop() put the sentinels behind the backlog: all applied.
        assert frontend.offered == 50
        assert frontend.accepted + frontend.shed == 50
        store = frontend.store
        assert frontend.accepted == (
            store.applied + store.duplicates + store.reordered
        )

    def test_start_idempotent_and_stop_safe_twice(self):
        frontend = ThreadedFrontEnd(workers=1)
        frontend.start()
        frontend.start()
        frontend.stop()
        frontend.stop()

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="workers"):
            ThreadedFrontEnd(workers=0)
        with pytest.raises(ValueError, match="queue_capacity"):
            ThreadedFrontEnd(queue_capacity=0)


class TestConcurrentProducers:
    def test_conservation_across_producer_threads(self):
        frontend = ThreadedFrontEnd(workers=3, shards=4, queue_capacity=64)
        per_thread = 200

        def produce(prefix):
            for i in range(per_thread):
                frontend.submit(
                    lu(node=f"{prefix}-{i % 7}", t=float(i), seq=i,
                       region=f"r{i % 9}")
                )

        with frontend:
            producers = [
                threading.Thread(target=produce, args=(f"p{p}",))
                for p in range(4)
            ]
            for thread in producers:
                thread.start()
            for thread in producers:
                thread.join()
        assert frontend.offered == 4 * per_thread
        assert frontend.accepted + frontend.shed == frontend.offered
        store = frontend.store
        assert frontend.accepted == (
            store.applied + store.duplicates + store.reordered
        )
        assert frontend.backlog == 0

    def test_tiny_queue_sheds_under_burst(self):
        # Workers started only after the burst: the bounded queue must
        # reject the overflow instead of buffering it.
        frontend = ThreadedFrontEnd(workers=1, queue_capacity=8)
        results = [
            frontend.submit(lu(t=float(i), seq=i)) for i in range(20)
        ]
        assert results.count(True) == 8
        assert frontend.shed == 12
        frontend.start()
        frontend.stop()
        assert frontend.store.applied + frontend.store.duplicates == 8

    def test_caller_supplied_store_is_used(self):
        store = ShardedLocationStore(2, thread_safe=True)
        with ThreadedFrontEnd(store, workers=1) as frontend:
            frontend.submit(lu(t=1.0, seq=1))
        assert store.applied == 1
        assert frontend.store is store
