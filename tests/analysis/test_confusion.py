"""Tests for the classifier confusion analysis."""

import pytest

from repro.analysis import ConfusionMatrix, evaluate_classifier
from repro.experiments import ExperimentConfig
from repro.mobility.states import MobilityState

SS, RMS, LMS = MobilityState.STOP, MobilityState.RANDOM, MobilityState.LINEAR


class TestConfusionMatrix:
    def test_accuracy(self):
        m = ConfusionMatrix()
        m.record(SS, SS)
        m.record(SS, SS)
        m.record(SS, RMS)
        assert m.total() == 3
        assert m.correct() == 2
        assert m.accuracy == pytest.approx(2 / 3)

    def test_recall_and_precision(self):
        m = ConfusionMatrix()
        m.record(LMS, LMS)
        m.record(LMS, RMS)
        m.record(RMS, LMS)
        assert m.recall(LMS) == 0.5
        assert m.precision(LMS) == 0.5
        assert m.support(LMS) == 2

    def test_empty_matrix(self):
        m = ConfusionMatrix()
        assert m.accuracy == 0.0
        assert m.recall(SS) == 0.0
        assert m.precision(SS) == 0.0

    def test_render(self):
        m = ConfusionMatrix()
        m.record(SS, SS)
        out = m.render()
        assert "SS" in out and "accuracy" in out


class TestEvaluateClassifier:
    @pytest.fixture(scope="class")
    def matrix(self):
        return evaluate_classifier(
            ExperimentConfig(duration=60.0), duration=60.0, warmup=15.0
        )

    def test_overall_accuracy(self, matrix):
        assert matrix.accuracy > 0.65

    def test_stop_recall_is_high(self, matrix):
        """Stationary nodes are the easiest class."""
        assert matrix.recall(SS) > 0.9

    def test_all_classes_observed(self, matrix):
        for state in (SS, RMS, LMS):
            assert matrix.support(state) > 0

    def test_lms_recall_reasonable(self, matrix):
        assert matrix.recall(LMS) > 0.6

    def test_sample_count_matches_setup(self, matrix):
        # 140 nodes x (60 - 15) seconds of scored observations.
        assert matrix.total() == 140 * 45
