"""Tests for energy accounting."""

import pytest

from repro.analysis import energy_report
from repro.experiments import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment
from repro.mobility.states import DeviceType


@pytest.fixture(scope="module")
def run():
    config = ExperimentConfig(duration=30.0, dth_factors=(1.25,))
    experiment = MobileGridExperiment(config)
    result = experiment.run()
    return result, experiment.nodes


class TestEnergyReport:
    def test_lanes_present(self, run):
        result, nodes = run
        report = energy_report(result, nodes)
        assert set(report.total_wh) == {"ideal", "adf-1.25"}

    def test_adf_saves_energy(self, run):
        result, nodes = run
        report = energy_report(result, nodes)
        assert report.total_wh["adf-1.25"] < report.total_wh["ideal"]
        savings = report.savings_vs_ideal("adf-1.25")
        # Energy savings mirror the LU reduction.
        assert savings == pytest.approx(
            result.reduction_vs_ideal("adf-1.25"), abs=0.1
        )

    def test_ideal_saves_nothing(self, run):
        result, nodes = run
        report = energy_report(result, nodes)
        assert report.savings_vs_ideal("ideal") == 0.0

    def test_per_device_split_sums_to_total(self, run):
        result, nodes = run
        report = energy_report(result, nodes)
        for lane, per_device in report.per_device_wh.items():
            assert sum(per_device.values()) == pytest.approx(
                report.total_wh[lane]
            )

    def test_battery_fraction_saved_positive(self, run):
        result, nodes = run
        report = energy_report(result, nodes)
        saved = report.battery_fraction_saved("adf-1.25", DeviceType.CELL_PHONE)
        assert saved > 0.0

    def test_render(self, run):
        result, nodes = run
        out = energy_report(result, nodes).render()
        assert "ideal" in out and "saved vs ideal" in out
