"""Tests for replication statistics."""

import pytest

from repro.analysis import replicate, summarize_metric
from repro.experiments import ExperimentConfig


@pytest.fixture(scope="module")
def results():
    config = ExperimentConfig(duration=15.0, dth_factors=(1.0,))
    return replicate(config, seeds=[1, 2, 3])


class TestReplicate:
    def test_one_result_per_seed(self, results):
        assert len(results) == 3

    def test_seeds_produce_different_runs(self, results):
        totals = {r.lanes["adf-1"].total_lus for r in results}
        assert len(totals) > 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(ExperimentConfig(duration=5.0), seeds=[])


class TestSummarize:
    def test_mean_and_ci(self, results):
        summary = summarize_metric(
            results,
            lambda r: r.reduction_vs_ideal("adf-1"),
            metric="reduction",
        )
        assert summary.n == 3
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert 0.3 < summary.mean < 0.7

    def test_reduction_stable_across_seeds(self, results):
        summary = summarize_metric(
            results, lambda r: r.reduction_vs_ideal("adf-1")
        )
        # Run-to-run spread of the headline reduction is small.
        assert summary.half_width < 0.1

    def test_single_result_degenerate_interval(self, results):
        summary = summarize_metric(results[:1], lambda r: 5.0)
        assert summary.mean == 5.0
        assert summary.ci_low == summary.ci_high == 5.0
        assert summary.std == 0.0

    def test_contains(self, results):
        summary = summarize_metric(results, lambda r: 1.0)
        assert summary.contains(1.0)
        assert not summary.contains(2.0)

    def test_str_rendering(self, results):
        summary = summarize_metric(results, lambda r: 1.0, metric="x")
        assert "x:" in str(summary)
        assert "n=3" in str(summary)

    def test_no_results_rejected(self):
        with pytest.raises(ValueError):
            summarize_metric([], lambda r: 0.0)


class TestSummarizeValues:
    def test_matches_summarize_metric(self, results):
        from repro.analysis import summarize_values

        values = [r.reduction_vs_ideal("adf-1") for r in results]
        direct = summarize_values(values, metric="reduction")
        via_extractor = summarize_metric(
            results, lambda r: r.reduction_vs_ideal("adf-1"), metric="reduction"
        )
        assert direct == via_extractor

    def test_single_value_degenerates_to_point(self):
        from repro.analysis import summarize_values

        summary = summarize_values([0.5], metric="m")
        assert (summary.mean, summary.ci_low, summary.ci_high) == (0.5, 0.5, 0.5)

    def test_empty_rejected(self):
        from repro.analysis import summarize_values

        with pytest.raises(ValueError):
            summarize_values([])
