"""Tests for traffic distribution analysis."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import gini, lorenz_curve, traffic_shape
from repro.experiments import ExperimentConfig, run_experiment

counts = st.lists(
    st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=60
)


class TestGini:
    def test_equal_values_zero(self):
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration(self):
        # One node carries everything: Gini -> (n-1)/n.
        assert gini([0.0, 0.0, 0.0, 100.0]) == pytest.approx(0.75)

    def test_known_value(self):
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert gini([0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1.0, 2.0])

    @given(counts)
    def test_bounded(self, values):
        g = gini(values)
        assert -1e-9 <= g < 1.0

    @given(counts, st.floats(min_value=0.1, max_value=10.0))
    def test_scale_invariant(self, values, k):
        assert gini([v * k for v in values]) == pytest.approx(
            gini(values), abs=1e-9
        )


class TestLorenz:
    def test_endpoints(self):
        curve = lorenz_curve([1.0, 2.0, 3.0])
        assert curve[0] == 0.0
        assert curve[-1] == pytest.approx(1.0)

    def test_monotone_and_convex_under_diagonal(self):
        curve = lorenz_curve([1.0, 2.0, 7.0])
        assert np.all(np.diff(curve) >= 0)
        shares = np.linspace(0, 1, curve.size)
        assert np.all(curve <= shares + 1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lorenz_curve([])


class TestTrafficShape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(ExperimentConfig(duration=30.0, dth_factors=(1.0,)))

    def test_ideal_lane_is_uniform(self, result):
        shape = traffic_shape(result.ideal, result.duration)
        assert shape.active_nodes == 140
        assert shape.gini == pytest.approx(0.0, abs=1e-9)
        assert shape.top_decile_share == pytest.approx(0.1, abs=0.01)

    def test_adf_lane_is_skewed(self, result):
        """Filtering concentrates traffic on the fast nodes."""
        ideal = traffic_shape(result.ideal, result.duration)
        adf = traffic_shape(result.lanes["adf-1"], result.duration)
        assert adf.gini > ideal.gini + 0.1
        assert adf.top_decile_share > 0.12

    def test_dispersion_computed(self, result):
        shape = traffic_shape(result.lanes["adf-1"], result.duration)
        assert shape.dispersion >= 0.0

    def test_missing_per_node_counts_rejected(self):
        from repro.experiments.results import LaneResult
        from repro.network.traffic import TrafficMeter

        lane = LaneResult(name="x", dth_factor=None, meter=TrafficMeter())
        with pytest.raises(ValueError, match="per-node"):
            traffic_shape(lane, 10.0)
