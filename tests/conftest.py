"""Shared fixtures."""

import pytest

from repro.campus import default_campus
from repro.util.rng import RngRegistry


@pytest.fixture
def campus():
    """The default 11-region campus."""
    return default_campus()


@pytest.fixture
def rng_registry():
    """A seeded registry of named RNG streams."""
    return RngRegistry(seed=1234)


@pytest.fixture
def rng(rng_registry):
    """One generic RNG stream."""
    return rng_registry.stream("tests")
