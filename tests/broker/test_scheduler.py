"""Tests for the location-aware grid scheduler."""

import pytest

from repro.broker import (
    GridBroker,
    GridScheduler,
    Job,
    ResourceRegistry,
    SchedulingPolicy,
    TaskState,
)
from repro.geometry import Vec2
from repro.mobility.states import DeviceType
from repro.network.messages import LocationUpdate


def lu(node, x, y=0.0, t=0.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, y),
        velocity=Vec2.zero(),
        region_id="R1",
    )


@pytest.fixture
def world():
    broker = GridBroker()
    registry = ResourceRegistry()
    # Three nodes at x = 0, 50, 100.
    for i, x in enumerate((0.0, 50.0, 100.0)):
        node = f"n{i}"
        registry.register(node, DeviceType.LAPTOP)
        broker.receive_update(lu(node, x))
    return broker, registry


class TestAvailability:
    def test_all_available_initially(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry)
        assert len(scheduler.available_nodes(0.0)) == 3

    def test_low_battery_excluded(self, world):
        broker, registry = world
        registry.set_battery("n0", 0.01)
        scheduler = GridScheduler(broker, registry)
        assert "n0" not in scheduler.available_nodes(0.0)


class TestProximityPolicy:
    def test_nearest_chosen_first(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry, policy=SchedulingPolicy.PROXIMITY)
        job = Job.uniform(1, 100.0)
        scheduler.schedule(job, now=0.0, anchor=Vec2(100, 0))
        assert job.tasks[0].assigned_to == "n2"

    def test_belief_drives_choice_not_truth(self, world):
        """The scheduler sees broker beliefs; a wrong belief misroutes."""
        broker, registry = world
        # n0's belief is moved far away even though the 'truth' had it at 0.
        broker.receive_update(lu("n0", 1000.0, t=1.0))
        scheduler = GridScheduler(broker, registry, policy=SchedulingPolicy.PROXIMITY)
        job = Job.uniform(1, 100.0)
        scheduler.schedule(job, now=1.0, anchor=Vec2(0, 0))
        assert job.tasks[0].assigned_to == "n1"


class TestStalenessAwarePolicy:
    def test_fresh_fix_preferred_over_stale_equal_distance(self, world):
        broker, registry = world
        # Both n0 and n1 believed at similar distance from the anchor, but
        # n0's fix is old.
        broker.receive_update(lu("n0", 10.0, t=0.0))
        broker.receive_update(lu("n1", 12.0, t=50.0))
        scheduler = GridScheduler(
            broker, registry,
            policy=SchedulingPolicy.STALENESS_AWARE,
            staleness_penalty=2.0,
        )
        job = Job.uniform(1, 100.0)
        scheduler.schedule(job, now=50.0, anchor=Vec2(0, 0))
        assert job.tasks[0].assigned_to == "n1"

    def test_zero_penalty_degenerates_to_proximity(self, world):
        broker, registry = world
        scheduler = GridScheduler(
            broker, registry,
            policy=SchedulingPolicy.STALENESS_AWARE,
            staleness_penalty=0.0,
        )
        job = Job.uniform(1, 100.0)
        scheduler.schedule(job, now=0.0, anchor=Vec2(100, 0))
        assert job.tasks[0].assigned_to == "n2"

    def test_negative_penalty_rejected(self, world):
        broker, registry = world
        with pytest.raises(ValueError):
            GridScheduler(broker, registry, staleness_penalty=-1.0)


class TestCapabilityPolicy:
    def test_higher_mips_wins(self, world):
        broker, registry = world
        registry.register("phone", DeviceType.CELL_PHONE)
        broker.receive_update(lu("phone", 10.0))
        scheduler = GridScheduler(
            broker, registry, policy=SchedulingPolicy.CAPABILITY
        )
        job = Job.uniform(1, 100.0)
        scheduler.schedule(job, now=0.0)
        assert job.tasks[0].assigned_to != "phone"


class TestExecution:
    def test_schedule_assigns_up_to_capacity(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry)
        job = Job.uniform(5, 100.0)
        assigned = scheduler.schedule(job, now=0.0)
        assert assigned == 3
        assert len(job.pending_tasks()) == 2

    def test_busy_nodes_not_double_booked(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry)
        job = Job.uniform(3, 1e6)  # long tasks
        scheduler.schedule(job, now=0.0)
        more = scheduler.schedule(Job.uniform(1, 100.0), now=1.0)
        assert more == 0

    def test_advance_completes(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry)
        job = Job.uniform(3, 100.0)  # 100 MI / 2000 MIPS = 0.05 s
        scheduler.schedule(job, now=0.0)
        done = scheduler.advance(now=1.0)
        assert done == 3
        assert job.completion_fraction() == 1.0
        assert scheduler.tasks_completed == 3

    def test_run_job_to_completion(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry)
        job = Job.uniform(7, 2000.0)  # 1 s each on a laptop; 3 nodes
        makespan = scheduler.run_job(job, step=1.0)
        assert job.completion_fraction() == 1.0
        assert makespan >= 2.0  # needs at least three waves

    def test_run_job_timeout(self, world):
        broker, registry = world
        for node in registry.node_ids():
            registry.set_battery(node, 0.0)
        scheduler = GridScheduler(broker, registry)
        with pytest.raises(RuntimeError, match="max_time"):
            scheduler.run_job(Job.uniform(1, 100.0), max_time=5.0)

    def test_fail_node_requeues(self, world):
        broker, registry = world
        scheduler = GridScheduler(broker, registry)
        job = Job.uniform(3, 1e6)
        scheduler.schedule(job, now=0.0)
        lost = scheduler.fail_node(job.tasks[0].assigned_to)
        assert lost == 1
        assert len(job.pending_tasks()) == 1
        assert all(t.state is not TaskState.FAILED for t in job.tasks)
