"""Tests for the broker's graceful degradation under silence and outages."""

import pytest

from repro.broker import BrokerConfig, GridBroker, RecordSource
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.telemetry import Severity, Telemetry, TelemetryConfig


def lu(node="n", t=0.0, x=0.0, vx=0.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(vx, 0.0),
        region_id="R1",
    )


def degraded_broker(max_age=5.0, quarantine=20.0, telemetry=None):
    return GridBroker(
        BrokerConfig(
            max_extrapolation_age=max_age,
            quarantine_age=quarantine,
        ),
        telemetry=telemetry,
    )


class TestConfigValidation:
    def test_defaults_keep_degradation_off(self):
        broker = GridBroker()
        assert not broker._degraded_mode

    def test_negative_ages_rejected(self):
        with pytest.raises(ValueError):
            BrokerConfig(max_extrapolation_age=-1.0)
        with pytest.raises(ValueError):
            BrokerConfig(quarantine_age=0.0)

    def test_quarantine_must_cover_extrapolation(self):
        with pytest.raises(ValueError):
            BrokerConfig(max_extrapolation_age=10.0, quarantine_age=5.0)

    def test_either_knob_alone_enables_degraded_mode(self):
        assert GridBroker(
            BrokerConfig(max_extrapolation_age=5.0)
        )._degraded_mode
        assert GridBroker(BrokerConfig(quarantine_age=5.0))._degraded_mode


class TestExtrapolationDecay:
    def test_decays_to_last_known_fix(self):
        broker = degraded_broker(max_age=3.0, quarantine=100.0)
        # A node moving at 2 m/s, then silence.
        broker.receive_update(lu(t=0.0, x=0.0, vx=2.0))
        broker.receive_update(lu(t=1.0, x=2.0, vx=2.0))
        last_fix = Vec2(2.0, 0.0)
        # Within the budget the tracker still extrapolates.
        near = broker.believed_position("n", now=3.0)
        assert near is not None and near.x > last_fix.x
        # Past the budget the belief anchors to the last received fix.
        far = broker.believed_position("n", now=50.0)
        assert far == last_fix

    def test_unbounded_broker_diverges_without_the_knob(self):
        plain = GridBroker()
        bounded = degraded_broker(max_age=3.0, quarantine=1000.0)
        for broker in (plain, bounded):
            broker.receive_update(lu(t=0.0, x=0.0, vx=2.0))
            broker.receive_update(lu(t=1.0, x=2.0, vx=2.0))
        now = 500.0
        runaway = plain.believed_position("n", now)
        anchored = bounded.believed_position("n", now)
        truth = Vec2(2.0, 0.0)  # say the node actually stopped
        assert runaway.distance_to(truth) > 100.0
        assert anchored.distance_to(truth) == 0.0

    def test_tick_stores_decayed_estimates(self):
        broker = degraded_broker(max_age=2.0, quarantine=100.0)
        broker.receive_update(lu(t=0.0, x=0.0, vx=5.0))
        broker.tick(0.5)  # the LU's own interval: nothing to estimate
        broker.tick(10.0)
        record = broker.location_db.latest("n")
        assert record.source is RecordSource.ESTIMATED
        assert record.position == Vec2(0.0, 0.0)  # anchored, not x=50


class TestQuarantine:
    def test_long_silent_node_quarantined(self):
        telemetry = Telemetry(TelemetryConfig(enabled=True))
        broker = degraded_broker(max_age=2.0, quarantine=5.0, telemetry=telemetry)
        broker.receive_update(lu(t=0.0))
        broker.tick(1.0)
        broker.tick(6.0)
        assert broker.is_quarantined("n")
        assert broker.quarantined_nodes() == ["n"]
        assert broker.quarantines == 1
        assert broker.believed_position("n", now=6.0) is None
        warnings = [
            e
            for e in telemetry.events.records()
            if e.severity is Severity.WARNING and "quarantined" in e.message
        ]
        assert len(warnings) == 1

    def test_quarantine_counted_once(self):
        broker = degraded_broker(max_age=2.0, quarantine=5.0)
        broker.receive_update(lu(t=0.0))
        broker.tick(6.0)
        broker.tick(7.0)
        broker.tick(8.0)
        assert broker.quarantines == 1

    def test_quarantined_node_gets_no_estimates(self):
        broker = degraded_broker(max_age=2.0, quarantine=5.0)
        broker.receive_update(lu(t=0.0))
        broker.tick(1.0)
        stored_before = broker.estimates_made
        broker.tick(6.0)
        assert broker.estimates_made == stored_before

    def test_aged_but_unticked_node_also_hidden(self):
        # believed_position applies the quarantine age even before a tick
        # formally quarantines the node.
        broker = degraded_broker(max_age=2.0, quarantine=5.0)
        broker.receive_update(lu(t=0.0))
        assert broker.believed_position("n", now=10.0) is None


class TestResync:
    def test_lu_lifts_quarantine_and_resets_tracker(self):
        broker = degraded_broker(max_age=2.0, quarantine=5.0)
        broker.receive_update(lu(t=0.0, x=0.0, vx=9.0))
        broker.tick(1.0)
        broker.tick(6.0)
        assert broker.is_quarantined("n")
        broker.receive_update(lu(t=10.0, x=42.0, vx=0.0))
        assert not broker.is_quarantined("n")
        assert broker.resyncs == 1
        # Fresh tracker: the pre-outage velocity belief is gone.
        assert broker.believed_position("n", now=10.0) == Vec2(42.0, 0.0)

    def test_stale_lu_dropped_not_crashing(self):
        broker = degraded_broker()
        broker.receive_update(lu(t=5.0, x=5.0))
        broker.receive_update(lu(t=3.0, x=3.0))  # late retransmit
        assert broker.stale_lus_dropped == 1
        assert broker.updates_received == 2
        assert broker.location_db.latest("n").time == 5.0

    def test_stale_lu_raises_without_degraded_mode(self):
        broker = GridBroker()
        broker.receive_update(lu(t=5.0))
        with pytest.raises(ValueError):
            broker.receive_update(lu(t=3.0))

    def test_post_outage_burst_keeps_db_time_monotonic(self):
        broker = degraded_broker(max_age=2.0, quarantine=50.0)
        broker.receive_update(lu(t=0.0, x=0.0))
        broker.tick(1.0)
        broker.tick(2.0)  # stores an estimate at t=2
        # An LU older than the latest (estimated) DB record still feeds
        # the tracker but must not rewind the DB.
        broker.receive_update(lu(t=1.5, x=1.0))
        assert broker.location_db.latest("n").time == 2.0
        assert broker.believed_position("n", now=1.5) == Vec2(1.0, 0.0)

    def test_resync_burst_after_quarantine(self):
        """A reconnecting node's buffered LUs all land safely."""
        broker = degraded_broker(max_age=2.0, quarantine=5.0)
        broker.receive_update(lu(t=0.0, x=0.0))
        broker.tick(1.0)
        broker.tick(6.0)
        for i, t in enumerate((10.0, 10.1, 10.2)):
            broker.receive_update(lu(t=t, x=float(i)))
        assert broker.resyncs == 1
        assert not broker.is_quarantined("n")
        assert broker.believed_position("n", now=10.2) is not None
