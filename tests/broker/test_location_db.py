"""Tests for the broker's location database."""

import pytest

from repro.broker import LocationDB, LocationRecord, RecordSource
from repro.geometry import Vec2


def record(node="n", t=0.0, x=0.0, source=RecordSource.RECEIVED):
    return LocationRecord(node_id=node, time=t, position=Vec2(x, 0.0), source=source)


class TestStore:
    def test_store_and_latest(self):
        db = LocationDB()
        db.store(record(t=1.0, x=5.0))
        latest = db.latest("n")
        assert latest is not None and latest.position == Vec2(5, 0)

    def test_latest_unknown_is_none(self):
        assert LocationDB().latest("ghost") is None

    def test_newer_replaces(self):
        db = LocationDB()
        db.store(record(t=1.0, x=5.0))
        db.store(record(t=2.0, x=7.0))
        assert db.position_of("n") == Vec2(7, 0)

    def test_stale_record_rejected(self):
        db = LocationDB()
        db.store(record(t=2.0))
        with pytest.raises(ValueError, match="older"):
            db.store(record(t=1.0))

    def test_equal_time_allowed(self):
        db = LocationDB()
        db.store(record(t=1.0, x=1.0))
        db.store(record(t=1.0, x=2.0))
        assert db.position_of("n") == Vec2(2, 0)

    def test_membership(self):
        db = LocationDB()
        db.store(record())
        assert "n" in db
        assert "ghost" not in db
        assert len(db) == 1
        assert db.node_ids() == ["n"]


class TestHistory:
    def test_history_ordered(self):
        db = LocationDB()
        for t in range(5):
            db.store(record(t=float(t), x=float(t)))
        times = [r.time for r in db.history("n")]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_history_bounded(self):
        db = LocationDB(history_length=3)
        for t in range(10):
            db.store(record(t=float(t)))
        assert len(db.history("n")) == 3

    def test_invalid_history_length(self):
        with pytest.raises(ValueError):
            LocationDB(history_length=0)

    def test_history_unknown_empty(self):
        assert LocationDB().history("ghost") == []


class TestOutOfOrderDelivery:
    """DB-time monotonicity under the reordered/duplicate streams the
    serving replay path can produce (drains can reorder across shards)."""

    def test_out_of_order_store_rejected_history_stays_sorted(self):
        db = LocationDB()
        db.store(record(t=1.0, x=1.0))
        db.store(record(t=3.0, x=3.0))
        with pytest.raises(ValueError, match="older"):
            db.store(record(t=2.0, x=2.0))
        times = [r.time for r in db.history("n")]
        assert times == sorted(times) == [1.0, 3.0]

    def test_duplicate_time_redelivery_keeps_monotonicity(self):
        # Equal-time re-store is allowed (last-writer-wins), so a
        # duplicate delivery can never break the ordering invariant.
        db = LocationDB()
        db.store(record(t=1.0, x=1.0))
        db.store(record(t=1.0, x=1.0))
        times = [r.time for r in db.history("n")]
        assert times == sorted(times)
        latest = db.latest("n")
        assert latest is not None and latest.time == 1.0

    def test_estimate_then_older_real_fix_needs_skip_db(self):
        """The raw DB rejects the PR 4 ``skip_db`` case; the degraded
        broker (and the serving store built on it) must skip the write."""
        from repro.broker.broker import BrokerConfig, GridBroker

        db = LocationDB()
        db.store(record(t=4.0, source=RecordSource.ESTIMATED))
        with pytest.raises(ValueError, match="older"):
            db.store(record(t=3.0, source=RecordSource.RECEIVED))

        # The degraded broker's skip_db path handles the same sequence:
        # the late real fix feeds the tracker but leaves the DB alone.
        from repro.geometry import Vec2
        from repro.network.messages import LocationUpdate

        broker = GridBroker(
            BrokerConfig(max_extrapolation_age=10.0, quarantine_age=30.0)
        )
        broker.receive_update(
            LocationUpdate(
                sender="n", timestamp=1.0, seq=1, node_id="n",
                position=Vec2(0.0, 0.0), velocity=Vec2(1.0, 0.0),
            )
        )
        broker.tick(2.0)
        broker.tick(4.0)  # stores an ESTIMATED record at t=4
        broker.receive_update(
            LocationUpdate(
                sender="n", timestamp=3.0, seq=2, node_id="n",
                position=Vec2(3.0, 0.0), velocity=Vec2(1.0, 0.0),
            )
        )
        history = broker.location_db.history("n")
        assert [r.time for r in history] == sorted(r.time for r in history)
        latest = broker.location_db.latest("n")
        assert latest is not None and latest.source is RecordSource.ESTIMATED
        # ... while the tracker did absorb the real fix:
        tracker = broker.tracker("n")
        assert tracker is not None and tracker.last_fix is not None
        assert tracker.last_fix[0] == 3.0


class TestProvenance:
    def test_source_counted(self):
        db = LocationDB()
        db.store(record(t=0.0, source=RecordSource.RECEIVED))
        db.store(record(t=1.0, source=RecordSource.ESTIMATED))
        db.store(record(t=2.0, source=RecordSource.ESTIMATED))
        assert db.stored_received == 1
        assert db.stored_estimated == 2
        assert db.estimate_fraction == pytest.approx(2 / 3)

    def test_is_estimate_flag(self):
        est = record(source=RecordSource.ESTIMATED)
        assert est.is_estimate
        assert not record().is_estimate

    def test_estimate_fraction_empty(self):
        assert LocationDB().estimate_fraction == 0.0
