"""Tests for jobs and task lifecycle."""

import pytest

from repro.broker import Job, JobState, Task, TaskState


class TestTask:
    def test_duration(self):
        assert Task(1000.0).duration_on(500.0) == 2.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Task(0.0)

    def test_lifecycle(self):
        task = Task(100.0)
        task.assign("n", now=1.0)
        assert task.state is TaskState.ASSIGNED
        assert task.assigned_to == "n"
        task.complete(now=5.0)
        assert task.state is TaskState.COMPLETED
        assert task.completed_at == 5.0

    def test_double_assign_rejected(self):
        task = Task(100.0)
        task.assign("n", 0.0)
        with pytest.raises(ValueError):
            task.assign("m", 1.0)

    def test_complete_requires_assigned(self):
        with pytest.raises(ValueError):
            Task(100.0).complete(1.0)

    def test_fail_and_reset(self):
        task = Task(100.0)
        task.assign("n", 0.0)
        task.fail()
        assert task.state is TaskState.FAILED
        task.reset()
        assert task.state is TaskState.PENDING
        assert task.assigned_to is None

    def test_reset_requires_failed(self):
        with pytest.raises(ValueError):
            Task(100.0).reset()

    def test_unique_ids(self):
        assert Task(1.0).task_id != Task(1.0).task_id


class TestJob:
    def test_uniform(self):
        job = Job.uniform(5, 100.0)
        assert len(job.tasks) == 5
        assert all(t.mega_instructions == 100.0 for t in job.tasks)

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            Job.uniform(0, 100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Job(tasks=[])

    def test_state_transitions(self):
        job = Job.uniform(2, 100.0)
        assert job.state is JobState.RUNNING
        for task in job.tasks:
            task.assign("n", 0.0)
            task.complete(1.0)
        assert job.state is JobState.COMPLETED

    def test_pending_and_assigned_views(self):
        job = Job.uniform(3, 100.0)
        job.tasks[0].assign("n", 0.0)
        assert len(job.pending_tasks()) == 2
        assert len(job.assigned_tasks()) == 1

    def test_completion_fraction(self):
        job = Job.uniform(4, 100.0)
        job.tasks[0].assign("n", 0.0)
        job.tasks[0].complete(1.0)
        assert job.completion_fraction() == 0.25

    def test_makespan_running_is_none(self):
        assert Job.uniform(1, 100.0).makespan() is None

    def test_makespan(self):
        job = Job.uniform(2, 100.0, submitted_at=10.0)
        for i, task in enumerate(job.tasks):
            task.assign("n", 10.0)
            task.complete(12.0 + i)
        assert job.makespan() == 3.0
