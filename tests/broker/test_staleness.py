"""Tests for the broker's staleness API."""

import pytest

from repro.broker import GridBroker
from repro.estimation import BrownTracker, MapMatchedTracker
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate


def lu(node="n", t=0.0, x=0.0, region="R1"):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(1.0, 0.0),
        region_id=region,
    )


class TestFixAge:
    def test_unknown_node_none(self):
        assert GridBroker().fix_age("ghost", now=10.0) is None

    def test_age_measured_from_last_received(self):
        broker = GridBroker()
        broker.receive_update(lu(t=5.0))
        assert broker.fix_age("n", now=9.0) == 4.0

    def test_estimates_do_not_refresh_age(self):
        broker = GridBroker()
        broker.receive_update(lu(t=5.0))
        broker.tick(5.0)
        broker.tick(8.0)  # stores an estimated record at t=8
        assert broker.fix_age("n", now=9.0) == 4.0

    def test_new_lu_resets_age(self):
        broker = GridBroker()
        broker.receive_update(lu(t=5.0))
        broker.receive_update(lu(t=9.0, x=4.0))
        assert broker.fix_age("n", now=9.0) == 0.0

    def test_clock_skew_clamped(self):
        broker = GridBroker()
        broker.receive_update(lu(t=5.0))
        assert broker.fix_age("n", now=4.0) == 0.0


class TestStaleNodes:
    def test_partition_by_age(self):
        broker = GridBroker()
        broker.receive_update(lu(node="fresh", t=9.0))
        broker.receive_update(lu(node="stale", t=1.0))
        assert broker.stale_nodes(10.0, max_age=5.0) == ["stale"]

    def test_empty_broker(self):
        assert GridBroker().stale_nodes(10.0, max_age=1.0) == []


class TestMapMatchedIntegration:
    def test_broker_feeds_region_to_map_matched_tracker(self, campus):
        broker = GridBroker(
            tracker_factory=lambda: MapMatchedTracker(BrownTracker(), campus)
        )
        # Node on R1 (y = 250): the map-matched prediction snaps to it.
        for t in range(6):
            broker.receive_update(
                LocationUpdate(
                    sender="n",
                    timestamp=float(t),
                    node_id="n",
                    position=Vec2(200.0 + 2.0 * t, 250.0),
                    velocity=Vec2(2.0, 0.3),
                    region_id="R1",
                )
            )
        believed = broker.believed_position("n", now=10.0)
        assert believed is not None
        assert believed.y == pytest.approx(250.0, abs=1e-6)
