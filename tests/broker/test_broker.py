"""Tests for the grid broker's LU handling and estimation sweep."""

import pytest

from repro.broker import BrokerConfig, GridBroker, RecordSource
from repro.estimation import BrownTracker, LastKnownTracker
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate


def lu(node="n", t=0.0, x=0.0, vx=0.0, dth=0.0):
    return LocationUpdate(
        sender=node,
        timestamp=t,
        node_id=node,
        position=Vec2(x, 0.0),
        velocity=Vec2(vx, 0.0),
        region_id="R1",
        dth=dth,
    )


class TestReceive:
    def test_received_lu_stored_as_received(self):
        broker = GridBroker()
        broker.receive_update(lu(t=1.0, x=5.0))
        latest = broker.location_db.latest("n")
        assert latest.source is RecordSource.RECEIVED
        assert broker.updates_received == 1

    def test_tracker_created_per_node(self):
        broker = GridBroker()
        broker.receive_update(lu(node="a"))
        broker.receive_update(lu(node="b"))
        assert set(broker.known_nodes()) == {"a", "b"}
        assert broker.tracker("a") is not broker.tracker("b")

    def test_le_config_selects_brown(self):
        broker = GridBroker(BrokerConfig(use_location_estimator=True))
        broker.receive_update(lu())
        assert isinstance(broker.tracker("n"), BrownTracker)

    def test_no_le_config_selects_last_known(self):
        broker = GridBroker(BrokerConfig(use_location_estimator=False))
        broker.receive_update(lu())
        assert isinstance(broker.tracker("n"), LastKnownTracker)

    def test_custom_tracker_factory(self):
        broker = GridBroker(tracker_factory=LastKnownTracker)
        broker.receive_update(lu())
        assert isinstance(broker.tracker("n"), LastKnownTracker)

    def test_named_estimator_selection(self):
        from repro.estimation import KalmanTracker

        broker = GridBroker(BrokerConfig(estimator="kalman"))
        broker.receive_update(lu())
        assert isinstance(broker.tracker("n"), KalmanTracker)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            BrokerConfig(estimator="oracle")

    @pytest.mark.parametrize(
        "name", ["brown", "simple", "holt", "velocity", "kalman", "arima"]
    )
    def test_every_named_estimator_works(self, name):
        broker = GridBroker(BrokerConfig(estimator=name))
        for t in range(8):
            broker.receive_update(lu(t=float(t), x=2.0 * t, vx=2.0))
        broker.tick(8.0)
        believed = broker.believed_position("n", now=9.0)
        assert believed is not None


class TestTick:
    def test_silent_node_estimated(self):
        broker = GridBroker()
        for t in range(5):
            broker.receive_update(lu(t=float(t), x=2.0 * t, vx=2.0))
        broker.tick(4.0)  # node updated this interval: no estimate yet
        estimated = broker.tick(6.0)
        assert estimated == 1
        latest = broker.location_db.latest("n")
        assert latest.source is RecordSource.ESTIMATED
        # Dead-reckoned forward from the last fix at x=8.
        assert latest.position.x > 8.0

    def test_updated_node_not_estimated(self):
        broker = GridBroker()
        broker.receive_update(lu(t=1.0))
        assert broker.tick(1.0) == 0

    def test_estimation_resumes_next_tick(self):
        broker = GridBroker()
        broker.receive_update(lu(t=1.0))
        broker.tick(1.0)
        assert broker.tick(2.0) == 1
        assert broker.estimates_made == 1

    def test_unknown_nodes_ignored(self):
        broker = GridBroker()
        assert broker.tick(1.0) == 0

    def test_estimates_counted(self):
        broker = GridBroker()
        broker.receive_update(lu(node="a", t=0.0))
        broker.receive_update(lu(node="b", t=0.0))
        broker.tick(0.0)  # both freshly updated
        broker.tick(1.0)  # both silent now
        assert broker.estimates_made == 2


class TestBelievedPosition:
    def test_unknown_node_none(self):
        assert GridBroker().believed_position("ghost") is None

    def test_prefers_live_prediction(self):
        broker = GridBroker()
        for t in range(5):
            broker.receive_update(lu(t=float(t), x=2.0 * t, vx=2.0))
        believed = broker.believed_position("n", now=6.0)
        assert believed is not None and believed.x > 8.0

    def test_without_now_uses_db(self):
        broker = GridBroker()
        broker.receive_update(lu(t=0.0, x=3.0))
        assert broker.believed_position("n") == Vec2(3, 0)

    def test_dth_cap_respected_in_estimates(self):
        """Silence implies the node is within DTH of the fix; estimates
        must respect that bound."""
        broker = GridBroker()
        for t in range(5):
            broker.receive_update(lu(t=float(t), x=5.0 * t, vx=5.0, dth=2.0))
        believed = broker.believed_position("n", now=20.0)
        last_fix = Vec2(20.0, 0.0)
        assert believed.distance_to(last_fix) <= 2.0 + 1e-9


class TestConfig:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            BrokerConfig(report_interval=0.0)
