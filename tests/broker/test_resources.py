"""Tests for the resource registry and device profiles."""

import pytest

from repro.broker import ResourceRegistry, device_profile
from repro.mobility.states import DeviceType


class TestProfiles:
    def test_all_devices_have_profiles(self):
        for device in DeviceType:
            profile = device_profile(device)
            assert profile.compute_mips > 0
            assert profile.battery_wh > 0

    def test_laptop_beats_phone(self):
        laptop = device_profile(DeviceType.LAPTOP)
        phone = device_profile(DeviceType.CELL_PHONE)
        assert laptop.compute_mips > phone.compute_mips
        assert laptop.battery_wh > phone.battery_wh


@pytest.fixture
def registry():
    reg = ResourceRegistry()
    reg.register("phone", DeviceType.CELL_PHONE)
    reg.register("laptop", DeviceType.LAPTOP)
    return reg


class TestRegistry:
    def test_register_idempotent(self, registry):
        registry.drain("phone", 1.0)
        before = registry.battery("phone")
        registry.register("phone", DeviceType.CELL_PHONE)
        assert registry.battery("phone") == before

    def test_unknown_node_raises(self, registry):
        with pytest.raises(KeyError):
            registry.battery("ghost")

    def test_node_ids(self, registry):
        assert set(registry.node_ids()) == {"phone", "laptop"}

    def test_is_registered(self, registry):
        assert registry.is_registered("phone")
        assert not registry.is_registered("ghost")


class TestBattery:
    def test_starts_full(self, registry):
        assert registry.battery("phone") == 1.0

    def test_drain_proportional_to_capacity(self, registry):
        registry.drain("phone", 0.5)  # 0.5 Wh of a 5 Wh battery
        assert registry.battery("phone") == pytest.approx(0.9)

    def test_drain_floors_at_zero(self, registry):
        registry.drain("phone", 999.0)
        assert registry.battery("phone") == 0.0

    def test_transmission_drain(self, registry):
        before = registry.battery("phone")
        registry.drain_for_transmission("phone", messages=100)
        after = registry.battery("phone")
        assert after < before

    def test_laptop_drains_slower_per_wh(self, registry):
        registry.drain("phone", 1.0)
        registry.drain("laptop", 1.0)
        assert registry.battery("laptop") > registry.battery("phone")

    def test_set_battery_validates(self, registry):
        with pytest.raises(ValueError):
            registry.set_battery("phone", 1.5)
        registry.set_battery("phone", 0.2)
        assert registry.battery("phone") == 0.2


class TestAvailability:
    def test_available_by_default(self, registry):
        assert registry.is_available("phone", now=0.0)

    def test_low_battery_unavailable(self, registry):
        registry.set_battery("phone", 0.05)
        assert not registry.is_available("phone", now=0.0)

    def test_busy_until(self, registry):
        registry.mark_busy("phone", until=10.0)
        assert not registry.is_available("phone", now=5.0)
        assert registry.is_available("phone", now=10.0)

    def test_completion_clears_busy(self, registry):
        registry.mark_busy("phone", until=10.0)
        registry.mark_completed("phone")
        assert registry.is_available("phone", now=0.0)
        assert registry.tasks_completed("phone") == 1
