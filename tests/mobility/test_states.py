"""Tests for the mobility taxonomy and velocity bands."""

import pytest

from repro.mobility.states import (
    BUILDING_LINEAR_BAND,
    BUILDING_RANDOM_BAND,
    BUILDING_STOP_BAND,
    ROAD_HUMAN_BAND,
    ROAD_VEHICLE_BAND,
    MobilityState,
    VelocityBand,
)


class TestVelocityBand:
    def test_mean(self):
        assert VelocityBand(1.0, 3.0).mean == 2.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            VelocityBand(2.0, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VelocityBand(-1.0, 1.0)

    def test_sample_within_band(self, rng):
        band = VelocityBand(2.0, 5.0)
        for _ in range(200):
            assert band.contains(band.sample(rng))

    def test_degenerate_band_sample(self, rng):
        band = VelocityBand(0.0, 0.0)
        assert band.sample(rng) == 0.0

    def test_clamp(self):
        band = VelocityBand(1.0, 2.0)
        assert band.clamp(0.5) == 1.0
        assert band.clamp(3.0) == 2.0
        assert band.clamp(1.5) == 1.5

    def test_contains_tolerance(self):
        band = VelocityBand(1.0, 2.0)
        assert band.contains(1.0 - 1e-12)
        assert not band.contains(0.9)


class TestPaperBands:
    """Velocity ranges straight from Table 1."""

    def test_road_human(self):
        assert (ROAD_HUMAN_BAND.low, ROAD_HUMAN_BAND.high) == (1.0, 4.0)

    def test_road_vehicle(self):
        assert (ROAD_VEHICLE_BAND.low, ROAD_VEHICLE_BAND.high) == (4.0, 10.0)

    def test_building_stop_is_zero(self):
        assert BUILDING_STOP_BAND.high == 0.0

    def test_building_random(self):
        assert (BUILDING_RANDOM_BAND.low, BUILDING_RANDOM_BAND.high) == (0.0, 1.0)

    def test_building_linear_max(self):
        assert BUILDING_LINEAR_BAND.high == 1.5


class TestMobilityState:
    def test_paper_abbreviations(self):
        assert MobilityState.STOP.value == "SS"
        assert MobilityState.RANDOM.value == "RMS"
        assert MobilityState.LINEAR.value == "LMS"
