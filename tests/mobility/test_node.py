"""Tests for MobileNode kinematics and history."""

import pytest

from repro.geometry import Path, Vec2
from repro.mobility import MobileNode, MobilityState
from repro.mobility.models import LinearPathModel, ShuttlePlanner, StopModel
from repro.mobility.states import VelocityBand


def walker(rng, speed=2.0):
    path = Path([Vec2(0, 0), Vec2(100, 0)])
    model = LinearPathModel(
        Vec2(0, 0),
        ShuttlePlanner(path),
        VelocityBand(speed, speed),
        rng,
        speed_jitter=0.0,
    )
    return MobileNode("walker", model, true_state=MobilityState.LINEAR)


class TestValidation:
    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            MobileNode("", StopModel(Vec2(0, 0)))

    def test_tiny_history_rejected(self):
        with pytest.raises(ValueError):
            MobileNode("n", StopModel(Vec2(0, 0)), history_length=1)

    def test_invalid_dt(self):
        node = MobileNode("n", StopModel(Vec2(0, 0)))
        with pytest.raises(ValueError):
            node.advance(0.0)


class TestKinematics:
    def test_velocity_from_displacement(self, rng):
        node = walker(rng)
        sample = node.advance(1.0)
        assert sample.speed == pytest.approx(2.0, abs=1e-9)
        assert node.speed == pytest.approx(2.0, abs=1e-9)
        assert node.direction == pytest.approx(0.0, abs=1e-9)

    def test_stationary_velocity_zero(self):
        node = MobileNode("n", StopModel(Vec2(5, 5)))
        sample = node.advance(1.0)
        assert sample.speed == 0.0
        assert sample.position == Vec2(5, 5)

    def test_time_accumulates(self, rng):
        node = walker(rng)
        node.advance(1.0)
        node.advance(0.5)
        assert node.time == pytest.approx(1.5)

    def test_replace_model(self, rng):
        node = walker(rng)
        node.advance(1.0)
        node.replace_model(StopModel(node.position))
        before = node.position
        node.advance(1.0)
        assert node.position == before
        assert node.speed == 0.0


class TestHistory:
    def test_initial_sample_present(self, rng):
        node = walker(rng)
        assert len(node.history) == 1
        assert node.latest().time == 0.0

    def test_history_grows_then_caps(self, rng):
        node = MobileNode(
            "n", StopModel(Vec2(0, 0)), history_length=4
        )
        for _ in range(10):
            node.advance(1.0)
        assert len(node.history) == 4

    def test_history_ordered(self, rng):
        node = walker(rng)
        for _ in range(5):
            node.advance(1.0)
        times = [s.time for s in node.history]
        assert times == sorted(times)

    def test_latest_matches_state(self, rng):
        node = walker(rng)
        node.advance(1.0)
        latest = node.latest()
        assert latest.position == node.position
        assert latest.velocity == node.velocity

    def test_motion_sample_direction(self, rng):
        node = walker(rng)
        sample = node.advance(1.0)
        assert sample.direction == sample.velocity.angle()
