"""Tests for the SS/RMS/LMS mobility models."""

import pytest

from repro.geometry import Path, Rect, Vec2
from repro.mobility.models import (
    LinearPathModel,
    RandomTripPlanner,
    RandomWalkModel,
    ShuttlePlanner,
    StopModel,
)
from repro.mobility.states import VelocityBand


class TestStopModel:
    def test_never_moves(self):
        model = StopModel(Vec2(3, 4))
        for _ in range(50):
            assert model.step(1.0) == Vec2(3, 4)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            StopModel(Vec2(0, 0)).step(0.0)


class TestRandomWalkModel:
    def test_stays_in_area(self, rng):
        area = Rect(0, 0, 30, 30)
        model = RandomWalkModel(Vec2(15, 15), area, VelocityBand(0.0, 1.0), rng)
        for _ in range(500):
            assert area.contains(model.step(1.0), tol=1e-9)

    def test_moves_at_all(self, rng):
        area = Rect(0, 0, 30, 30)
        model = RandomWalkModel(
            Vec2(15, 15), area, VelocityBand(0.0, 1.0), rng, pause_probability=0.0
        )
        total = 0.0
        for _ in range(100):
            prev = model.position
            total += model.step(1.0).distance_to(prev)
        assert total > 1.0

    def test_respects_speed_band(self, rng):
        area = Rect(0, 0, 100, 100)
        band = VelocityBand(0.0, 1.0)
        model = RandomWalkModel(Vec2(50, 50), area, band, rng, pause_probability=0.0)
        for _ in range(300):
            prev = model.position
            moved = model.step(1.0).distance_to(prev)
            assert moved <= band.high + 1e-6

    def test_pauses_happen(self, rng):
        area = Rect(0, 0, 30, 30)
        model = RandomWalkModel(
            Vec2(15, 15), area, VelocityBand(0.5, 1.0), rng, pause_probability=0.9
        )
        still = 0
        for _ in range(200):
            prev = model.position
            if model.step(1.0).distance_to(prev) < 1e-9:
                still += 1
        assert still > 20

    def test_position_clamped_into_area(self, rng):
        area = Rect(0, 0, 10, 10)
        model = RandomWalkModel(Vec2(99, 99), area, VelocityBand(0, 1), rng)
        assert area.contains(model.position)

    def test_invalid_pause_probability(self, rng):
        with pytest.raises(ValueError):
            RandomWalkModel(
                Vec2(0, 0), Rect(0, 0, 1, 1), VelocityBand(0, 1), rng,
                pause_probability=1.5,
            )


class TestShuttlePlanner:
    def test_alternates_direction(self):
        path = Path([Vec2(0, 0), Vec2(10, 0)])
        planner = ShuttlePlanner(path)
        first = planner.next_path(Vec2(0, 0))
        second = planner.next_path(Vec2(10, 0))
        assert first.start == Vec2(0, 0)
        assert second.start == Vec2(10, 0)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ShuttlePlanner(Path([Vec2(0, 0)]))


class TestRandomTripPlanner:
    def test_requires_candidates(self, rng):
        with pytest.raises(ValueError):
            RandomTripPlanner([], rng)

    def test_bridges_from_current_position(self, rng):
        corridor = Path([Vec2(10, 0), Vec2(20, 0)])
        planner = RandomTripPlanner([corridor], rng)
        path = planner.next_path(Vec2(0, 0))
        assert path.start == Vec2(0, 0)


class TestLinearPathModel:
    def make(self, rng, band=VelocityBand(1.0, 1.0), jitter=0.0):
        path = Path([Vec2(0, 0), Vec2(100, 0)])
        return LinearPathModel(
            Vec2(0, 0), ShuttlePlanner(path), band, rng, speed_jitter=jitter
        )

    def test_constant_speed_no_jitter(self, rng):
        model = self.make(rng)
        for _ in range(20):
            prev = model.position
            moved = model.step(1.0).distance_to(prev)
            assert moved == pytest.approx(1.0, abs=1e-9)

    def test_moves_along_path(self, rng):
        model = self.make(rng)
        model.step(10.0)
        assert model.position.is_close(Vec2(10, 0), tol=1e-9)

    def test_no_teleport_when_starting_mid_path(self, rng):
        """The planner's path starts elsewhere; the node must walk there."""
        path = Path([Vec2(0, 0), Vec2(100, 0)])
        model = LinearPathModel(
            Vec2(50, 0), ShuttlePlanner(path), VelocityBand(1, 1), rng,
            speed_jitter=0.0,
        )
        prev = model.position
        new = model.step(1.0)
        assert new.distance_to(prev) <= 1.0 + 1e-9

    def test_reverses_at_path_end(self, rng):
        model = self.make(rng)
        model.step(100.0)  # reach the end exactly
        assert model.position.is_close(Vec2(100, 0), tol=1e-6)
        model.step(10.0)  # now heading back
        assert model.position.x < 100.0

    def test_speed_within_band_with_jitter(self, rng):
        band = VelocityBand(2.0, 4.0)
        model = self.make(rng, band=band, jitter=0.3)
        for _ in range(100):
            prev = model.position
            moved = model.step(1.0).distance_to(prev)
            assert moved <= band.high + 1e-6

    def test_fractional_steps_accumulate(self, rng):
        model = self.make(rng)
        for _ in range(10):
            model.step(0.1)
        assert model.position.x == pytest.approx(1.0, abs=1e-6)

    def test_negative_jitter_rejected(self, rng):
        path = Path([Vec2(0, 0), Vec2(1, 0)])
        with pytest.raises(ValueError):
            LinearPathModel(
                Vec2(0, 0), ShuttlePlanner(path), VelocityBand(1, 1), rng,
                speed_jitter=-0.1,
            )

    def test_direction_is_along_path(self, rng):
        model = self.make(rng)
        prev = model.position
        new = model.step(1.0)
        angle = (new - prev).angle()
        assert angle == pytest.approx(0.0, abs=1e-9)
