"""Tests for the Table 1 population builder."""

from collections import Counter

import pytest

from repro.mobility import MobileNode, build_population, table1_spec
from repro.mobility.population import PopulationSpec
from repro.mobility.states import MobilityState, NodeKind
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def population(request):
    from repro.campus import default_campus

    return build_population(default_campus(), table1_spec(), RngRegistry(7))


class TestTable1Counts:
    def test_total_140(self, population):
        assert len(population) == 140

    def test_50_road_nodes(self, population):
        road = [n for n in population if n.home_region.startswith("R")]
        assert len(road) == 50

    def test_road_split_human_vehicle(self, population):
        road = [n for n in population if n.home_region.startswith("R")]
        kinds = Counter(n.kind for n in road)
        assert kinds[NodeKind.HUMAN] == 25
        assert kinds[NodeKind.VEHICLE] == 25

    def test_90_building_nodes(self, population):
        building = [n for n in population if n.home_region.startswith("B")]
        assert len(building) == 90

    def test_building_pattern_split(self, population):
        building = [n for n in population if n.home_region.startswith("B")]
        states = Counter(n.true_state for n in building)
        assert states[MobilityState.STOP] == 30
        assert states[MobilityState.RANDOM] == 30
        assert states[MobilityState.LINEAR] == 30

    def test_road_nodes_all_lms(self, population):
        road = [n for n in population if n.home_region.startswith("R")]
        assert all(n.true_state is MobilityState.LINEAR for n in road)

    def test_ten_nodes_per_road(self, population):
        per_region = Counter(
            n.home_region for n in population if n.home_region.startswith("R")
        )
        assert all(count == 10 for count in per_region.values())
        assert len(per_region) == 5

    def test_fifteen_per_building(self, population):
        per_region = Counter(
            n.home_region for n in population if n.home_region.startswith("B")
        )
        assert all(count == 15 for count in per_region.values())
        assert len(per_region) == 6

    def test_unique_ids(self, population):
        assert len({n.node_id for n in population}) == 140

    def test_nodes_start_in_home_region(self, population):
        from repro.campus import default_campus

        campus = default_campus()
        for node in population:
            region = campus.region(node.home_region)
            assert region.contains(node.position, tol=1e-6)


class TestDeterminism:
    def test_same_seed_same_population(self, campus):
        a = build_population(campus, table1_spec(), RngRegistry(9))
        b = build_population(campus, table1_spec(), RngRegistry(9))
        for na, nb in zip(a, b):
            assert na.node_id == nb.node_id
            assert na.position == nb.position

    def test_different_seed_different_positions(self, campus):
        a = build_population(campus, table1_spec(), RngRegistry(1))
        b = build_population(campus, table1_spec(), RngRegistry(2))
        assert any(na.position != nb.position for na, nb in zip(a, b))

    def test_trajectories_reproducible(self, campus):
        a = build_population(campus, table1_spec(), RngRegistry(9))
        b = build_population(campus, table1_spec(), RngRegistry(9))
        for _ in range(10):
            for na, nb in zip(a, b):
                assert na.advance(1.0).position == nb.advance(1.0).position


class TestSpec:
    def test_total_for(self):
        assert table1_spec().total_for(5, 6) == 140

    def test_scaled(self):
        spec = table1_spec().scaled(2)
        assert spec.total_for(5, 6) == 280

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            table1_spec().scaled(0)

    def test_custom_spec(self, campus):
        spec = PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=0,
            building_stop=1,
            building_random=0,
            building_linear=0,
        )
        nodes = build_population(campus, spec, RngRegistry(3))
        assert len(nodes) == 5 + 6

    def test_nodes_are_mobile_nodes(self, population):
        assert all(isinstance(n, MobileNode) for n in population)
