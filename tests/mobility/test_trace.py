"""Tests for trajectory traces."""

import pytest

from repro.geometry import Path, Vec2
from repro.mobility import MobileNode, TrajectoryTrace
from repro.mobility.models import LinearPathModel, ShuttlePlanner, StopModel
from repro.mobility.states import VelocityBand


@pytest.fixture
def traced_walker(rng):
    path = Path([Vec2(0, 0), Vec2(100, 0)])
    model = LinearPathModel(
        Vec2(0, 0), ShuttlePlanner(path), VelocityBand(2, 2), rng, speed_jitter=0.0
    )
    node = MobileNode("w", model)
    trace = TrajectoryTrace()
    trace.record(node)
    for _ in range(10):
        node.advance(1.0)
        trace.record(node)
    return node, trace


class TestRecording:
    def test_len_counts_samples(self, traced_walker):
        _, trace = traced_walker
        assert len(trace) == 11

    def test_node_ids(self, traced_walker):
        _, trace = traced_walker
        assert trace.node_ids() == ["w"]

    def test_samples_ordered(self, traced_walker):
        _, trace = traced_walker
        times = [s.time for s in trace.samples("w")]
        assert times == sorted(times)

    def test_positions_shape(self, traced_walker):
        _, trace = traced_walker
        assert trace.positions("w").shape == (11, 2)

    def test_unknown_node_empty(self):
        trace = TrajectoryTrace()
        assert trace.samples("ghost") == []
        assert trace.positions("ghost").size == 0


class TestStats:
    def test_total_distance(self, traced_walker):
        _, trace = traced_walker
        assert trace.total_distance("w") == pytest.approx(20.0, abs=1e-6)

    def test_mean_speed(self, traced_walker):
        _, trace = traced_walker
        # The initial sample has zero velocity; ten more at 2 m/s.
        assert trace.mean_speed("w") == pytest.approx(20.0 / 11.0, abs=1e-6)

    def test_mean_speed_untraced_zero(self):
        assert TrajectoryTrace().mean_speed("ghost") == 0.0

    def test_fleet_mean_speed(self, rng):
        trace = TrajectoryTrace()
        stopper = MobileNode("s", StopModel(Vec2(0, 0)))
        for _ in range(5):
            stopper.advance(1.0)
            trace.record(stopper)
        assert trace.fleet_mean_speed() == 0.0

    def test_fleet_mean_speed_empty(self):
        assert TrajectoryTrace().fleet_mean_speed() == 0.0

    def test_total_distance_single_sample(self):
        trace = TrajectoryTrace()
        node = MobileNode("n", StopModel(Vec2(0, 0)))
        trace.record(node)
        assert trace.total_distance("n") == 0.0
