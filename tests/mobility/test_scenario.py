"""Tests for itinerary-driven mobility (Tom's day)."""

import pytest

from repro.mobility import (
    Itinerary,
    ItineraryModel,
    MoveTo,
    Stay,
    Wander,
    tom_itinerary,
)
from repro.mobility.states import MobilityState


class TestStepValidation:
    def test_stay_requires_positive_duration(self):
        with pytest.raises(ValueError):
            Stay(0.0)

    def test_wander_requires_positive_duration(self):
        with pytest.raises(ValueError):
            Wander(0.0, "B4")

    def test_itinerary_requires_steps(self):
        with pytest.raises(ValueError):
            Itinerary("empty", "gateA", ())


class TestTomItinerary:
    def test_eleven_cases(self):
        tom = tom_itinerary()
        assert len(tom.steps) == 11
        assert tom.start_node == "gateB"

    def test_contains_all_three_patterns(self):
        tom = tom_itinerary()
        kinds = {type(s) for s in tom.steps}
        assert kinds == {MoveTo, Stay, Wander}

    def test_stationary_time_matches_paper(self):
        """Cases 2, 4, 6: 1 h + 2 h + 90 min of stop time."""
        tom = tom_itinerary()
        assert tom.total_stationary_time() == pytest.approx(
            3600 + 7200 + 5400
        )

    def test_compressed_shrinks_durations(self):
        full = tom_itinerary()
        small = tom_itinerary(compressed=True)
        assert small.total_stationary_time() < full.total_stationary_time()


class TestItineraryModel:
    @pytest.fixture
    def model(self, campus, rng):
        return ItineraryModel(campus, tom_itinerary(compressed=True), rng)

    def test_starts_at_gate_b(self, campus, model):
        assert model.position == campus.node_pos("gateB")

    def test_first_phase_is_walk_to_library(self, model):
        model.step(1.0)
        assert model.current_state is MobilityState.LINEAR

    def test_day_completes(self, campus, model):
        t = 0.0
        while not model.finished and t < 36000:
            model.step(1.0)
            t += 1.0
        assert model.finished

    def test_ends_near_gate_a(self, campus, model):
        """Tom's case (11) ends at gate A."""
        t = 0.0
        while not model.finished and t < 36000:
            model.step(1.0)
            t += 1.0
        assert model.position.distance_to(campus.node_pos("gateA")) < 1.0

    def test_visits_all_three_states(self, campus, model):
        seen = set()
        t = 0.0
        while not model.finished and t < 36000:
            model.step(1.0)
            seen.add(model.current_state)
            t += 1.0
        assert seen == {
            MobilityState.STOP,
            MobilityState.RANDOM,
            MobilityState.LINEAR,
        }

    def test_finished_model_stays_put(self, campus, model):
        t = 0.0
        while not model.finished and t < 36000:
            model.step(1.0)
            t += 1.0
        where = model.position
        model.step(5.0)
        assert model.position == where

    def test_stop_state_is_stationary(self, campus, rng):
        itinerary = Itinerary("sit", "gateA", (Stay(100.0),))
        model = ItineraryModel(campus, itinerary, rng)
        start = model.position
        for _ in range(10):
            model.step(1.0)
        assert model.position == start
        assert model.current_state is MobilityState.STOP

    def test_wander_stays_in_region(self, campus, rng):
        itinerary = Itinerary(
            "mill-about", "B4.door", (Wander(60.0, "B4"),)
        )
        model = ItineraryModel(campus, itinerary, rng)
        bounds = campus.region("B4").bounds
        for _ in range(60):
            model.step(1.0)
            assert bounds.contains(model.position, tol=1e-6)

    def test_deterministic_under_seed(self, campus, rng_registry):
        a = ItineraryModel(
            campus, tom_itinerary(compressed=True), rng_registry.stream("s1")
        )
        b = ItineraryModel(
            campus, tom_itinerary(compressed=True), rng_registry.stream("s1-copy")
        )
        # Different streams diverge...
        for _ in range(200):
            a.step(1.0)
            b.step(1.0)
        # ...but identical streams reproduce exactly.
        from repro.util.rng import RngRegistry

        c = ItineraryModel(
            campus, tom_itinerary(compressed=True), RngRegistry(42).stream("x")
        )
        d = ItineraryModel(
            campus, tom_itinerary(compressed=True), RngRegistry(42).stream("x")
        )
        for _ in range(200):
            assert c.step(1.0) == d.step(1.0)
