"""Tests for the classic mobility models (RWP, Gauss-Markov, Manhattan)."""

import math

import numpy as np
import pytest

from repro.geometry import Rect, Vec2
from repro.mobility import (
    GaussMarkovModel,
    ManhattanGridModel,
    RandomWaypointModel,
)
from repro.mobility.states import VelocityBand

AREA = Rect(0, 0, 200, 200)
BAND = VelocityBand(1.0, 3.0)


class TestRandomWaypoint:
    def test_stays_in_area(self, rng):
        model = RandomWaypointModel(Vec2(100, 100), AREA, BAND, rng)
        for _ in range(500):
            assert AREA.contains(model.step(1.0), tol=1e-9)

    def test_speed_bounded(self, rng):
        model = RandomWaypointModel(Vec2(100, 100), AREA, BAND, rng, max_pause=0.0)
        for _ in range(300):
            prev = model.position
            moved = model.step(1.0).distance_to(prev)
            assert moved <= BAND.high + 1e-6

    def test_pauses_at_waypoints(self, rng):
        model = RandomWaypointModel(Vec2(100, 100), AREA, BAND, rng, max_pause=50.0)
        still = 0
        for _ in range(400):
            prev = model.position
            if model.step(1.0).distance_to(prev) < 1e-9:
                still += 1
        assert still > 10

    def test_zero_pause_keeps_moving(self, rng):
        model = RandomWaypointModel(Vec2(100, 100), AREA, BAND, rng, max_pause=0.0)
        moving = sum(
            1
            for _ in range(200)
            if (lambda prev: model.step(1.0).distance_to(prev) > 1e-9)(
                model.position
            )
        )
        assert moving == 200

    def test_covers_the_area(self, rng):
        model = RandomWaypointModel(Vec2(100, 100), AREA, BAND, rng, max_pause=0.0)
        positions = np.array(
            [model.step(5.0).as_tuple() for _ in range(800)]
        )
        assert positions[:, 0].max() - positions[:, 0].min() > 100
        assert positions[:, 1].max() - positions[:, 1].min() > 100

    def test_zero_speed_band_rejected(self, rng):
        with pytest.raises(ValueError):
            RandomWaypointModel(Vec2(0, 0), AREA, VelocityBand(0, 0), rng)


class TestGaussMarkov:
    def test_stays_in_area(self, rng):
        model = GaussMarkovModel(Vec2(100, 100), AREA, BAND, rng)
        for _ in range(500):
            assert AREA.contains(model.step(1.0), tol=1e-9)

    def test_speed_within_band(self, rng):
        model = GaussMarkovModel(Vec2(100, 100), AREA, BAND, rng)
        for _ in range(300):
            prev = model.position
            moved = model.step(1.0).distance_to(prev)
            assert moved <= BAND.high + 1e-6

    def test_alpha_validation(self, rng):
        with pytest.raises(ValueError):
            GaussMarkovModel(Vec2(0, 0), AREA, BAND, rng, alpha=1.5)

    def test_high_alpha_gives_smooth_headings(self, rng_registry):
        """High memory => small step-to-step heading changes (mostly)."""

        def heading_changes(alpha, stream):
            rng = rng_registry.stream(stream)
            model = GaussMarkovModel(
                Vec2(100, 100), AREA, BAND, rng, alpha=alpha
            )
            deltas = []
            prev_heading = model.heading
            for _ in range(200):
                model.step(1.0)
                deltas.append(abs(model.heading - prev_heading))
                prev_heading = model.heading
            return float(np.median(deltas))

        smooth = heading_changes(0.95, "gm-smooth")
        jumpy = heading_changes(0.1, "gm-jumpy")
        assert smooth < jumpy

    def test_boundary_steering(self, rng):
        """A node pinned at a corner turns back towards the centre."""
        model = GaussMarkovModel(
            Vec2(1, 1), AREA, BAND, rng, alpha=0.5, heading_sigma=0.0
        )
        for _ in range(30):
            model.step(1.0)
        assert model.position.distance_to(AREA.center) < Vec2(1, 1).distance_to(
            AREA.center
        )


class TestManhattan:
    def test_stays_in_area(self, rng):
        model = ManhattanGridModel(Vec2(100, 100), AREA, BAND, rng)
        for _ in range(500):
            assert AREA.contains(model.step(1.0), tol=1e-9)

    def test_path_length_is_manhattan_distance(self, rng):
        """Along a street grid the L1 step length is the distance walked,
        so it can never exceed speed * dt (a step may span a corner, making
        the Euclidean delta diagonal, but the L1 bound still holds)."""
        model = ManhattanGridModel(Vec2(100, 100), AREA, BAND, rng, block=50.0)
        for _ in range(300):
            prev = model.position
            new = model.step(0.5)
            l1 = abs(new.x - prev.x) + abs(new.y - prev.y)
            assert l1 <= BAND.high * 0.5 + 1e-6

    @staticmethod
    def _on_line(value: float, block: float = 50.0) -> bool:
        residue = value % block
        return min(residue, block - residue) < 1e-6

    def test_position_on_grid_lines(self, rng):
        model = ManhattanGridModel(Vec2(87, 133), AREA, BAND, rng, block=50.0)
        for _ in range(300):
            p = model.step(1.0)
            assert self._on_line(p.x) or self._on_line(p.y)

    def test_block_validation(self, rng):
        with pytest.raises(ValueError):
            ManhattanGridModel(Vec2(0, 0), AREA, BAND, rng, block=0.0)

    def test_turns_happen(self, rng):
        model = ManhattanGridModel(
            Vec2(100, 100), AREA, BAND, rng, block=20.0, p_straight=0.2
        )
        directions = set()
        prev = model.position
        for _ in range(400):
            new = model.step(1.0)
            delta = new - prev
            if delta.norm() > 1e-9:
                directions.add(
                    (round(np.sign(delta.x)), round(np.sign(delta.y)))
                )
            prev = new
        assert len(directions) >= 3
